"""Declarative experiment grids over registered backends.

:class:`Experiment` is the single entry point for "run these backends over
these models at these batch sizes": the figure functions, the sensitivity
sweeps, the benchmarks, the CLI and the examples all build their grids here
instead of constructing runners by hand.  Results come back as a queryable
:class:`ExperimentResult`, and every design point is memoized in a shared
:class:`~repro.experiment.cache.ResultCache` so regenerating all paper
figures computes each ``(backend, model, batch, system)`` point exactly
once.

Usage::

    from repro.experiment import Experiment

    result = (
        Experiment(HARPV2_SYSTEM)
        .backends("cpu", "centaur")
        .models(PAPER_MODELS)
        .batch_sizes(PAPER_BATCH_SIZES)
        .run()
    )
    centaur = result.get("centaur", "DLRM(3)", 64)
    table = result.pivot(value="latency_seconds", backend="centaur")
"""

from __future__ import annotations

import csv
import io
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.backends.registry import (
    available_backends,
    canonical_backend_name,
    get_backend,
)
from repro.config.models import DLRMConfig
from repro.config.presets import PAPER_BATCH_SIZES, PAPER_MODELS
from repro.config.system import SystemConfig
from repro.errors import ConfigurationError, SimulationError
from repro.experiment.cache import ResultCache, default_cache, system_fingerprint
from repro.results import InferenceResult

#: Key identifying one experiment point: (backend name, model name, batch size).
ExperimentKey = Tuple[str, str, int]

#: A value extractor for pivots: attribute/property name or callable.
ValueSpec = Union[str, Callable[[InferenceResult], float]]

#: Sentinel distinguishing "use the process default cache" from "no cache".
_USE_DEFAULT_CACHE = object()


def _extract(result: InferenceResult, value: ValueSpec) -> float:
    if callable(value):
        return value(result)
    attr = getattr(result, value)
    return attr


class ExperimentResult:
    """All inference results of one experiment grid, queryable by key.

    Lookups accept canonical backend names, their aliases, *and* the paper's
    design-point labels, so ``get("centaur", ...)`` and
    ``get("Centaur", ...)`` address the same point.
    """

    def __init__(self, system: SystemConfig):
        self.system = system
        self._results: Dict[ExperimentKey, InferenceResult] = {}

    # ------------------------------------------------------------------
    def add(self, backend_name: str, result: InferenceResult) -> None:
        """Record one design point under its canonical backend name."""
        key = (backend_name, result.model_name, result.batch_size)
        self._results[key] = result

    def _backend_key(self, backend: str) -> str:
        try:
            return canonical_backend_name(backend)
        except ConfigurationError:
            # Results from since-unregistered (ad-hoc) backends stay
            # addressable by their stored key; anything else is a typo and
            # must fail loudly rather than match nothing.
            stored = {key for key, _, _ in self._results}
            if backend in stored:
                return backend
            raise ConfigurationError(
                f"unknown backend {backend!r}; this grid holds: "
                f"{', '.join(sorted(stored)) or '(empty)'}"
            )

    def get(self, backend: str, model_name: str, batch_size: int) -> InferenceResult:
        """The result of one (backend, model, batch) point."""
        key = (self._backend_key(backend), model_name, int(batch_size))
        if key not in self._results:
            raise KeyError(f"no experiment result for {key}")
        return self._results[key]

    def filter(
        self,
        backend: Optional[str] = None,
        model_name: Optional[str] = None,
        batch_size: Optional[int] = None,
    ) -> List[InferenceResult]:
        """All results matching the given coordinates, in insertion order."""
        backend_key = self._backend_key(backend) if backend is not None else None
        matches = []
        for (b, m, s), result in self._results.items():
            if backend_key is not None and b != backend_key:
                continue
            if model_name is not None and m != model_name:
                continue
            if batch_size is not None and s != int(batch_size):
                continue
            matches.append(result)
        return matches

    # ------------------------------------------------------------------
    def backends(self) -> List[str]:
        """Canonical backend names present, in insertion order."""
        seen: List[str] = []
        for backend, _, _ in self._results:
            if backend not in seen:
                seen.append(backend)
        return seen

    def model_names(self) -> List[str]:
        """Model names present, in insertion order."""
        seen: List[str] = []
        for _, model_name, _ in self._results:
            if model_name not in seen:
                seen.append(model_name)
        return seen

    def batch_sizes(self) -> List[int]:
        """Batch sizes present, sorted."""
        return sorted({batch for _, _, batch in self._results})

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self):
        return iter(self._results.items())

    # ------------------------------------------------------------------
    def pivot(
        self,
        value: ValueSpec = "latency_seconds",
        backend: Optional[str] = None,
    ) -> Dict[object, Dict[int, float]]:
        """Model x batch-size table of one metric.

        Args:
            value: Attribute/property name of :class:`InferenceResult`
                (e.g. ``"latency_seconds"``, ``"energy_joules"``) or a
                callable mapping a result to a number.
            backend: Restrict to one backend; with several backends present
                and no restriction, row keys become ``(backend, model)``
                pairs.

        Returns:
            ``{row_key: {batch_size: value}}``.
        """
        backend_key = self._backend_key(backend) if backend is not None else None
        multi_backend = backend is None and len(self.backends()) > 1
        table: Dict[object, Dict[int, float]] = {}
        for (b, model_name, batch), result in self._results.items():
            if backend_key is not None and b != backend_key:
                continue
            row_key = (b, model_name) if multi_backend else model_name
            table.setdefault(row_key, {})[batch] = _extract(result, value)
        return table

    def to_dict(self) -> Dict[str, object]:
        """Serialize the whole grid (JSON-compatible)."""
        return {
            "system_fingerprint": system_fingerprint(self.system),
            "results": [
                {"backend": backend, "result": result.to_dict()}
                for (backend, _, _), result in self._results.items()
            ],
        }

    def to_csv(self) -> str:
        """Render the grid as CSV (one row per design point)."""
        stages: List[str] = []
        for result in self._results.values():
            for stage in result.breakdown.stages:
                if stage not in stages:
                    stages.append(stage)
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            [
                "backend",
                "design_point",
                "model",
                "batch_size",
                "latency_s",
                "throughput_sps",
                "power_w",
                "energy_j",
            ]
            + [f"{stage.lower()}_s" for stage in stages]
        )
        for (backend, _, _), result in self._results.items():
            writer.writerow(
                [
                    backend,
                    result.design_point,
                    result.model_name,
                    result.batch_size,
                    repr(result.latency_seconds),
                    repr(result.throughput_samples_per_second),
                    repr(result.power_watts),
                    repr(result.energy_joules),
                ]
                + [repr(result.breakdown.get(stage)) for stage in stages]
            )
        return buffer.getvalue()

    def to_sweep_result(self):
        """Legacy view keyed by design-point label (``SweepResult``)."""
        from repro.analysis.sweep import SweepResult

        sweep = SweepResult()
        for result in self._results.values():
            sweep.add(result)
        return sweep


class Experiment:
    """Fluent builder for a (backends x models x batch sizes) grid.

    Args:
        system: Hardware platform shared by every backend in the grid.
        cache: Result cache; defaults to the process-wide shared cache.
            Pass ``None`` to disable memoization for this experiment.
        jobs: Worker processes for grid evaluation (``1`` = serial,
            ``0`` = one per CPU).  Results are byte-identical at every
            setting; see :mod:`repro.experiment.executor`.

    The builder methods mutate and return ``self`` so grids read as one
    chained expression; defaults reproduce the paper's full evaluation grid
    (all registered backends, Table I models, batch sizes 1-128).
    """

    def __init__(self, system: SystemConfig, cache=_USE_DEFAULT_CACHE, jobs: int = 1):
        self.system = system
        self._cache = cache
        self._backend_names: Optional[Tuple[str, ...]] = None
        self._models: Tuple[DLRMConfig, ...] = PAPER_MODELS
        self._batch_sizes: Tuple[int, ...] = PAPER_BATCH_SIZES
        self._workloads: Tuple["Workload", ...] = ()
        self._jobs = jobs
        self._progress: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------------
    def backends(self, *names: str) -> "Experiment":
        """Select backends by registry name/alias (order preserved)."""
        if len(names) == 1 and not isinstance(names[0], str):
            names = tuple(names[0])  # accept a single iterable, too
        canonical = tuple(canonical_backend_name(name) for name in names)
        if not canonical:
            raise SimulationError("an experiment needs at least one backend")
        self._backend_names = canonical
        return self

    def models(self, *models) -> "Experiment":
        """Select the model configurations of the grid.

        Raises:
            SimulationError: When two *different* configurations share a
                name — results are addressed by model name, so such a grid
                would silently collapse the two onto one point.
        """
        if len(models) == 1 and isinstance(models[0], (list, tuple)):
            models = tuple(models[0])
        if not models:
            raise SimulationError("an experiment needs at least one model")
        by_name: Dict[str, DLRMConfig] = {}
        for model in models:
            existing = by_name.get(model.name)
            if existing is not None and existing != model:
                raise SimulationError(
                    f"two different model configurations share the name "
                    f"{model.name!r}; rename one so grid points stay distinct"
                )
            by_name[model.name] = model
        self._models = tuple(models)
        return self

    def batch_sizes(self, *sizes) -> "Experiment":
        """Select the input batch sizes of the grid."""
        if len(sizes) == 1 and isinstance(sizes[0], (list, tuple)):
            sizes = tuple(sizes[0])
        if not sizes:
            raise SimulationError("an experiment needs at least one batch size")
        for size in sizes:
            if int(size) <= 0:
                raise SimulationError(f"batch sizes must be positive, got {size}")
        self._batch_sizes = tuple(int(size) for size in sizes)
        return self

    def workloads(self, *workloads) -> "Experiment":
        """Select serving workloads as a grid axis (see :meth:`serve`).

        Accepts :class:`~repro.workloads.Workload` objects or bare numbers
        (interpreted as Poisson rates in QPS).  Workload names must be
        distinct — serving results are addressed by name.
        """
        from repro.workloads.workload import Workload as _Workload

        if len(workloads) == 1 and isinstance(workloads[0], (list, tuple)):
            workloads = tuple(workloads[0])
        if not workloads:
            raise SimulationError("an experiment needs at least one workload")
        parsed = []
        for workload in workloads:
            if not isinstance(workload, _Workload):
                from repro.workloads.workload import poisson_workload

                workload = poisson_workload(float(workload))
            parsed.append(workload)
        names = [workload.name for workload in parsed]
        if len(set(names)) != len(names):
            raise SimulationError(
                f"workload names must be distinct, got {names}; pass name=..."
            )
        self._workloads = tuple(parsed)
        return self

    def cache(self, cache: Optional[ResultCache]) -> "Experiment":
        """Use a specific cache (or ``None`` to disable memoization)."""
        self._cache = cache
        return self

    def jobs(self, jobs: int) -> "Experiment":
        """Evaluate grids with this many worker processes.

        ``1`` (the default) is the serial in-process path; ``0`` means one
        worker per CPU.  Every grid product is byte-identical to the
        serial run at any setting — parallelism only changes wall-clock.
        Workers resolve backends through the registry, so ad-hoc backends
        registered only in this process require ``jobs=1``.
        """
        from repro.experiment.executor import resolve_jobs

        resolve_jobs(jobs)  # validate eagerly; store the raw setting
        self._jobs = int(jobs)
        return self

    def progress(self, callback: Optional[Callable[[str], None]]) -> "Experiment":
        """Log one line per completed grid point through ``callback``.

        Lines look like ``[12/108] cpu DLRM(3) b64 computed`` (batch
        grids say ``cached`` vs ``computed``; serving grids say
        ``served``).  Logging never alters any grid product.
        """
        self._progress = callback
        return self

    # ------------------------------------------------------------------
    @property
    def backend_names(self) -> Tuple[str, ...]:
        """The grid's backends (defaults to every registered backend)."""
        if self._backend_names is not None:
            return self._backend_names
        return available_backends()

    @property
    def grid_models(self) -> Tuple[DLRMConfig, ...]:
        return self._models

    @property
    def grid_batch_sizes(self) -> Tuple[int, ...]:
        return self._batch_sizes

    @property
    def grid_workloads(self) -> Tuple["Workload", ...]:
        return self._workloads

    def _resolve_cache(self) -> Optional[ResultCache]:
        if self._cache is _USE_DEFAULT_CACHE:
            return default_cache()
        return self._cache

    def _grid_points(self) -> List[Tuple[str, DLRMConfig, int]]:
        """The grid in serial evaluation order: model x batch x backend."""
        names = list(dict.fromkeys(self.backend_names))
        return [
            (name, model, batch_size)
            for model in self._models
            for batch_size in self._batch_sizes
            for name in names
        ]

    def run(self) -> ExperimentResult:
        """Evaluate the grid and return the collected results.

        Design points already in the cache are returned without touching
        the device models; everything else is computed once and memoized.
        With ``jobs > 1`` the uncached points fan out over worker
        processes, each pricing into a fresh local cache that is merged
        back — so "each point computed exactly once" holds across the
        whole pool, and the collected grid is byte-identical to a serial
        run.
        """
        from repro.experiment.executor import resolve_jobs

        cache = self._resolve_cache()
        points = self._grid_points()
        if resolve_jobs(self._jobs) > 1:
            return self._run_parallel(points, cache)
        backends = {name: get_backend(name, self.system) for name, _, _ in points}
        outcome = ExperimentResult(self.system)
        total = len(points)
        for done, (name, model, batch_size) in enumerate(points, start=1):
            if cache is not None:
                was_cached = cache.key(name, model, batch_size, self.system) in cache
                result = cache.get_or_compute(
                    backends[name], model, batch_size, self.system, backend_name=name
                )
            else:
                was_cached = False
                result = backends[name].run(model, batch_size)
            outcome.add(name, result)
            if self._progress is not None:
                status = "cached" if was_cached else "computed"
                self._progress(
                    f"[{done}/{total}] {name} {model.name} b{batch_size} {status}"
                )
        return outcome

    def _run_parallel(
        self,
        points: List[Tuple[str, DLRMConfig, int]],
        cache: Optional[ResultCache],
    ) -> ExperimentResult:
        """Fan the grid's uncached points out over worker processes."""
        from repro.experiment.executor import (
            BatchChunk,
            GridExecutor,
            _run_batch_chunk,
            chunk_evenly,
        )

        executor = GridExecutor(self._jobs)
        outcome = ExperimentResult(self.system)
        total = len(points)
        done = 0

        def emit(name: str, model: DLRMConfig, batch_size: int, status: str) -> None:
            nonlocal done
            done += 1
            if self._progress is not None:
                self._progress(
                    f"[{done}/{total}] {name} {model.name} b{batch_size} {status}"
                )

        if cache is None:
            chunks = chunk_evenly(points, executor.jobs * 4)
            payloads = [
                BatchChunk(self.system, tuple(chunk), memoize=False)
                for chunk in chunks
            ]

            def on_chunk(index: int, results) -> None:
                for name, model, batch_size in chunks[index]:
                    emit(name, model, batch_size, "computed")

            chunk_results = executor.map(_run_batch_chunk, payloads, on_result=on_chunk)
            for chunk, results in zip(chunks, chunk_results):
                for (name, _, _), result in zip(chunk, results):
                    outcome.add(name, result)
            return outcome

        # Memoized path: ship each missing key exactly once, merge the
        # worker caches back, then collect every point (now a lookup) in
        # serial order.  Hit/miss accounting mirrors the serial loop: a
        # point whose key is cached — or already bound for a worker — is
        # the hit it would have been serially; each shipped key is the one
        # miss its worker records.
        shipped = set()
        pending: List[Tuple[str, DLRMConfig, int]] = []
        statuses: List[str] = []
        for name, model, batch_size in points:
            key = cache.key(name, model, batch_size, self.system)
            if key in cache or key in shipped:
                with cache._lock:
                    cache.hits += 1
                statuses.append("cached")
            else:
                shipped.add(key)
                pending.append((name, model, batch_size))
                statuses.append("computed")
        chunks = chunk_evenly(pending, executor.jobs * 4)
        payloads = [
            BatchChunk(self.system, tuple(chunk), memoize=True) for chunk in chunks
        ]

        def on_cache(index: int, worker_cache) -> None:
            for name, model, batch_size in chunks[index]:
                emit(name, model, batch_size, "computed")

        for worker_cache in executor.map(_run_batch_chunk, payloads, on_result=on_cache):
            cache.merge(worker_cache)
        for (name, model, batch_size), status in zip(points, statuses):
            result = cache.peek(cache.key(name, model, batch_size, self.system))
            outcome.add(name, result)
            if status == "cached":
                emit(name, model, batch_size, "cached")
        return outcome

    def serve(
        self,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        batching=None,
        dispatcher=None,
        replicas: int = 1,
        seed: int = 0,
    ):
        """Run the serving grid: backends x workloads (x models).

        Requires :meth:`workloads` to have been called.  Every point is
        capability-gated against the backend registry first; single-model
        workloads fan out over the experiment's model axis while workloads
        carrying a :class:`~repro.workloads.mix.TrafficMix` serve their own
        blend.  Returns a
        :class:`~repro.experiment.serving.ServingExperimentResult`.
        """
        if not self._workloads:
            raise SimulationError(
                "no workloads selected; call .workloads(...) before .serve()"
            )
        from repro.experiment.serving import serve_grid

        return serve_grid(
            self.system,
            self.backend_names,
            self._workloads,
            self._models,
            duration_s=duration_s,
            num_requests=num_requests,
            batching=batching,
            dispatcher=dispatcher,
            replicas=replicas,
            seed=seed,
            jobs=self._jobs,
            progress=self._progress,
        )

    def autoscale(
        self,
        policy,
        min_replicas: int = 1,
        max_replicas: int = 8,
        control_interval_s: float = 10e-3,
        warmup_s: Optional[float] = None,
        idle_power_w: float = 0.0,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        batching=None,
        dispatcher=None,
        seed: int = 0,
    ):
        """Run the serving grid on elastic fleets driven by ``policy``.

        Like :meth:`serve` but every (backend, workload) point is served by
        an :class:`~repro.serving.autoscale.AutoscalingCluster` breathing
        between ``min_replicas`` and ``max_replicas``; reports carry the
        run's :class:`~repro.serving.cluster.AutoscaleReport` (replica-hour
        and energy accounting).  ``warmup_s=None`` uses each backend's
        registered provisioning-delay hint.  Requires :meth:`workloads`.
        """
        if not self._workloads:
            raise SimulationError(
                "no workloads selected; call .workloads(...) before .autoscale()"
            )
        from repro.experiment.serving import autoscale_grid

        return autoscale_grid(
            self.system,
            self.backend_names,
            self._workloads,
            self._models,
            policy,
            min_replicas=min_replicas,
            max_replicas=max_replicas,
            control_interval_s=control_interval_s,
            warmup_s=warmup_s,
            idle_power_w=idle_power_w,
            duration_s=duration_s,
            num_requests=num_requests,
            batching=batching,
            dispatcher=dispatcher,
            seed=seed,
            jobs=self._jobs,
            progress=self._progress,
        )

    def chaos(
        self,
        faults,
        policy=None,
        min_replicas: int = 1,
        max_replicas: int = 8,
        initial_replicas: Optional[int] = None,
        control_interval_s: float = 10e-3,
        warmup_s: Optional[float] = None,
        idle_power_w: float = 0.0,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        batching=None,
        dispatcher=None,
        seed: int = 0,
    ):
        """Run the serving grid under a deterministic fault schedule.

        Like :meth:`autoscale` but every (backend, workload) fleet has
        ``faults`` — a :class:`~repro.chaos.faults.FaultSchedule` or a
        compact spec string like ``"crash:at=0.1,restart=0.05"`` — injected
        into the run, so each report carries an
        :class:`~repro.chaos.report.IncidentReport` measuring SLA
        attainment through the incidents and the time-to-recover.
        ``policy=None`` perturbs a static fleet; with a policy the
        autoscaler and the faults compose.  Requires :meth:`workloads`.
        """
        if not self._workloads:
            raise SimulationError(
                "no workloads selected; call .workloads(...) before .chaos()"
            )
        from repro.experiment.serving import chaos_grid

        return chaos_grid(
            self.system,
            self.backend_names,
            self._workloads,
            self._models,
            faults,
            policy=policy,
            min_replicas=min_replicas,
            max_replicas=max_replicas,
            initial_replicas=initial_replicas,
            control_interval_s=control_interval_s,
            warmup_s=warmup_s,
            idle_power_w=idle_power_w,
            duration_s=duration_s,
            num_requests=num_requests,
            batching=batching,
            dispatcher=dispatcher,
            seed=seed,
            jobs=self._jobs,
            progress=self._progress,
        )

    def shard(
        self,
        shard_counts=(1, 2, 4),
        strategies=("table",),
        caches=(None,),
        updates=(None,),
        model: Optional[DLRMConfig] = None,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        batching=None,
        seed: int = 0,
    ):
        """Run the sharded-serving grid: shards x strategy x cache x updates.

        Every (backend, workload) point is served by a
        :class:`~repro.serving.sharded.ShardedReplicaGroup` at each shard
        count / placement strategy / hot-row cache configuration, after
        capability gating (workload support and
        ``BackendCapabilities.supports_sharding``).  Sharded serving is
        single-model: the partitioned model is ``model``, or the
        experiment's model axis when it holds exactly one entry.  Returns
        a :class:`~repro.experiment.sharding.ShardingExperimentResult`.
        """
        if not self._workloads:
            raise SimulationError(
                "no workloads selected; call .workloads(...) before .shard()"
            )
        if model is None:
            if len(self._models) != 1:
                raise SimulationError(
                    f"sharded serving partitions one model; the grid holds "
                    f"{len(self._models)} — pass model=..."
                )
            model = self._models[0]
        from repro.experiment.sharding import shard_grid

        return shard_grid(
            self.system,
            self.backend_names,
            self._workloads,
            model,
            shard_counts=shard_counts,
            strategies=strategies,
            caches=caches,
            updates=updates,
            duration_s=duration_s,
            num_requests=num_requests,
            batching=batching,
            seed=seed,
            jobs=self._jobs,
            progress=self._progress,
        )

    def plan_capacity(
        self,
        sla_s: float,
        target_attainment: float = 0.99,
        model: Optional[DLRMConfig] = None,
        max_replicas: int = 64,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        batching=None,
        dispatcher=None,
        seed: int = 0,
    ) -> Dict[str, "CapacityPlan"]:
        """Search the minimal fleet per backend meeting a p99 SLA target.

        Runs a :class:`~repro.serving.planner.CapacityPlanner` over the
        experiment's backends for every selected workload and returns
        ``{workload name: CapacityPlan}``.  Single-model planning only: the
        planned model is ``model``, or the experiment's model axis when it
        holds exactly one entry.  Requires :meth:`workloads`.
        """
        if not self._workloads:
            raise SimulationError(
                "no workloads selected; call .workloads(...) before .plan_capacity()"
            )
        if model is None:
            if len(self._models) != 1:
                raise SimulationError(
                    f"capacity planning needs one model; the grid holds "
                    f"{len(self._models)} — pass model=..."
                )
            model = self._models[0]
        from repro.serving.planner import CapacityPlanner

        planner = CapacityPlanner(
            self.system,
            sla_s=sla_s,
            target_attainment=target_attainment,
            max_replicas=max_replicas,
            batching=batching,
            dispatcher=dispatcher,
            seed=seed,
            jobs=self._jobs,
        )
        return {
            workload.name: planner.plan(
                workload,
                model,
                backends=self.backend_names,
                duration_s=duration_s,
                num_requests=num_requests,
            )
            for workload in self._workloads
        }


class VariantSweep:
    """A grid over synthesized model variants, addressable by sweep value.

    The lookup sweeps (Figures 7b/13b) and the sensitivity studies all
    follow one pattern: synthesize one model variant per sweep value, run a
    backend grid over the variants, then read results back per value.  This
    helper owns that pattern — callers provide ``{sweep value: model}`` and
    query ``result(value, backend, batch_size)``.  The grid runs through
    :class:`Experiment`, so variants share the process-wide result cache.
    """

    def __init__(
        self,
        system: SystemConfig,
        backends: Sequence[str],
        variants,
        batch_sizes: Iterable[int],
        cache=_USE_DEFAULT_CACHE,
    ):
        self.variants: Dict[object, DLRMConfig] = dict(variants)
        if not self.variants:
            raise SimulationError("a variant sweep needs at least one variant")
        self.grid = (
            Experiment(system, cache=cache)
            .backends(*backends)
            .models(tuple(self.variants.values()))
            .batch_sizes(tuple(batch_sizes))
            .run()
        )

    def model(self, value) -> DLRMConfig:
        """The synthesized model variant of one sweep value."""
        return self.variants[value]

    def result(self, value, backend: str, batch_size: int) -> InferenceResult:
        """The inference result of one (sweep value, backend, batch) point."""
        return self.grid.get(backend, self.variants[value].name, batch_size)


def run_grid(
    system: SystemConfig,
    backends: Sequence[str],
    models: Iterable[DLRMConfig],
    batch_sizes: Iterable[int],
    cache=_USE_DEFAULT_CACHE,
) -> ExperimentResult:
    """One-call convenience wrapper around the :class:`Experiment` builder."""
    experiment = Experiment(system, cache=cache).backends(*backends)
    return experiment.models(tuple(models)).batch_sizes(tuple(batch_sizes)).run()
