"""Tests for the trace-driven validation of the embedding cache model."""

import pytest

from repro.config.models import homogeneous_dlrm
from repro.config.system import CPUConfig
from repro.cpu.trace_exec import TraceDrivenEmbeddingSimulator
from repro.dlrm import UniformTraceGenerator
from repro.errors import SimulationError


def scaled_model(rows_per_table, num_tables=4, gathers=16, name=None):
    return homogeneous_dlrm(
        name=name or f"scaled-{num_tables}x{rows_per_table}",
        num_tables=num_tables,
        rows_per_table=rows_per_table,
        gathers_per_table=gathers,
    )


class TestTraceDrivenProfile:
    def test_small_tables_mostly_hit(self):
        # Aggregate footprint 4 x 2k x 128 B = 1 MB << the 2.5 MB LLC slice.
        simulator = TraceDrivenEmbeddingSimulator(CPUConfig())
        profile = simulator.profile(scaled_model(2_000), batch_size=16, warmup_batches=2)
        assert profile.measured_miss_rate < 0.15
        assert profile.predicted_miss_probability < 0.15

    def test_large_tables_mostly_miss(self):
        # Aggregate footprint 4 x 100k x 128 B = 51 MB >> the LLC slice.
        simulator = TraceDrivenEmbeddingSimulator(CPUConfig())
        profile = simulator.profile(scaled_model(100_000), batch_size=16)
        assert profile.measured_miss_rate > 0.8
        assert profile.predicted_miss_probability > 0.8

    def test_miss_rate_grows_with_footprint(self):
        simulator = TraceDrivenEmbeddingSimulator(CPUConfig())
        small = simulator.profile(scaled_model(2_000), batch_size=8, warmup_batches=2)
        medium = simulator.profile(scaled_model(20_000), batch_size=8, warmup_batches=2)
        large = simulator.profile(scaled_model(80_000), batch_size=8)
        assert (
            small.measured_miss_rate
            < medium.measured_miss_rate
            < large.measured_miss_rate
        )

    def test_analytic_model_tracks_measurement(self):
        """The closed-form model stays within ~15 percentage points of the
        trace-driven measurement across footprints spanning the LLC size."""
        simulator = TraceDrivenEmbeddingSimulator(CPUConfig())
        for rows in (4_000, 40_000, 120_000):
            profile = simulator.profile(
                scaled_model(rows), batch_size=8, warmup_batches=1
            )
            assert profile.absolute_error < 0.15, (
                rows,
                profile.measured_miss_rate,
                profile.predicted_miss_probability,
            )

    def test_counts_and_metadata(self):
        simulator = TraceDrivenEmbeddingSimulator(CPUConfig())
        model = scaled_model(2_000, num_tables=2, gathers=4)
        profile = simulator.profile(model, batch_size=4, warmup_batches=0)
        assert profile.lookups == 2 * 4 * 4
        # Each 128-byte vector spans two cache lines.
        assert profile.measured_llc.accesses == profile.lookups * 2
        assert profile.llc_slice_bytes == CPUConfig().llc_bytes // CPUConfig().num_cores

    def test_full_llc_share_hits_more(self):
        whole_llc = TraceDrivenEmbeddingSimulator(CPUConfig(), llc_share=1.0)
        one_core = TraceDrivenEmbeddingSimulator(CPUConfig())
        model = scaled_model(40_000)
        generous = whole_llc.profile(model, batch_size=8, warmup_batches=2)
        tight = one_core.profile(model, batch_size=8, warmup_batches=2)
        assert generous.measured_miss_rate < tight.measured_miss_rate

    def test_custom_generator_supported(self):
        simulator = TraceDrivenEmbeddingSimulator(CPUConfig())
        profile = simulator.profile(
            scaled_model(10_000),
            batch_size=4,
            generator=UniformTraceGenerator(seed=99),
        )
        assert profile.measured_llc.accesses > 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            TraceDrivenEmbeddingSimulator(CPUConfig(), llc_share=0.0)
        simulator = TraceDrivenEmbeddingSimulator(CPUConfig())
        with pytest.raises(SimulationError):
            simulator.profile(scaled_model(1_000), batch_size=0)
        with pytest.raises(SimulationError):
            simulator.profile(scaled_model(1_000), batch_size=1, warmup_batches=-1)
