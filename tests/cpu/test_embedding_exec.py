"""Tests for the CPU embedding-layer execution model (Figure 7's engine)."""

import pytest

from repro.config import DLRM1, DLRM2, DLRM4, DLRM5, DLRM6
from repro.config.system import CPUConfig, MemoryConfig
from repro.cpu.embedding_exec import EmbeddingExecutionModel
from repro.errors import SimulationError


@pytest.fixture()
def model():
    return EmbeddingExecutionModel(cpu=CPUConfig(), memory=MemoryConfig())


class TestLatencyDecomposition:
    def test_components_sum_to_latency(self, model):
        estimate = model.estimate(DLRM1, 16)
        assert estimate.latency_s == pytest.approx(
            estimate.fixed_s + estimate.dispatch_s + estimate.software_s + estimate.memory_s
        )

    def test_dispatch_scales_with_tables(self, model):
        five_tables = model.estimate(DLRM1, 8).dispatch_s
        fifty_tables = model.estimate(DLRM2, 8).dispatch_s
        assert fifty_tables == pytest.approx(10 * five_tables)

    def test_latency_grows_with_batch(self, model):
        latencies = [model.estimate(DLRM4, batch).latency_s for batch in (1, 16, 128)]
        assert latencies[0] < latencies[1] < latencies[2]

    def test_memory_parallelism_tracks_batch(self, model):
        assert model.estimate(DLRM4, 1).outstanding_misses == 10
        assert model.estimate(DLRM4, 128).outstanding_misses == 140

    def test_rejects_bad_batch(self, model):
        with pytest.raises(SimulationError):
            model.estimate(DLRM1, 0)

    def test_negative_overheads_rejected(self):
        with pytest.raises(SimulationError):
            EmbeddingExecutionModel(
                cpu=CPUConfig(), memory=MemoryConfig(), layer_fixed_s=-1e-6
            )


class TestEffectiveThroughput:
    """Shape checks against the paper's Figure 7."""

    def test_throughput_grows_with_batch(self, model):
        throughputs = [
            model.effective_throughput(DLRM4, batch) for batch in (1, 4, 16, 64, 128)
        ]
        assert throughputs == sorted(throughputs)

    def test_throughput_far_below_dram_peak(self, model):
        peak = MemoryConfig().peak_bandwidth
        for config in (DLRM1, DLRM2, DLRM4, DLRM5, DLRM6):
            for batch in (1, 32, 128):
                assert model.effective_throughput(config, batch) < 0.4 * peak

    def test_small_batch_throughput_is_poor(self, model):
        # Batch-1 inference achieves only a GB/s or so (Figure 7a, left bars).
        for config in (DLRM1, DLRM2, DLRM4):
            assert model.effective_throughput(config, 1) < 2e9

    def test_large_batch_big_model_reaches_high_teens(self, model):
        # DLRM(4)/(5) at batch 128 reach the 15-20 GB/s regime, which is what
        # lets the CPU overtake the link-limited EB-Streamer there (Sec VI-B).
        assert 1.3e10 < model.effective_throughput(DLRM4, 128) < 2.2e10
        assert 1.3e10 < model.effective_throughput(DLRM5, 128) < 2.2e10

    def test_more_lookups_per_table_help(self, model):
        # Figure 7(b): throughput grows with the number of lookups per table.
        assert model.effective_throughput(DLRM3 := DLRM1.with_gathers_per_table(80), 16) > (
            model.effective_throughput(DLRM1, 16)
        )

    def test_dlrm6_lightweight_embedding_has_lowest_throughput(self, model):
        assert model.effective_throughput(DLRM6, 32) < model.effective_throughput(DLRM1, 32)

    def test_traffic_useful_bytes_match_config(self, model):
        estimate = model.estimate(DLRM1, 8)
        assert estimate.traffic.useful_bytes == DLRM1.embedding_bytes_per_sample() * 8
