"""Tests for the CPU-only end-to-end runner."""

import pytest

from repro.config import DLRM1, DLRM4, DLRM6, HARPV2_SYSTEM, PAPER_MODELS
from repro.cpu import CPUOnlyRunner
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def runner():
    return CPUOnlyRunner(HARPV2_SYSTEM)


class TestRunnerOutputs:
    def test_breakdown_has_figure5_stages(self, runner):
        result = runner.run(DLRM1, 16)
        assert set(result.breakdown.stages) == {"EMB", "MLP", "Other"}
        assert result.design_point == "CPU-only"
        assert result.model_name == "DLRM(1)"
        assert result.batch_size == 16

    def test_fractions_sum_to_one(self, runner):
        result = runner.run(DLRM4, 32)
        assert sum(result.breakdown.fractions().values()) == pytest.approx(1.0)

    def test_power_comes_from_table4(self, runner):
        assert runner.run(DLRM1, 1).power_watts == HARPV2_SYSTEM.power.cpu_only_watts

    def test_traffic_profiles_attached(self, runner):
        result = runner.run(DLRM1, 8)
        assert result.embedding_traffic is not None
        assert result.mlp_traffic is not None
        assert result.embedding_traffic.useful_bytes > 0

    def test_extra_metrics_present(self, runner):
        extra = runner.run(DLRM1, 8).extra
        for key in ("embedding_software_s", "embedding_memory_s", "gemm_efficiency"):
            assert key in extra

    def test_rejects_bad_batch(self, runner):
        with pytest.raises(SimulationError):
            runner.run(DLRM1, 0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(SimulationError):
            CPUOnlyRunner(HARPV2_SYSTEM, other_fixed_s=-1.0)


class TestPaperShapes:
    """Figure 5 shape checks."""

    def test_latency_monotone_in_batch(self, runner):
        for model in (DLRM1, DLRM4, DLRM6):
            latencies = [runner.run(model, batch).latency_seconds for batch in (4, 16, 64, 128)]
            assert latencies == sorted(latencies)

    def test_embedding_dominates_big_table_models(self, runner):
        """DLRM(2)/(4)/(5) spend most of their time in embedding layers."""
        for model in PAPER_MODELS:
            if model.num_tables < 50:
                continue
            for batch in (16, 128):
                assert runner.run(model, batch).breakdown.fraction("EMB") > 0.5

    def test_embedding_reaches_headline_fraction(self, runner):
        """The paper quotes embedding layers taking up to ~79% of time."""
        best = max(
            runner.run(model, batch).breakdown.fraction("EMB")
            for model in PAPER_MODELS
            for batch in (1, 32, 128)
        )
        assert best > 0.75

    def test_mlp_significant_at_small_batch(self, runner):
        result = runner.run(DLRM1, 1)
        assert result.breakdown.fraction("MLP") > 0.2

    def test_dlrm6_is_mlp_dominated(self, runner):
        for batch in (16, 128):
            result = runner.run(DLRM6, batch)
            assert result.breakdown.fraction("MLP") > result.breakdown.fraction("EMB")

    def test_effective_throughput_consistent_with_result(self, runner):
        direct = runner.effective_embedding_throughput(DLRM4, 32)
        via_result = runner.run(DLRM4, 32).effective_embedding_throughput
        assert direct == pytest.approx(via_result, rel=1e-9)

    def test_throughput_samples_per_second_improves_with_batch(self, runner):
        single = runner.run(DLRM1, 1).throughput_samples_per_second
        batched = runner.run(DLRM1, 128).throughput_samples_per_second
        assert batched > single
