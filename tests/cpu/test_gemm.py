"""Tests for the CPU GEMM performance model."""

import pytest

from repro.config import DLRM1, DLRM6
from repro.config.system import CPUConfig
from repro.cpu.gemm import CPUGemmModel
from repro.errors import SimulationError


@pytest.fixture()
def gemm():
    return CPUGemmModel(cpu=CPUConfig())


class TestEfficiencyCurve:
    def test_efficiency_grows_with_batch(self, gemm):
        efficiencies = [gemm.efficiency(batch) for batch in (1, 4, 16, 64, 128)]
        assert efficiencies == sorted(efficiencies)
        assert efficiencies[0] == pytest.approx(gemm.efficiency_batch1)

    def test_efficiency_bounded_by_asymptote(self, gemm):
        assert gemm.efficiency(10_000) < gemm.efficiency_large_batch

    def test_sustained_flops_below_peak(self, gemm):
        assert gemm.sustained_flops(128) < gemm.cpu.peak_flops

    def test_rejects_bad_batch(self, gemm):
        with pytest.raises(SimulationError):
            gemm.efficiency(0)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SimulationError):
            CPUGemmModel(cpu=CPUConfig(), efficiency_batch1=0.5, efficiency_large_batch=0.1)
        with pytest.raises(SimulationError):
            CPUGemmModel(cpu=CPUConfig(), batch_half_point=0)


class TestEstimates:
    def test_zero_flops_costs_only_overhead(self, gemm):
        estimate = gemm.estimate(0, batch_size=4, num_layers=3)
        assert estimate.latency_s == pytest.approx(3 * gemm.per_layer_overhead_s)

    def test_latency_scales_with_flops(self, gemm):
        small = gemm.estimate(1e6, batch_size=16, num_layers=0)
        large = gemm.estimate(4e6, batch_size=16, num_layers=0)
        assert large.latency_s == pytest.approx(4 * small.latency_s)

    def test_estimate_model_counts_all_layers(self, gemm):
        estimate = gemm.estimate_model(DLRM1, 16)
        expected_layers = DLRM1.bottom_mlp.num_layers + DLRM1.top_mlp.num_layers + 1
        assert estimate.overhead_s == pytest.approx(
            expected_layers * gemm.per_layer_overhead_s
        )
        assert estimate.flops == DLRM1.total_dense_flops_per_sample() * 16

    def test_per_sample_latency_amortizes_with_batch(self, gemm):
        batch1 = gemm.estimate_model(DLRM6, 1).latency_s
        batch128 = gemm.estimate_model(DLRM6, 128).latency_s / 128
        assert batch128 < batch1

    def test_dlrm6_mlp_heavier_than_dlrm1(self, gemm):
        assert gemm.estimate_model(DLRM6, 32).latency_s > gemm.estimate_model(DLRM1, 32).latency_s

    def test_negative_inputs_rejected(self, gemm):
        with pytest.raises(SimulationError):
            gemm.estimate(-1, 4, 1)
        with pytest.raises(SimulationError):
            gemm.estimate(1, 4, -1)
