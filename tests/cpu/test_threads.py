"""Tests for the thread-level-parallelism model."""

import pytest

from repro.config.system import CPUConfig
from repro.cpu.threads import ThreadPoolModel
from repro.errors import SimulationError


@pytest.fixture()
def threads():
    return ThreadPoolModel(CPUConfig(num_cores=14, mshrs_per_core=10))


class TestThreadsForBatch:
    def test_batch_one_uses_one_thread(self, threads):
        """The key low-batch pathology: one sample -> one OpenMP worker."""
        assert threads.threads_for_batch(1) == 1

    def test_batch_bounded_by_cores(self, threads):
        assert threads.threads_for_batch(4) == 4
        assert threads.threads_for_batch(128) == 14

    def test_rejects_bad_batch(self, threads):
        with pytest.raises(SimulationError):
            threads.threads_for_batch(0)


class TestEffectiveParallelism:
    def test_single_thread_has_no_penalty(self, threads):
        assert threads.effective_parallelism(1) == 1.0

    def test_multi_thread_below_ideal(self, threads):
        effective = threads.effective_parallelism(128)
        assert 1.0 < effective < 14.0

    def test_efficiency_bounds_validated(self):
        with pytest.raises(SimulationError):
            ThreadPoolModel(CPUConfig(), parallel_efficiency=0.0)
        with pytest.raises(SimulationError):
            ThreadPoolModel(CPUConfig(), parallel_efficiency=1.5)


class TestMemoryLevelParallelism:
    def test_outstanding_misses_scale_with_threads(self, threads):
        assert threads.outstanding_misses(1) == 10
        assert threads.outstanding_misses(128) == 140

    def test_per_thread_share(self, threads):
        assert threads.per_thread_share(1000, 1) == pytest.approx(1000)
        assert threads.per_thread_share(1000, 128) < 1000 / 10

    def test_per_thread_share_validation(self, threads):
        with pytest.raises(SimulationError):
            threads.per_thread_share(-1, 4)
