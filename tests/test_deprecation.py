"""The legacy shim modules must warn exactly once — and only when used.

``repro.dlrm.trace`` and ``repro.serving.requests`` are deprecated shims
over :mod:`repro.workloads`.  Importing them must emit exactly one
``DeprecationWarning`` per process (module caching makes repeat imports
silent), and importing the *package* surface (``repro``, ``repro.serving``,
``repro.dlrm``) must emit none — internal code is off the shims.
"""

import subprocess
import sys

import pytest


def _run(code: str) -> str:
    result = subprocess.run(
        [sys.executable, "-W", "always::DeprecationWarning", "-c", code],
        capture_output=True,
        text=True,
        check=True,
    )
    return result.stderr


@pytest.mark.parametrize("shim", ["repro.dlrm.trace", "repro.serving.requests"])
def test_shim_warns_exactly_once(shim):
    stderr = _run(
        "import importlib\n"
        f"import {shim}\n"
        f"importlib.import_module({shim!r})\n"
        f"import {shim}\n"
    )
    assert stderr.count("DeprecationWarning") == 1, stderr
    assert "repro.workloads" in stderr


def test_package_imports_are_warning_free():
    """`import repro` and friends must not touch the deprecated shims."""
    subprocess.run(
        [
            sys.executable,
            "-W",
            "error::DeprecationWarning",
            "-c",
            "import repro, repro.serving, repro.dlrm, repro.workloads, "
            "repro.experiment, repro.cli",
        ],
        capture_output=True,
        text=True,
        check=True,
    )


def test_shims_reexport_the_real_objects():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        import repro.dlrm.trace as trace_shim
        import repro.serving.requests as requests_shim
    from repro.workloads.arrivals import InferenceRequest, PoissonRequestGenerator
    from repro.workloads.traces import SparseTrace, UniformTraceGenerator

    assert trace_shim.SparseTrace is SparseTrace
    assert trace_shim.UniformTraceGenerator is UniformTraceGenerator
    assert requests_shim.InferenceRequest is InferenceRequest
    assert requests_shim.PoissonRequestGenerator is PoissonRequestGenerator
