"""Tests for the shared result containers."""

import pytest

from repro.errors import SimulationError
from repro.memsys.stats import CacheStats, MemoryTrafficStats
from repro.results import InferenceResult, LatencyBreakdown


def make_result(design="CPU-only", model="DLRM(1)", batch=4, stages=None, power=80.0):
    breakdown = LatencyBreakdown(stages or {"EMB": 3e-4, "MLP": 1e-4, "Other": 1e-5})
    return InferenceResult(
        design_point=design,
        model_name=model,
        batch_size=batch,
        breakdown=breakdown,
        embedding_traffic=MemoryTrafficStats(useful_bytes=1e6, llc=CacheStats()),
        power_watts=power,
    )


class TestLatencyBreakdown:
    def test_add_accumulates(self):
        breakdown = LatencyBreakdown()
        breakdown.add("EMB", 1e-3)
        breakdown.add("EMB", 2e-3)
        assert breakdown.get("EMB") == pytest.approx(3e-3)

    def test_total_and_fractions(self):
        breakdown = LatencyBreakdown({"A": 3.0, "B": 1.0})
        assert breakdown.total_seconds == pytest.approx(4.0)
        assert breakdown.fraction("A") == pytest.approx(0.75)
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_missing_stage_is_zero(self):
        assert LatencyBreakdown().get("EMB") == 0.0
        assert LatencyBreakdown().fraction("EMB") == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(SimulationError):
            LatencyBreakdown({"EMB": -1.0})

    def test_scaled(self):
        breakdown = LatencyBreakdown({"A": 2.0}).scaled(0.5)
        assert breakdown.get("A") == pytest.approx(1.0)
        with pytest.raises(SimulationError):
            LatencyBreakdown({"A": 2.0}).scaled(-1.0)

    def test_stages_returns_copy(self):
        breakdown = LatencyBreakdown({"A": 1.0})
        stages = breakdown.stages
        stages["A"] = 99.0
        assert breakdown.get("A") == 1.0


class TestInferenceResult:
    def test_latency_and_throughput(self):
        result = make_result()
        assert result.latency_seconds == pytest.approx(4.1e-4)
        assert result.throughput_samples_per_second == pytest.approx(4 / 4.1e-4)

    def test_energy(self):
        result = make_result(power=100.0)
        assert result.energy_joules == pytest.approx(100.0 * 4.1e-4)
        assert result.energy_per_sample_joules == pytest.approx(result.energy_joules / 4)

    def test_effective_embedding_throughput(self):
        result = make_result(stages={"EMB": 1e-3, "MLP": 1e-3})
        assert result.effective_embedding_throughput == pytest.approx(1e6 / 1e-3)

    def test_effective_throughput_without_traffic_is_zero(self):
        result = make_result()
        result.embedding_traffic = None
        assert result.effective_embedding_throughput == 0.0

    def test_speedup_and_efficiency(self):
        slow = make_result(stages={"EMB": 4e-4}, power=80.0)
        fast = make_result(design="Centaur", stages={"EMB": 1e-4}, power=74.0)
        assert fast.speedup_over(slow) == pytest.approx(4.0)
        assert fast.energy_efficiency_over(slow) == pytest.approx(4.0 * 80.0 / 74.0)

    def test_comparisons_require_matching_workload(self):
        lhs = make_result(model="DLRM(1)")
        rhs = make_result(model="DLRM(2)")
        with pytest.raises(SimulationError):
            lhs.speedup_over(rhs)
        rhs = make_result(batch=8)
        with pytest.raises(SimulationError):
            lhs.energy_efficiency_over(rhs)

    def test_validation(self):
        with pytest.raises(SimulationError):
            make_result(batch=0)
        with pytest.raises(SimulationError):
            make_result(power=-1.0)


class TestSerialization:
    def test_latency_breakdown_round_trip(self):
        breakdown = LatencyBreakdown({"IDX": 1e-6, "EMB": 3e-4, "MLP": 1e-4})
        restored = LatencyBreakdown.from_dict(breakdown.to_dict())
        assert restored.stages == breakdown.stages
        assert restored.total_seconds == breakdown.total_seconds

    def test_traffic_stats_round_trip(self):
        traffic = MemoryTrafficStats(
            useful_bytes=1.5e6,
            transferred_bytes=2.5e6,
            llc=CacheStats(accesses=100, hits=40, misses=60),
            instructions=4.2e5,
        )
        restored = MemoryTrafficStats.from_dict(traffic.to_dict())
        assert restored == traffic
        assert restored.mpki == traffic.mpki

    def test_inference_result_round_trip_is_exact(self):
        result = make_result(design="Centaur", model="DLRM(4)", batch=32, power=74.0)
        result.extra["gather_bandwidth"] = 1.19e10
        restored = InferenceResult.from_dict(result.to_dict())
        assert restored.design_point == result.design_point
        assert restored.model_name == result.model_name
        assert restored.batch_size == result.batch_size
        assert restored.breakdown.stages == result.breakdown.stages
        assert restored.embedding_traffic == result.embedding_traffic
        assert restored.mlp_traffic is None
        assert restored.power_watts == result.power_watts
        assert restored.extra == result.extra
        # Derived metrics survive untouched (nothing is rounded).
        assert restored.latency_seconds == result.latency_seconds
        assert restored.energy_joules == result.energy_joules
        assert (
            restored.effective_embedding_throughput
            == result.effective_embedding_throughput
        )

    def test_round_trip_survives_json(self):
        import json

        result = make_result()
        payload = json.loads(json.dumps(result.to_dict()))
        restored = InferenceResult.from_dict(payload)
        assert restored.latency_seconds == result.latency_seconds
        assert restored.breakdown.stages == result.breakdown.stages

    def test_truncated_payload_raises_instead_of_zeroing(self):
        payload = make_result().to_dict()
        del payload["power_watts"]
        with pytest.raises(KeyError):
            InferenceResult.from_dict(payload)
        traffic_payload = MemoryTrafficStats(useful_bytes=1.0).to_dict()
        del traffic_payload["llc"]
        with pytest.raises(KeyError):
            MemoryTrafficStats.from_dict(traffic_payload)

    def test_real_runner_result_round_trips(self):
        from repro.backends import get_backend
        from repro.config import DLRM1, HARPV2_SYSTEM

        for name in ("cpu", "cpu-gpu", "centaur"):
            result = get_backend(name, HARPV2_SYSTEM).run(DLRM1, 16)
            restored = InferenceResult.from_dict(result.to_dict())
            assert restored.latency_seconds == result.latency_seconds
            assert restored.breakdown.stages == result.breakdown.stages
            assert restored.extra == result.extra
