"""Tests for the shared result containers."""

import pytest

from repro.errors import SimulationError
from repro.memsys.stats import CacheStats, MemoryTrafficStats
from repro.results import InferenceResult, LatencyBreakdown


def make_result(design="CPU-only", model="DLRM(1)", batch=4, stages=None, power=80.0):
    breakdown = LatencyBreakdown(stages or {"EMB": 3e-4, "MLP": 1e-4, "Other": 1e-5})
    return InferenceResult(
        design_point=design,
        model_name=model,
        batch_size=batch,
        breakdown=breakdown,
        embedding_traffic=MemoryTrafficStats(useful_bytes=1e6, llc=CacheStats()),
        power_watts=power,
    )


class TestLatencyBreakdown:
    def test_add_accumulates(self):
        breakdown = LatencyBreakdown()
        breakdown.add("EMB", 1e-3)
        breakdown.add("EMB", 2e-3)
        assert breakdown.get("EMB") == pytest.approx(3e-3)

    def test_total_and_fractions(self):
        breakdown = LatencyBreakdown({"A": 3.0, "B": 1.0})
        assert breakdown.total_seconds == pytest.approx(4.0)
        assert breakdown.fraction("A") == pytest.approx(0.75)
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_missing_stage_is_zero(self):
        assert LatencyBreakdown().get("EMB") == 0.0
        assert LatencyBreakdown().fraction("EMB") == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(SimulationError):
            LatencyBreakdown({"EMB": -1.0})

    def test_scaled(self):
        breakdown = LatencyBreakdown({"A": 2.0}).scaled(0.5)
        assert breakdown.get("A") == pytest.approx(1.0)
        with pytest.raises(SimulationError):
            LatencyBreakdown({"A": 2.0}).scaled(-1.0)

    def test_stages_returns_copy(self):
        breakdown = LatencyBreakdown({"A": 1.0})
        stages = breakdown.stages
        stages["A"] = 99.0
        assert breakdown.get("A") == 1.0


class TestInferenceResult:
    def test_latency_and_throughput(self):
        result = make_result()
        assert result.latency_seconds == pytest.approx(4.1e-4)
        assert result.throughput_samples_per_second == pytest.approx(4 / 4.1e-4)

    def test_energy(self):
        result = make_result(power=100.0)
        assert result.energy_joules == pytest.approx(100.0 * 4.1e-4)
        assert result.energy_per_sample_joules == pytest.approx(result.energy_joules / 4)

    def test_effective_embedding_throughput(self):
        result = make_result(stages={"EMB": 1e-3, "MLP": 1e-3})
        assert result.effective_embedding_throughput == pytest.approx(1e6 / 1e-3)

    def test_effective_throughput_without_traffic_is_zero(self):
        result = make_result()
        result.embedding_traffic = None
        assert result.effective_embedding_throughput == 0.0

    def test_speedup_and_efficiency(self):
        slow = make_result(stages={"EMB": 4e-4}, power=80.0)
        fast = make_result(design="Centaur", stages={"EMB": 1e-4}, power=74.0)
        assert fast.speedup_over(slow) == pytest.approx(4.0)
        assert fast.energy_efficiency_over(slow) == pytest.approx(4.0 * 80.0 / 74.0)

    def test_comparisons_require_matching_workload(self):
        lhs = make_result(model="DLRM(1)")
        rhs = make_result(model="DLRM(2)")
        with pytest.raises(SimulationError):
            lhs.speedup_over(rhs)
        rhs = make_result(batch=8)
        with pytest.raises(SimulationError):
            lhs.energy_efficiency_over(rhs)

    def test_validation(self):
        with pytest.raises(SimulationError):
            make_result(batch=0)
        with pytest.raises(SimulationError):
            make_result(power=-1.0)
