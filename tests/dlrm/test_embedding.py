"""Tests for embedding tables and the SparseLengthsSum operator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config.models import EmbeddingTableConfig
from repro.dlrm.embedding import (
    DenseEmbeddingTable,
    EmbeddingBagCollection,
    VirtualEmbeddingTable,
    sparse_lengths_sum,
)
from repro.dlrm.reference import reference_sparse_lengths_sum
from repro.dlrm.trace import SparseTrace, UniformTraceGenerator
from repro.errors import ModelShapeError, TraceError


class TestDenseEmbeddingTable:
    def test_rows_returns_requested_vectors(self):
        weights = np.arange(12, dtype=np.float32).reshape(4, 3)
        table = DenseEmbeddingTable(weights)
        np.testing.assert_array_equal(table.rows(np.array([2, 0])), weights[[2, 0]])

    def test_random_factory_shapes(self):
        table = DenseEmbeddingTable.random(10, 8, rng=np.random.default_rng(0))
        assert table.num_rows == 10
        assert table.embedding_dim == 8
        assert table.table_bytes == 10 * 8 * 4

    def test_rejects_1d_weights(self):
        with pytest.raises(ModelShapeError):
            DenseEmbeddingTable(np.zeros(10, dtype=np.float32))

    def test_rejects_out_of_range_indices(self):
        table = DenseEmbeddingTable.random(4, 4)
        with pytest.raises(TraceError):
            table.rows(np.array([4]))


class TestVirtualEmbeddingTable:
    def test_deterministic_rows(self):
        table = VirtualEmbeddingTable(num_rows=10_000, embedding_dim=32, seed=3)
        first = table.rows(np.array([42, 7, 42]))
        second = table.rows(np.array([42, 7, 42]))
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first[0], first[2])
        assert not np.array_equal(first[0], first[1])

    def test_rows_bounded_by_scale(self):
        table = VirtualEmbeddingTable(num_rows=100, embedding_dim=16, seed=0, scale=0.1)
        rows = table.rows(np.arange(100))
        assert np.all(np.abs(rows) <= 0.1 + 1e-6)

    def test_different_seeds_give_different_tables(self):
        a = VirtualEmbeddingTable(num_rows=100, embedding_dim=8, seed=1)
        b = VirtualEmbeddingTable(num_rows=100, embedding_dim=8, seed=2)
        assert not np.allclose(a.rows(np.arange(10)), b.rows(np.arange(10)))

    def test_logical_footprint_without_allocation(self):
        # A paper-scale table (3.2 GB / 50 tables) is representable with O(1) memory.
        table = VirtualEmbeddingTable(num_rows=500_000, embedding_dim=32)
        assert table.table_bytes == 500_000 * 128
        assert table.rows(np.array([499_999])).shape == (1, 32)

    def test_empty_lookup(self):
        table = VirtualEmbeddingTable(num_rows=10, embedding_dim=4)
        assert table.rows(np.array([], dtype=np.int64)).shape == (0, 4)


class TestSparseLengthsSum:
    def test_matches_manual_sum(self):
        weights = np.arange(20, dtype=np.float32).reshape(5, 4)
        table = DenseEmbeddingTable(weights)
        indices = np.array([0, 1, 4])
        offsets = np.array([0, 2, 3])
        result = sparse_lengths_sum(table, indices, offsets)
        np.testing.assert_allclose(result[0], weights[0] + weights[1])
        np.testing.assert_allclose(result[1], weights[4])

    def test_empty_segment_yields_zero(self):
        table = DenseEmbeddingTable.random(4, 4)
        result = sparse_lengths_sum(table, np.array([1]), np.array([0, 0, 1]))
        np.testing.assert_array_equal(result[0], np.zeros(4, dtype=np.float32))

    def test_empty_batch_of_lookups(self):
        table = DenseEmbeddingTable.random(4, 4)
        result = sparse_lengths_sum(table, np.array([], dtype=np.int64), np.array([0, 0]))
        assert result.shape == (1, 4)
        np.testing.assert_array_equal(result, 0)

    def test_rejects_bad_offsets(self):
        table = DenseEmbeddingTable.random(4, 4)
        with pytest.raises(TraceError):
            sparse_lengths_sum(table, np.array([0]), np.array([1, 1]))

    def test_matches_reference_on_virtual_table(self):
        table = VirtualEmbeddingTable(num_rows=200, embedding_dim=32, seed=5)
        generator = UniformTraceGenerator(seed=8)
        trace = generator.table_trace(EmbeddingTableConfig(num_rows=200, gathers=6), 5)
        fast = sparse_lengths_sum(table, trace.indices, trace.offsets)
        reference = reference_sparse_lengths_sum(table, trace.indices, trace.offsets)
        np.testing.assert_allclose(fast, reference, rtol=1e-5, atol=1e-6)

    @given(
        batch=st.integers(min_value=1, max_value=8),
        gathers=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_reference(self, batch, gathers, seed):
        table = VirtualEmbeddingTable(num_rows=64, embedding_dim=8, seed=seed)
        generator = UniformTraceGenerator(seed=seed)
        trace = generator.table_trace(
            EmbeddingTableConfig(num_rows=64, embedding_dim=8, gathers=gathers), batch
        )
        fast = sparse_lengths_sum(table, trace.indices, trace.offsets)
        reference = reference_sparse_lengths_sum(table, trace.indices, trace.offsets)
        np.testing.assert_allclose(fast, reference, rtol=1e-4, atol=1e-5)

    def test_permutation_invariance_within_sample(self):
        """Reduction is a sum, so lookup order within a sample must not matter."""
        table = VirtualEmbeddingTable(num_rows=100, embedding_dim=16, seed=1)
        indices = np.array([3, 50, 7, 99])
        offsets = np.array([0, 4])
        forward = sparse_lengths_sum(table, indices, offsets)
        backward = sparse_lengths_sum(table, indices[::-1].copy(), offsets)
        np.testing.assert_allclose(forward, backward, rtol=1e-5, atol=1e-6)


class TestEmbeddingBagCollection:
    def test_from_configs_virtual_and_dense(self, tiny_config):
        virtual = EmbeddingBagCollection.from_configs(tiny_config.tables, storage="virtual")
        dense = EmbeddingBagCollection.from_configs(tiny_config.tables, storage="dense")
        assert virtual.num_tables == dense.num_tables == tiny_config.num_tables
        assert virtual.total_bytes == dense.total_bytes

    def test_rejects_unknown_storage(self, tiny_config):
        with pytest.raises(ModelShapeError):
            EmbeddingBagCollection.from_configs(tiny_config.tables, storage="disk")

    def test_forward_shape(self, tiny_config, trace_generator):
        collection = EmbeddingBagCollection.from_configs(tiny_config.tables)
        batch = trace_generator.model_batch(tiny_config, 3)
        reduced = collection.forward(batch.sparse_traces)
        assert reduced.shape == (3, tiny_config.num_tables, tiny_config.embedding_dim)

    def test_forward_rejects_wrong_trace_count(self, tiny_config, trace_generator):
        collection = EmbeddingBagCollection.from_configs(tiny_config.tables)
        batch = trace_generator.model_batch(tiny_config, 3)
        with pytest.raises(ModelShapeError):
            collection.forward(batch.sparse_traces[:-1])

    def test_forward_rejects_mismatched_batches(self, tiny_config, trace_generator):
        collection = EmbeddingBagCollection.from_configs(tiny_config.tables)
        batch_a = trace_generator.model_batch(tiny_config, 3)
        batch_b = trace_generator.model_batch(tiny_config, 4)
        mixed = batch_a.sparse_traces[:-1] + (batch_b.sparse_traces[-1],)
        with pytest.raises(ModelShapeError):
            collection.forward(mixed)

    def test_rejects_heterogeneous_dims(self):
        tables = [
            VirtualEmbeddingTable(num_rows=10, embedding_dim=8),
            VirtualEmbeddingTable(num_rows=10, embedding_dim=16),
        ]
        with pytest.raises(ModelShapeError):
            EmbeddingBagCollection(tables)

    def test_rejects_empty_collection(self):
        with pytest.raises(ModelShapeError):
            EmbeddingBagCollection([])
