"""Tests for the end-to-end DLRM model."""

import numpy as np
import pytest

from repro.config.models import homogeneous_dlrm
from repro.dlrm import DLRM, UniformTraceGenerator
from repro.dlrm.embedding import EmbeddingBagCollection
from repro.dlrm.interaction import dot_feature_interaction
from repro.dlrm.mlp import MLP, sigmoid
from repro.errors import ModelShapeError


class TestDLRMConstruction:
    def test_from_config_builds_consistent_model(self, tiny_config):
        model = DLRM.from_config(tiny_config, seed=0)
        assert model.embeddings.num_tables == tiny_config.num_tables
        assert model.bottom_mlp.out_dim == tiny_config.embedding_dim
        assert model.top_mlp.in_dim == tiny_config.interaction_output_dim

    def test_same_seed_same_weights(self, tiny_config):
        a = DLRM.from_config(tiny_config, seed=5)
        b = DLRM.from_config(tiny_config, seed=5)
        np.testing.assert_array_equal(a.bottom_mlp.layers[0].weight, b.bottom_mlp.layers[0].weight)

    def test_dense_storage_option(self, tiny_config):
        model = DLRM.from_config(tiny_config, seed=0, storage="dense")
        assert model.embeddings.total_bytes == tiny_config.embedding_table_bytes

    def test_mismatched_pieces_rejected(self, tiny_config):
        model = DLRM.from_config(tiny_config, seed=0)
        wrong_bottom = MLP.from_config(tiny_config.bottom_mlp.with_output_dim(16))
        with pytest.raises(ModelShapeError):
            DLRM(tiny_config, model.embeddings, wrong_bottom, model.top_mlp)

    def test_wrong_table_count_rejected(self, tiny_config):
        model = DLRM.from_config(tiny_config, seed=0)
        fewer_tables = EmbeddingBagCollection(model.embeddings.tables[:-1])
        with pytest.raises(ModelShapeError):
            DLRM(tiny_config, fewer_tables, model.bottom_mlp, model.top_mlp)


class TestDLRMForward:
    def test_output_shapes(self, tiny_model, tiny_batch, tiny_config):
        out = tiny_model.forward(tiny_batch)
        batch = tiny_batch.batch_size
        assert out.probabilities.shape == (batch,)
        assert out.logits.shape == (batch,)
        assert out.reduced_embeddings.shape == (
            batch,
            tiny_config.num_tables,
            tiny_config.embedding_dim,
        )
        assert out.interaction_output.shape == (batch, tiny_config.interaction_output_dim)
        assert out.batch_size == batch

    def test_probabilities_are_valid(self, tiny_model, tiny_batch):
        out = tiny_model.forward(tiny_batch)
        assert np.all((out.probabilities >= 0) & (out.probabilities <= 1))
        np.testing.assert_allclose(out.probabilities, sigmoid(out.logits), atol=1e-6)

    def test_forward_composes_stages(self, tiny_model, tiny_batch):
        """The end-to-end output equals manually chaining the stages."""
        out = tiny_model.forward(tiny_batch)
        reduced = tiny_model.embeddings.forward(tiny_batch.sparse_traces)
        bottom = tiny_model.bottom_mlp.forward(tiny_batch.dense_features)
        interaction = dot_feature_interaction(bottom, reduced)
        logits = tiny_model.top_mlp.forward(interaction)[:, 0]
        np.testing.assert_allclose(out.logits, logits, rtol=1e-6)

    def test_predict_returns_probabilities(self, tiny_model, tiny_batch):
        np.testing.assert_array_equal(
            tiny_model.predict(tiny_batch), tiny_model.forward(tiny_batch).probabilities
        )

    def test_deterministic_inference(self, tiny_config, trace_generator):
        model = DLRM.from_config(tiny_config, seed=11)
        batch = trace_generator.model_batch(tiny_config, 4)
        first = model.forward(batch).probabilities
        second = model.forward(batch).probabilities
        np.testing.assert_array_equal(first, second)

    def test_wrong_table_count_rejected(self, tiny_model, tiny_batch):
        from repro.dlrm.trace import DLRMBatch

        truncated = DLRMBatch(
            dense_features=tiny_batch.dense_features,
            sparse_traces=tiny_batch.sparse_traces[:-1],
        )
        with pytest.raises(ModelShapeError):
            tiny_model.forward(truncated)

    def test_wrong_dense_width_rejected(self, tiny_model, tiny_batch):
        from repro.dlrm.trace import DLRMBatch

        bad = DLRMBatch(
            dense_features=tiny_batch.dense_features[:, :-1],
            sparse_traces=tiny_batch.sparse_traces,
        )
        with pytest.raises(ModelShapeError):
            tiny_model.forward(bad)

    def test_batch_independence(self, tiny_model, tiny_config):
        """Each sample's output is independent of the other samples in the batch."""
        generator = UniformTraceGenerator(seed=21)
        batch = generator.model_batch(tiny_config, 8)
        full = tiny_model.forward(batch).probabilities

        from repro.dlrm.trace import DLRMBatch, SparseTrace

        single_traces = []
        for trace in batch.sparse_traces:
            start, end = trace.offsets[2], trace.offsets[3]
            single_traces.append(
                SparseTrace(
                    indices=trace.indices[start:end],
                    offsets=np.array([0, end - start]),
                    num_rows=trace.num_rows,
                )
            )
        single = DLRMBatch(
            dense_features=batch.dense_features[2:3], sparse_traces=tuple(single_traces)
        )
        alone = tiny_model.forward(single).probabilities
        assert alone[0] == pytest.approx(full[2], rel=1e-5)


class TestWorkAccounting:
    def test_flops_and_bytes_delegate_to_config(self, tiny_model, tiny_config):
        assert tiny_model.flops_per_sample() == tiny_config.total_dense_flops_per_sample()
        assert (
            tiny_model.embedding_bytes_per_sample()
            == tiny_config.embedding_bytes_per_sample()
        )

    def test_model_summary_contains_key_facts(self, tiny_model):
        summary = tiny_model.model_summary()
        assert "tiny" in summary
        assert "embedding tables" in summary
        assert "bottom MLP" in summary


class TestLargerConfiguration:
    def test_fifty_table_model_forward(self):
        config = homogeneous_dlrm(
            "wide", num_tables=50, rows_per_table=500, gathers_per_table=2
        )
        model = DLRM.from_config(config, seed=1)
        batch = UniformTraceGenerator(seed=2).model_batch(config, 3)
        out = model.forward(batch)
        assert out.interaction_output.shape == (3, config.interaction_output_dim)
        assert np.isfinite(out.probabilities).all()
