"""Tests for linear layers, MLP stacks and activations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config.models import MLPConfig
from repro.dlrm.mlp import MLP, LinearLayer, relu, sigmoid
from repro.dlrm.reference import reference_mlp_forward
from repro.errors import ModelShapeError


class TestActivations:
    def test_relu_clamps_negatives(self):
        values = np.array([-1.0, 0.0, 2.5], dtype=np.float32)
        np.testing.assert_array_equal(relu(values), [0.0, 0.0, 2.5])

    def test_sigmoid_range_and_symmetry(self):
        values = np.linspace(-50, 50, 101).astype(np.float32)
        out = sigmoid(values)
        assert np.all(out >= 0) and np.all(out <= 1)
        np.testing.assert_allclose(out + sigmoid(-values), 1.0, atol=1e-6)

    def test_sigmoid_at_zero(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_sigmoid_numerically_stable_for_large_magnitudes(self):
        out = sigmoid(np.array([-1e4, 1e4], dtype=np.float32))
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)


class TestLinearLayer:
    def test_forward_matches_matmul(self):
        rng = np.random.default_rng(0)
        layer = LinearLayer.random(5, 3, rng)
        inputs = rng.standard_normal((4, 5)).astype(np.float32)
        expected = inputs @ layer.weight + layer.bias
        np.testing.assert_allclose(layer.forward(inputs), expected, rtol=1e-6)

    def test_shape_validation(self):
        layer = LinearLayer.random(5, 3)
        with pytest.raises(ModelShapeError):
            layer.forward(np.zeros((2, 4), dtype=np.float32))
        with pytest.raises(ModelShapeError):
            LinearLayer(np.zeros((5, 3)), np.zeros(4))
        with pytest.raises(ModelShapeError):
            LinearLayer(np.zeros(5), np.zeros(5))

    def test_parameter_count(self):
        layer = LinearLayer.random(5, 3)
        assert layer.num_parameters == 5 * 3 + 3

    def test_xavier_bounds(self):
        layer = LinearLayer.random(100, 100, np.random.default_rng(1))
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(layer.weight) <= limit + 1e-6)
        np.testing.assert_array_equal(layer.bias, 0)


class TestMLP:
    def test_from_config_shapes(self):
        mlp = MLP.from_config(MLPConfig(layer_dims=(13, 64, 32)), np.random.default_rng(0))
        assert mlp.in_dim == 13
        assert mlp.out_dim == 32
        assert mlp.num_parameters == 13 * 64 + 64 + 64 * 32 + 32

    def test_layer_chaining_validated(self):
        layers = [LinearLayer.random(4, 8), LinearLayer.random(9, 2)]
        with pytest.raises(ModelShapeError):
            MLP(layers)

    def test_empty_rejected(self):
        with pytest.raises(ModelShapeError):
            MLP([])

    def test_bad_final_activation_rejected(self):
        with pytest.raises(ModelShapeError):
            MLP([LinearLayer.random(4, 2)], final_activation="tanh")

    def test_relu_applied_between_layers_only(self):
        # With weights forcing negative intermediate values, the final output
        # can be negative (no ReLU after the last layer).
        weight1 = -np.eye(2, dtype=np.float32)
        weight2 = np.eye(2, dtype=np.float32)
        mlp = MLP(
            [
                LinearLayer(weight1, np.zeros(2, dtype=np.float32)),
                LinearLayer(weight2, np.array([-1.0, -1.0], dtype=np.float32)),
            ]
        )
        out = mlp.forward(np.array([[1.0, 1.0]], dtype=np.float32))
        # First layer gives (-1,-1) -> ReLU -> (0,0); second layer bias -> (-1,-1).
        np.testing.assert_allclose(out, [[-1.0, -1.0]])

    def test_final_activation_sigmoid(self):
        mlp = MLP.from_config(
            MLPConfig(layer_dims=(4, 8, 1)),
            np.random.default_rng(0),
            final_activation="sigmoid",
        )
        out = mlp.forward(np.random.default_rng(1).standard_normal((10, 4)).astype(np.float32))
        assert np.all((out >= 0) & (out <= 1))

    def test_matches_naive_reference(self):
        rng = np.random.default_rng(3)
        mlp = MLP.from_config(MLPConfig(layer_dims=(6, 10, 4, 2)), rng)
        inputs = rng.standard_normal((5, 6)).astype(np.float32)
        np.testing.assert_allclose(
            mlp.forward(inputs), reference_mlp_forward(mlp, inputs), rtol=1e-4, atol=1e-5
        )

    def test_flops_matches_config(self):
        config = MLPConfig(layer_dims=(6, 10, 4, 2))
        mlp = MLP.from_config(config)
        assert mlp.flops_per_sample() == config.flops_per_sample()

    @given(
        dims=st.lists(st.integers(min_value=1, max_value=16), min_size=2, max_size=4),
        batch=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_output_shape(self, dims, batch):
        mlp = MLP.from_config(MLPConfig(layer_dims=tuple(dims)), np.random.default_rng(0))
        inputs = np.random.default_rng(1).standard_normal((batch, dims[0])).astype(np.float32)
        assert mlp.forward(inputs).shape == (batch, dims[-1])
