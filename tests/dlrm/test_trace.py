"""Tests for sparse-index trace generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config.models import EmbeddingTableConfig
from repro.dlrm.trace import (
    DLRMBatch,
    SparseTrace,
    UniformTraceGenerator,
    ZipfianTraceGenerator,
    concatenate_traces,
)
from repro.errors import TraceError


def make_trace(indices, offsets, num_rows=100):
    return SparseTrace(
        indices=np.asarray(indices, dtype=np.int64),
        offsets=np.asarray(offsets, dtype=np.int64),
        num_rows=num_rows,
    )


class TestSparseTrace:
    def test_basic_properties(self):
        trace = make_trace([1, 2, 3, 4], [0, 2, 4])
        assert trace.batch_size == 2
        assert trace.total_lookups == 4
        assert list(trace.lookups_for_sample(0)) == [1, 2]
        assert list(trace.lookups_for_sample(1)) == [3, 4]

    def test_unique_rows(self):
        trace = make_trace([5, 5, 7], [0, 3])
        assert trace.unique_rows() == 2

    def test_rejects_bad_offsets(self):
        with pytest.raises(TraceError):
            make_trace([1, 2], [1, 2])  # must start at 0
        with pytest.raises(TraceError):
            make_trace([1, 2], [0, 1])  # must end at len(indices)
        with pytest.raises(TraceError):
            make_trace([1, 2], [0, 2, 1, 2])  # non-decreasing

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(TraceError):
            make_trace([100], [0, 1], num_rows=100)
        with pytest.raises(TraceError):
            make_trace([-1], [0, 1], num_rows=100)

    def test_sample_out_of_range(self):
        trace = make_trace([1], [0, 1])
        with pytest.raises(IndexError):
            trace.lookups_for_sample(1)


class TestDLRMBatch:
    def test_batch_consistency_checks(self, tiny_config, trace_generator):
        batch = trace_generator.model_batch(tiny_config, 4)
        assert batch.batch_size == 4
        assert batch.num_tables == tiny_config.num_tables
        assert batch.total_lookups == 4 * tiny_config.total_gathers_per_sample
        assert batch.embedding_bytes(tiny_config.embedding_dim) == (
            batch.total_lookups * tiny_config.embedding_dim * 4
        )

    def test_rejects_mismatched_batch_sizes(self):
        dense = np.zeros((2, 13), dtype=np.float32)
        trace = make_trace([1, 2, 3], [0, 1, 2, 3])  # batch of 3
        with pytest.raises(TraceError):
            DLRMBatch(dense_features=dense, sparse_traces=(trace,))

    def test_rejects_non_2d_dense(self):
        with pytest.raises(TraceError):
            DLRMBatch(dense_features=np.zeros(13), sparse_traces=())


class TestUniformTraceGenerator:
    def test_deterministic_for_same_seed(self, tiny_config):
        batch_a = UniformTraceGenerator(seed=5).model_batch(tiny_config, 8)
        batch_b = UniformTraceGenerator(seed=5).model_batch(tiny_config, 8)
        np.testing.assert_array_equal(
            batch_a.sparse_traces[0].indices, batch_b.sparse_traces[0].indices
        )
        np.testing.assert_array_equal(batch_a.dense_features, batch_b.dense_features)

    def test_different_seeds_differ(self, tiny_config):
        batch_a = UniformTraceGenerator(seed=5).model_batch(tiny_config, 8)
        batch_b = UniformTraceGenerator(seed=6).model_batch(tiny_config, 8)
        assert not np.array_equal(
            batch_a.sparse_traces[0].indices, batch_b.sparse_traces[0].indices
        )

    def test_reseed_restores_sequence(self, tiny_config):
        generator = UniformTraceGenerator(seed=9)
        first = generator.model_batch(tiny_config, 4)
        generator.reseed(9)
        second = generator.model_batch(tiny_config, 4)
        np.testing.assert_array_equal(
            first.sparse_traces[1].indices, second.sparse_traces[1].indices
        )

    def test_lookup_override(self):
        table = EmbeddingTableConfig(num_rows=50, gathers=7)
        trace = UniformTraceGenerator(seed=0).table_trace(table, 3, lookups_per_sample=2)
        assert trace.total_lookups == 6
        assert trace.batch_size == 3

    def test_zero_lookup_override(self):
        table = EmbeddingTableConfig(num_rows=50, gathers=7)
        trace = UniformTraceGenerator(seed=0).table_trace(table, 3, lookups_per_sample=0)
        assert trace.total_lookups == 0
        assert trace.batch_size == 3

    def test_batches_iterator(self, tiny_config):
        batches = list(UniformTraceGenerator(seed=1).batches(tiny_config, 2, count=3))
        assert len(batches) == 3
        assert all(batch.batch_size == 2 for batch in batches)

    @given(batch_size=st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_offsets_are_regular(self, batch_size):
        table = EmbeddingTableConfig(num_rows=1000, gathers=4)
        trace = UniformTraceGenerator(seed=3).table_trace(table, batch_size)
        assert trace.batch_size == batch_size
        assert np.all(np.diff(trace.offsets) == 4)
        assert trace.indices.min() >= 0
        assert trace.indices.max() < 1000


class TestZipfianTraceGenerator:
    def test_skew_concentrates_traffic(self):
        table = EmbeddingTableConfig(num_rows=10_000, gathers=50)
        uniform = UniformTraceGenerator(seed=11).table_trace(table, 64)
        zipfian = ZipfianTraceGenerator(alpha=1.2, seed=11).table_trace(table, 64)
        # The skewed generator touches far fewer distinct rows.
        assert zipfian.unique_rows() < uniform.unique_rows() * 0.7

    def test_indices_in_range(self):
        table = EmbeddingTableConfig(num_rows=500, gathers=20)
        trace = ZipfianTraceGenerator(alpha=1.05, seed=2).table_trace(table, 16)
        assert trace.indices.min() >= 0
        assert trace.indices.max() < 500

    def test_rejects_bad_alpha(self):
        with pytest.raises(TraceError):
            ZipfianTraceGenerator(alpha=0.0)


class TestConcatenateTraces:
    def test_concatenation_preserves_lookups(self):
        first = make_trace([1, 2], [0, 1, 2])
        second = make_trace([3, 4, 5], [0, 2, 3])
        merged = concatenate_traces([first, second])
        assert merged.total_lookups == 5
        assert merged.batch_size == 4
        np.testing.assert_array_equal(merged.indices, [1, 2, 3, 4, 5])

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(TraceError):
            concatenate_traces([])
        first = make_trace([1], [0, 1], num_rows=10)
        second = make_trace([1], [0, 1], num_rows=20)
        with pytest.raises(TraceError):
            concatenate_traces([first, second])
