"""Tests for the dot-product feature interaction stage."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dlrm.interaction import dot_feature_interaction, interaction_output_dim
from repro.dlrm.reference import reference_dot_interaction
from repro.errors import ModelShapeError


def random_inputs(batch, tables, dim, seed=0):
    rng = np.random.default_rng(seed)
    bottom = rng.standard_normal((batch, dim)).astype(np.float32)
    embeddings = rng.standard_normal((batch, tables, dim)).astype(np.float32)
    return bottom, embeddings


class TestDotFeatureInteraction:
    def test_output_dimension(self):
        bottom, embeddings = random_inputs(batch=3, tables=4, dim=8)
        out = dot_feature_interaction(bottom, embeddings)
        assert out.shape == (3, interaction_output_dim(4, 8))

    def test_layout_starts_with_bottom_vector(self):
        bottom, embeddings = random_inputs(batch=2, tables=2, dim=4)
        out = dot_feature_interaction(bottom, embeddings)
        np.testing.assert_allclose(out[:, :4], bottom, rtol=1e-6)

    def test_matches_naive_reference(self):
        bottom, embeddings = random_inputs(batch=5, tables=6, dim=16, seed=3)
        fast = dot_feature_interaction(bottom, embeddings)
        reference = reference_dot_interaction(bottom, embeddings)
        np.testing.assert_allclose(fast, reference, rtol=1e-4, atol=1e-4)

    def test_known_small_case(self):
        # One table, dim 2: single pair dot product between bottom and table-0.
        bottom = np.array([[1.0, 2.0]], dtype=np.float32)
        embeddings = np.array([[[3.0, 4.0]]], dtype=np.float32)
        out = dot_feature_interaction(bottom, embeddings)
        np.testing.assert_allclose(out, [[1.0, 2.0, 11.0]])

    def test_shape_validation(self):
        bottom, embeddings = random_inputs(batch=2, tables=2, dim=4)
        with pytest.raises(ModelShapeError):
            dot_feature_interaction(bottom[0], embeddings)
        with pytest.raises(ModelShapeError):
            dot_feature_interaction(bottom, embeddings[0])
        with pytest.raises(ModelShapeError):
            dot_feature_interaction(bottom, embeddings[:1])
        with pytest.raises(ModelShapeError):
            dot_feature_interaction(bottom, embeddings[:, :, :2])

    @given(
        batch=st.integers(min_value=1, max_value=6),
        tables=st.integers(min_value=1, max_value=8),
        dim=st.sampled_from([2, 4, 8]),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_reference(self, batch, tables, dim, seed):
        bottom, embeddings = random_inputs(batch, tables, dim, seed)
        fast = dot_feature_interaction(bottom, embeddings)
        reference = reference_dot_interaction(bottom, embeddings)
        np.testing.assert_allclose(fast, reference, rtol=1e-3, atol=1e-3)

    def test_scaling_a_vector_scales_its_pairs(self):
        bottom, embeddings = random_inputs(batch=1, tables=2, dim=4, seed=7)
        base = dot_feature_interaction(bottom, embeddings)
        scaled_embeddings = embeddings.copy()
        scaled_embeddings[:, 0, :] *= 2.0
        scaled = dot_feature_interaction(bottom, scaled_embeddings)
        dim = 4
        # Pair (table0, bottom) and pair (table1, table0) double; (table1, bottom) unchanged.
        assert scaled[0, dim + 0] == pytest.approx(2 * base[0, dim + 0], rel=1e-5)
        assert scaled[0, dim + 1] == pytest.approx(base[0, dim + 1], rel=1e-5)
        assert scaled[0, dim + 2] == pytest.approx(2 * base[0, dim + 2], rel=1e-5)


class TestInteractionOutputDim:
    def test_matches_pair_formula(self):
        assert interaction_output_dim(num_tables=5, embedding_dim=32) == 15 + 32

    def test_validation(self):
        with pytest.raises(ModelShapeError):
            interaction_output_dim(0, 32)
        with pytest.raises(ModelShapeError):
            interaction_output_dim(5, 0)
