"""Tests for the sharded-serving grid (Experiment.shard / shard_grid)."""

import pytest

from repro.config import DLRM1, DLRM2, HARPV2_SYSTEM
from repro.errors import SimulationError
from repro.experiment import Experiment
from repro.experiment.sharding import ShardingExperimentResult, cache_label
from repro.sharding import CacheConfig
from repro.workloads import ConstantRateArrivals, PoissonArrivals, Workload
from repro.workloads.traces import ZipfianTrace

ZIPF = Workload(
    arrivals=PoissonArrivals(rate_qps=20_000.0),
    trace=ZipfianTrace(alpha=1.05),
    name="zipf",
)
STEADY = Workload(arrivals=ConstantRateArrivals(rate_qps=20_000.0), name="steady")
LRU = CacheConfig(policy="lru", capacity_rows=2_048)


def small_grid(**kwargs):
    defaults = dict(
        shard_counts=(1, 2),
        strategies=("table", "row"),
        caches=(None, LRU),
        num_requests=300,
        seed=1,
    )
    defaults.update(kwargs)
    return (
        Experiment(HARPV2_SYSTEM)
        .backends("centaur")
        .models(DLRM2)
        .workloads(ZIPF)
        .shard(**defaults)
    )


class TestExperimentShard:
    def test_grid_spans_every_axis(self):
        grid = small_grid()
        assert isinstance(grid, ShardingExperimentResult)
        # 1 backend x 1 workload x 2 shard counts x 2 strategies x 2 caches.
        assert len(grid) == 8
        assert grid.shard_counts() == [1, 2]
        for (_, _, shards, _, cache, updates), report in grid:
            assert updates == "off"
            assert report.sharding is not None
            assert report.sharding.num_shards == shards
            assert report.completed_requests == 300
            assert (report.sharding.cache_policy is not None) == (cache != "off")

    def test_get_and_filter(self):
        grid = small_grid()
        report = grid.get("centaur", "zipf", 2, "row", cache_label(LRU))
        assert report.sharding.cache_policy == "lru"
        assert report.sharding.num_shards == 2
        with pytest.raises(KeyError):
            grid.get("centaur", "zipf", 8, "row")
        cached_points = grid.filter(cache=cache_label(LRU))
        assert len(cached_points) == 4
        assert all(point.sharding.hit_rate > 0 for point in cached_points)

    def test_cache_wins_on_the_skewed_trace_across_the_grid(self):
        grid = small_grid(strategies=("row",))
        for shards in (1, 2):
            off = grid.get("centaur", "zipf", shards, "row", "off")
            on = grid.get("centaur", "zipf", shards, "row", cache_label(LRU))
            assert on.sharding.hit_rate > off.sharding.hit_rate
            assert on.sharding.mean_gather_s < off.sharding.mean_gather_s

    def test_csv_has_one_row_per_point(self):
        grid = small_grid(shard_counts=(2,), strategies=("table",), caches=(None,))
        lines = grid.to_csv().strip().splitlines()
        assert len(lines) == 1 + len(grid)
        assert lines[0].startswith("backend,workload,shards,strategy,cache")

    def test_requires_workloads(self):
        with pytest.raises(SimulationError, match="workloads"):
            Experiment(HARPV2_SYSTEM).backends("centaur").models(DLRM2).shard(
                num_requests=10
            )

    def test_requires_a_single_model(self):
        with pytest.raises(SimulationError, match="one model"):
            (
                Experiment(HARPV2_SYSTEM)
                .backends("centaur")
                .models(DLRM1, DLRM2)
                .workloads(STEADY)
                .shard(num_requests=10)
            )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SimulationError, match="strategy"):
            small_grid(strategies=("mystery",))

    def test_duplicate_strategy_names_rejected(self):
        from repro.sharding import RowWiseHashSharding

        # Two instances sharing one name would silently collapse onto a
        # single grid point (points are keyed by strategy name).
        with pytest.raises(SimulationError, match="distinct"):
            small_grid(
                strategies=(RowWiseHashSharding(hash_seed=0), RowWiseHashSharding(hash_seed=7))
            )

    def test_unshardable_backend_is_rejected_loudly(self):
        from repro.backends import BackendCapabilities, register_backend
        from repro.backends.registry import unregister_backend
        from repro.cpu.cpu_runner import CPUOnlyRunner
        from repro.errors import ConfigurationError

        register_backend(
            "fused-tables-test",
            CPUOnlyRunner,
            design_point="FusedTables",
            capabilities=BackendCapabilities(supports_sharding=False),
        )
        try:
            with pytest.raises(ConfigurationError, match="partition"):
                (
                    Experiment(HARPV2_SYSTEM)
                    .backends("fused-tables-test")
                    .models(DLRM2)
                    .workloads(STEADY)
                    .shard(num_requests=10)
                )
        finally:
            unregister_backend("fused-tables-test")

    def test_updates_axis_spans_the_grid(self):
        from repro.experiment.sharding import update_label
        from repro.workloads import UpdateProcess

        storm = UpdateProcess(arrivals=10_000, rows_per_update=16, mode="invalidate")
        grid = small_grid(
            shard_counts=(2,),
            strategies=("row",),
            caches=(LRU,),
            updates=(None, storm),
        )
        assert len(grid) == 2
        off = grid.get("centaur", "zipf", 2, "row", cache_label(LRU))
        on = grid.get(
            "centaur", "zipf", 2, "row", cache_label(LRU), update_label(storm)
        )
        assert off.sharding.update_events == 0
        assert on.sharding.update_events > 0
        assert on.sharding.update_invalidations > 0
        assert len(grid.filter(updates=update_label(storm))) == 1
        header = grid.to_csv().strip().splitlines()[0]
        assert ",updates," in header
        assert ",update_invalidations," in header

    def test_duplicate_update_labels_rejected(self):
        from repro.workloads import UpdateProcess

        with pytest.raises(SimulationError, match="distinct"):
            small_grid(
                shard_counts=(2,),
                strategies=("row",),
                caches=(LRU,),
                updates=(
                    UpdateProcess(arrivals=1_000, name="same"),
                    UpdateProcess(arrivals=2_000, name="same"),
                ),
            )

    def test_deterministic_across_runs(self):
        first = small_grid(shard_counts=(2,), strategies=("row",), caches=(LRU,))
        second = small_grid(shard_counts=(2,), strategies=(" row".strip(),), caches=(LRU,))
        left = first.get("centaur", "zipf", 2, "row", cache_label(LRU))
        right = second.get("centaur", "zipf", 2, "row", cache_label(LRU))
        assert left.latency.samples_s.tolist() == right.latency.samples_s.tolist()
        assert left.sharding == right.sharding
