"""Serial-vs-parallel equivalence for GridExecutor-backed grids.

The contract under test (see :mod:`repro.experiment.executor`): for every
grid flavour, ``jobs=N`` produces the same points in the same key order,
each point pickling byte-identically to its serial twin, and the rendered
CSV matching byte for byte.  The equivalence matrix runs each grid twice
from fresh objects so nothing leaks between settings through shared state.
"""

import pickle
import threading

import pytest

from repro.backends import get_backend
from repro.chaos import FaultSchedule, ReplicaCrash
from repro.config import DLRM1, DLRM2, HARPV2_SYSTEM
from repro.errors import SimulationError
from repro.experiment import Experiment, GridExecutor, ResultCache, resolve_jobs
from repro.experiment.executor import BatchChunk, _run_batch_chunk, chunk_evenly
from repro.serving.planner import CapacityPlanner
from repro.sharding import CacheConfig
from repro.workloads import (
    ConstantRateArrivals,
    PoissonArrivals,
    TrafficMix,
    Workload,
)
from repro.workloads.traces import ZipfianTrace

JOBS = [2, 4]

STEADY = Workload(arrivals=ConstantRateArrivals(rate_qps=20_000.0), name="steady")
MIX = Workload(
    arrivals=PoissonArrivals(rate_qps=10_000.0),
    mix=TrafficMix.of((DLRM1, 0.5), (DLRM2, 0.5)),
    name="blend",
)
ZIPF = Workload(
    arrivals=PoissonArrivals(rate_qps=20_000.0),
    trace=ZipfianTrace(alpha=1.05),
    name="zipf",
)
LRU = CacheConfig(policy="lru", capacity_rows=2_048)
CRASH = FaultSchedule(
    [ReplicaCrash(at_s=0.003, restart_after_s=0.003)], sla_s=5e-3
)


def signature(result):
    """(key order, per-point pickles, CSV) — the byte-identity contract.

    Whole-container pickles are deliberately *not* compared: serial runs
    share equal strings/containers across points by identity while
    parallel runs split that sharing at task boundaries, so the container
    graphs differ even though every individual point is byte-identical.
    """
    keys = [key for key, _ in result]
    points = [pickle.dumps(point) for _, point in result]
    return keys, points, result.to_csv()


def _square(value):
    return value * value


class TestResolveJobs:
    def test_one_is_serial(self):
        assert resolve_jobs(1) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            resolve_jobs(-2)


class TestChunkEvenly:
    def test_balanced_and_order_preserving(self):
        chunks = chunk_evenly(list(range(10)), 3)
        assert [item for chunk in chunks for item in chunk] == list(range(10))
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        assert chunk_evenly([1, 2], 8) == [[1], [2]]
        assert chunk_evenly([], 4) == []


class TestGridExecutorMap:
    def test_serial_path_runs_in_process(self):
        seen = []
        out = GridExecutor(1).map(
            _square, [3, 1, 2], on_result=lambda i, r: seen.append((i, r))
        )
        assert out == [9, 1, 4]
        assert seen == [(0, 9), (1, 1), (2, 4)]

    def test_parallel_results_come_back_in_submission_order(self):
        payloads = list(range(7))
        seen = []
        out = GridExecutor(2).map(
            _square, payloads, on_result=lambda i, r: seen.append(i)
        )
        assert out == [_square(p) for p in payloads]
        assert sorted(seen) == list(range(7))


class TestBatchEquivalence:
    def run_grid(self, jobs):
        cache = ResultCache()
        result = (
            Experiment(HARPV2_SYSTEM, cache=cache, jobs=jobs)
            .backends("cpu", "centaur")
            .models(DLRM1, DLRM2)
            .batch_sizes(8, 64)
            .run()
        )
        return result, cache

    @pytest.mark.parametrize("jobs", JOBS)
    def test_matches_serial(self, jobs):
        serial, serial_cache = self.run_grid(1)
        parallel, parallel_cache = self.run_grid(jobs)
        assert signature(parallel) == signature(serial)
        assert parallel.to_dict() == serial.to_dict()
        # "Priced exactly once" holds across the whole pool, and the
        # hit/miss counters emulate the serial loop exactly.
        assert parallel_cache.max_compute_count() == 1
        assert parallel_cache.hits == serial_cache.hits
        assert parallel_cache.misses == serial_cache.misses

    def test_warm_cache_rerun_is_all_hits(self):
        _, cache = self.run_grid(2)
        misses_before = cache.misses
        rerun = (
            Experiment(HARPV2_SYSTEM, cache=cache, jobs=2)
            .backends("cpu", "centaur")
            .models(DLRM1, DLRM2)
            .batch_sizes(8, 64)
            .run()
        )
        assert cache.misses == misses_before
        assert cache.max_compute_count() == 1
        assert len(rerun) == 8

    @pytest.mark.parametrize("jobs", JOBS)
    def test_uncached_grid_matches_serial(self, jobs):
        def run(jobs):
            return (
                Experiment(HARPV2_SYSTEM, cache=None, jobs=jobs)
                .backends("cpu", "centaur")
                .models(DLRM1)
                .batch_sizes(8, 16)
                .run()
            )

        assert signature(run(jobs)) == signature(run(1))


class TestServeEquivalence:
    def run_grid(self, jobs):
        return (
            Experiment(HARPV2_SYSTEM, jobs=jobs)
            .backends("cpu", "centaur")
            .models(DLRM2)
            .workloads(STEADY, MIX)
            .serve(num_requests=250, seed=1)
        )

    @pytest.mark.parametrize("jobs", JOBS)
    def test_matches_serial(self, jobs):
        assert signature(self.run_grid(jobs)) == signature(self.run_grid(1))


class TestShardEquivalence:
    def run_grid(self, jobs):
        return (
            Experiment(HARPV2_SYSTEM, jobs=jobs)
            .backends("centaur")
            .models(DLRM2)
            .workloads(ZIPF)
            .shard(
                shard_counts=(1, 2),
                strategies=("table", "row"),
                caches=(None, LRU),
                num_requests=200,
                seed=1,
            )
        )

    @pytest.mark.parametrize("jobs", JOBS)
    def test_matches_serial(self, jobs):
        assert signature(self.run_grid(jobs)) == signature(self.run_grid(1))


class TestChaosEquivalence:
    def run_grid(self, jobs):
        return (
            Experiment(HARPV2_SYSTEM, jobs=jobs)
            .backends("cpu", "centaur")
            .models(DLRM2)
            .workloads(STEADY)
            .chaos(CRASH, initial_replicas=2, max_replicas=3, num_requests=250, seed=2)
        )

    @pytest.mark.parametrize("jobs", JOBS)
    def test_matches_serial(self, jobs):
        serial = self.run_grid(1)
        parallel = self.run_grid(jobs)
        assert signature(parallel) == signature(serial)
        for (key, report), (_, twin) in zip(serial, parallel):
            assert report.incidents is not None
            assert report.incidents == twin.incidents


class TestPlannerEquivalence:
    def plan(self, jobs):
        planner = CapacityPlanner(
            HARPV2_SYSTEM, sla_s=5e-3, max_replicas=4, jobs=jobs
        )
        return planner.plan(
            STEADY, DLRM2, backends=("cpu", "centaur"), num_requests=200
        )

    @pytest.mark.parametrize("jobs", JOBS)
    def test_matches_serial(self, jobs):
        assert self.plan(jobs) == self.plan(1)


class TestProgress:
    def test_batch_progress_multiset_matches_serial(self):
        def run(jobs):
            lines = []
            result = (
                Experiment(HARPV2_SYSTEM, cache=ResultCache(), jobs=jobs)
                .backends("cpu", "centaur")
                .models(DLRM1)
                .batch_sizes(8, 8, 16)  # duplicate batch exercises dedup
                .progress(lines.append)
                .run()
            )
            return result, lines

        serial, serial_lines = run(1)
        parallel, parallel_lines = run(2)
        assert signature(parallel) == signature(serial)
        assert len(parallel_lines) == len(serial_lines) == 6
        # The [n/total] counter follows completion order, which differs
        # across settings; the per-point bodies must not.
        bodies = lambda lines: sorted(line.split("] ", 1)[1] for line in lines)
        assert bodies(parallel_lines) == bodies(serial_lines)
        assert any(line.endswith("cached") for line in serial_lines)

    def test_serve_progress_counts_points(self):
        lines = []
        grid = (
            Experiment(HARPV2_SYSTEM, jobs=2)
            .backends("centaur")
            .models(DLRM2)
            .workloads(STEADY, MIX)
            .progress(lines.append)
            .serve(num_requests=200, seed=0)
        )
        assert len(lines) == len(grid) == 2
        assert all("served" in line for line in lines)


class TestCacheMerge:
    def test_merge_adopts_entries_and_sums_counters(self):
        backend = get_backend("centaur", HARPV2_SYSTEM)
        parent = ResultCache()
        parent.get_or_compute(backend, DLRM1, 8, HARPV2_SYSTEM)
        points = [("centaur", DLRM1, 16), ("centaur", DLRM2, 8), ("centaur", DLRM2, 16)]
        workers = [
            _run_batch_chunk(BatchChunk(HARPV2_SYSTEM, tuple(chunk)))
            for chunk in chunk_evenly(points, 2)
        ]
        for worker in workers:
            # Worker caches cross a process boundary in real runs.
            parent.merge(pickle.loads(pickle.dumps(worker)))
        assert len(parent) == 4
        assert parent.max_compute_count() == 1
        assert parent.misses == 4

    def test_merge_never_changes_parent_results(self):
        backend = get_backend("centaur", HARPV2_SYSTEM)
        parent = ResultCache()
        mine = parent.get_or_compute(backend, DLRM1, 8, HARPV2_SYSTEM)
        worker = _run_batch_chunk(
            BatchChunk(HARPV2_SYSTEM, (("centaur", DLRM1, 8),))
        )
        parent.merge(worker)
        # First cache to price a key wins; the parent's object survives.
        assert parent.peek(parent.key("centaur", DLRM1, 8, HARPV2_SYSTEM)) is mine
        # Duplicated work across caches still surfaces in the counters.
        assert parent.max_compute_count() == 2

    def test_worker_cache_save_load_round_trip(self, tmp_path):
        worker = _run_batch_chunk(
            BatchChunk(HARPV2_SYSTEM, (("centaur", DLRM1, 8), ("cpu", DLRM1, 8)))
        )
        path = tmp_path / "cache.json"
        worker.save(path)
        loaded = ResultCache.load(path)
        assert len(loaded) == len(worker) == 2
        for key, count in worker.compute_counts().items():
            assert count == 1
            assert loaded.peek(key).to_dict() == worker.peek(key).to_dict()


class _SlowBackend:
    """Counts run() calls and sleeps inside, widening any check/compute race."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0
        self.name = inner.name

    def run(self, model, batch_size):
        self.calls += 1
        import time

        time.sleep(0.01)
        return self.inner.run(model, batch_size)


class TestThreadSafety:
    def test_threads_hammering_one_key_compute_it_once(self):
        cache = ResultCache()
        backend = _SlowBackend(get_backend("centaur", HARPV2_SYSTEM))
        results = []
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            results.append(
                cache.get_or_compute(backend, DLRM1, 16, HARPV2_SYSTEM)
            )

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert backend.calls == 1
        assert cache.max_compute_count() == 1
        assert cache.hits == 7 and cache.misses == 1
        assert all(result is results[0] for result in results)
