"""Tests for the backends x workloads serving grid (Experiment.serve)."""

import pytest

from repro.config import DLRM1, DLRM2, HARPV2_SYSTEM
from repro.errors import SimulationError
from repro.experiment import Experiment
from repro.experiment.serving import ServingExperimentResult
from repro.workloads import (
    ConstantRateArrivals,
    PoissonArrivals,
    TrafficMix,
    Workload,
)

FAST = Workload(arrivals=ConstantRateArrivals(rate_qps=20_000.0), name="steady")
MIX = Workload(
    arrivals=PoissonArrivals(rate_qps=10_000.0),
    mix=TrafficMix.of((DLRM1, 0.5), (DLRM2, 0.5)),
    name="blend",
)


class TestExperimentServe:
    def test_grid_spans_backends_and_workloads(self):
        grid = (
            Experiment(HARPV2_SYSTEM)
            .backends("cpu", "centaur")
            .models(DLRM2)
            .workloads(FAST, MIX)
            .serve(num_requests=400, seed=1)
        )
        assert isinstance(grid, ServingExperimentResult)
        assert len(grid) == 4
        assert grid.backends() == ["cpu", "centaur"]
        assert grid.workload_names() == ["steady", "blend"]

    def test_get_and_filter(self):
        grid = (
            Experiment(HARPV2_SYSTEM)
            .backends("centaur")
            .models(DLRM2)
            .workloads(FAST)
            .serve(num_requests=300, seed=0)
        )
        report = grid.get("centaur", "steady")
        assert report.completed_requests == 300
        assert grid.get("centaur", "steady", DLRM2.name) is report
        assert grid.filter(backend="centaur") == [report]
        with pytest.raises(KeyError):
            grid.get("centaur", "nope")

    def test_mix_workload_reports_blend_label(self):
        grid = (
            Experiment(HARPV2_SYSTEM)
            .backends("centaur")
            .models(DLRM2)
            .workloads(MIX)
            .serve(num_requests=400, seed=2)
        )
        report = grid.get("centaur", "blend")
        assert report.model_name == MIX.mix.label
        assert report.completed_requests == 400

    def test_deterministic_across_runs(self):
        def run():
            return (
                Experiment(HARPV2_SYSTEM)
                .backends("centaur")
                .models(DLRM2)
                .workloads(FAST)
                .serve(num_requests=200, seed=7)
            )

        assert run().get("centaur", "steady").latency.p99_s == run().get(
            "centaur", "steady"
        ).latency.p99_s

    def test_replica_fanout(self):
        grid = (
            Experiment(HARPV2_SYSTEM)
            .backends("cpu")
            .models(DLRM2)
            .workloads(FAST)
            .serve(num_requests=400, replicas=3, seed=0)
        )
        report = grid.get("cpu", "steady")
        assert report.num_replicas == 3
        assert report.completed_requests == 400

    def test_to_csv_one_row_per_point(self):
        grid = (
            Experiment(HARPV2_SYSTEM)
            .backends("cpu", "centaur")
            .models(DLRM2)
            .workloads(FAST)
            .serve(num_requests=200, seed=0)
        )
        lines = grid.to_csv().strip().splitlines()
        assert lines[0].startswith("backend,workload,model")
        assert len(lines) == 1 + len(grid)

    def test_render_serving_grid(self):
        from repro.analysis import render_serving_grid

        grid = (
            Experiment(HARPV2_SYSTEM)
            .backends("centaur")
            .models(DLRM2)
            .workloads(FAST)
            .serve(num_requests=200, seed=0)
        )
        text = render_serving_grid(grid)
        assert "steady" in text and "centaur" in text


class TestValidation:
    def test_serve_requires_workloads(self):
        with pytest.raises(SimulationError, match="workloads"):
            Experiment(HARPV2_SYSTEM).backends("cpu").serve(num_requests=10)

    def test_duplicate_workload_names_rejected(self):
        with pytest.raises(SimulationError, match="distinct"):
            Experiment(HARPV2_SYSTEM).workloads(
                Workload(arrivals=PoissonArrivals(1_000.0), name="dup"),
                Workload(arrivals=PoissonArrivals(2_000.0), name="dup"),
            )

    def test_bare_rate_becomes_poisson_workload(self):
        experiment = Experiment(HARPV2_SYSTEM).workloads(5_000.0)
        assert len(experiment.grid_workloads) == 1
        assert experiment.grid_workloads[0].arrivals.mean_rate_qps == 5_000.0

    def test_invalid_replicas(self):
        with pytest.raises(SimulationError, match="replicas"):
            (
                Experiment(HARPV2_SYSTEM)
                .backends("cpu")
                .models(DLRM2)
                .workloads(FAST)
                .serve(num_requests=10, replicas=0)
            )


class TestExperimentAutoscale:
    def test_grid_reports_carry_autoscale_accounting(self):
        from repro.serving import QueueDepthPolicy

        grid = (
            Experiment(HARPV2_SYSTEM)
            .backends("cpu", "centaur")
            .models(DLRM2)
            .workloads(FAST)
            .autoscale(
                QueueDepthPolicy(high_watermark=16.0, low_watermark=2.0),
                max_replicas=3,
                num_requests=400,
                seed=1,
            )
        )
        assert len(grid) == 2
        for backend in ("cpu", "centaur"):
            report = grid.get(backend, "steady")
            assert report.completed_requests == 400
            assert report.autoscale is not None
            assert report.autoscale.policy == "queue-depth"
            assert report.replica_seconds > 0.0

    def test_warmup_defaults_to_the_backend_hint(self):
        from repro.backends import backend_registration
        from repro.serving import ScheduledPolicy

        grid = (
            Experiment(HARPV2_SYSTEM)
            .backends("centaur")
            .models(DLRM2)
            .workloads(FAST)
            .autoscale(
                ScheduledPolicy([(0.0, 1)]),
                max_replicas=2,
                num_requests=200,
                seed=0,
            )
        )
        report = grid.get("centaur", "steady")
        expected = backend_registration("centaur").capabilities.provision_warmup_s
        assert report.autoscale.warmup_s == expected

    def test_autoscale_requires_workloads(self):
        from repro.serving import QueueDepthPolicy

        with pytest.raises(SimulationError, match="workloads"):
            Experiment(HARPV2_SYSTEM).backends("cpu").autoscale(
                QueueDepthPolicy(), num_requests=10
            )

    def test_inelastic_backend_is_rejected_loudly(self):
        from repro.backends import BackendCapabilities, register_backend
        from repro.backends.registry import unregister_backend
        from repro.cpu.cpu_runner import CPUOnlyRunner
        from repro.errors import ConfigurationError
        from repro.serving import QueueDepthPolicy

        register_backend(
            "fixed-appliance-test",
            CPUOnlyRunner,
            design_point="FixedAppliance",
            capabilities=BackendCapabilities(supports_elastic_scaling=False),
        )
        try:
            with pytest.raises(ConfigurationError, match="elastic"):
                (
                    Experiment(HARPV2_SYSTEM)
                    .backends("fixed-appliance-test")
                    .models(DLRM2)
                    .workloads(FAST)
                    .autoscale(QueueDepthPolicy(), num_requests=10)
                )
        finally:
            unregister_backend("fixed-appliance-test")


class TestExperimentPlanCapacity:
    def test_plans_per_workload(self):
        plans = (
            Experiment(HARPV2_SYSTEM)
            .backends("cpu", "centaur")
            .models(DLRM2)
            .workloads(FAST)
            .plan_capacity(sla_s=5e-3, num_requests=2_000, seed=0)
        )
        assert set(plans) == {"steady"}
        plan = plans["steady"]
        assert {point.backend for point in plan.points} == {"cpu", "centaur"}
        assert plan.best() is not None
        assert plan.get("centaur").replicas <= plan.get("cpu").replicas

    def test_needs_exactly_one_model(self):
        with pytest.raises(SimulationError, match="one model"):
            (
                Experiment(HARPV2_SYSTEM)
                .backends("cpu")
                .models(DLRM1, DLRM2)
                .workloads(FAST)
                .plan_capacity(sla_s=5e-3, num_requests=100)
            )

    def test_explicit_model_overrides_the_axis(self):
        plans = (
            Experiment(HARPV2_SYSTEM)
            .backends("centaur")
            .models(DLRM1, DLRM2)
            .workloads(FAST)
            .plan_capacity(sla_s=5e-3, model=DLRM2, num_requests=1_000)
        )
        assert plans["steady"].model_name == DLRM2.name

    def test_requires_workloads(self):
        with pytest.raises(SimulationError, match="workloads"):
            Experiment(HARPV2_SYSTEM).backends("cpu").plan_capacity(
                sla_s=5e-3, num_requests=100
            )
