"""Tests for the memoizing ResultCache and its cache-effectiveness guarantee."""

import pytest

from repro.analysis import (
    ablation_link_bandwidth,
    figure5_latency_breakdown,
    figure6_cache_behaviour,
    figure7_effective_throughput,
    figure13_centaur_throughput,
    figure14_centaur_breakdown,
    figure15_comparison,
    headline_summary,
)
from repro.backends import get_backend
from repro.config import DLRM1, DLRM2, HARPV2_SYSTEM
from repro.experiment import (
    Experiment,
    ResultCache,
    default_cache,
    override_default_cache,
    system_fingerprint,
)


class CountingBackend:
    """Wraps a real backend and counts how often run() actually executes."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    @property
    def name(self):
        return self.inner.name

    @property
    def design_point(self):
        return self.inner.design_point

    @property
    def capabilities(self):
        return self.inner.capabilities

    def run(self, model, batch_size):
        self.calls += 1
        return self.inner.run(model, batch_size)

    def energy(self, model, batch_size):
        return self.run(model, batch_size).energy_joules


class TestResultCache:
    def test_memoizes_per_key(self):
        cache = ResultCache()
        backend = CountingBackend(get_backend("centaur", HARPV2_SYSTEM))
        first = cache.get_or_compute(backend, DLRM1, 16, HARPV2_SYSTEM)
        second = cache.get_or_compute(backend, DLRM1, 16, HARPV2_SYSTEM)
        assert first is second
        assert backend.calls == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.max_compute_count() == 1

    def test_distinct_coordinates_compute_separately(self):
        cache = ResultCache()
        backend = CountingBackend(get_backend("centaur", HARPV2_SYSTEM))
        cache.get_or_compute(backend, DLRM1, 16, HARPV2_SYSTEM)
        cache.get_or_compute(backend, DLRM1, 32, HARPV2_SYSTEM)
        cache.get_or_compute(backend, DLRM2, 16, HARPV2_SYSTEM)
        assert backend.calls == 3
        assert len(cache) == 3

    def test_system_fingerprint_distinguishes_platforms(self):
        scaled = HARPV2_SYSTEM.with_link(
            HARPV2_SYSTEM.link.with_bypass(HARPV2_SYSTEM.memory.peak_bandwidth)
        )
        assert system_fingerprint(HARPV2_SYSTEM) != system_fingerprint(scaled)
        rebuilt = HARPV2_SYSTEM.with_link(HARPV2_SYSTEM.link)
        assert system_fingerprint(HARPV2_SYSTEM) == system_fingerprint(rebuilt)

    def test_modified_system_is_a_cache_miss(self):
        cache = ResultCache()
        backend = CountingBackend(get_backend("centaur", HARPV2_SYSTEM))
        scaled = HARPV2_SYSTEM.with_link(
            HARPV2_SYSTEM.link.with_bypass(HARPV2_SYSTEM.memory.peak_bandwidth)
        )
        cache.get_or_compute(backend, DLRM1, 16, HARPV2_SYSTEM)
        cache.get_or_compute(backend, DLRM1, 16, scaled)
        assert backend.calls == 2

    def test_clear(self):
        cache = ResultCache()
        backend = get_backend("cpu", HARPV2_SYSTEM)
        cache.get_or_compute(backend, DLRM1, 4, HARPV2_SYSTEM)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_save_load_round_trip(self, tmp_path):
        cache = ResultCache()
        backend = get_backend("centaur", HARPV2_SYSTEM)
        original = cache.get_or_compute(backend, DLRM1, 16, HARPV2_SYSTEM)
        path = tmp_path / "cache.json"
        cache.save(path)
        restored = ResultCache.load(path)
        assert len(restored) == 1
        counting = CountingBackend(backend)
        result = restored.get_or_compute(counting, DLRM1, 16, HARPV2_SYSTEM)
        assert counting.calls == 0, "a persisted point must not recompute"
        assert result.latency_seconds == original.latency_seconds
        assert result.breakdown.stages == original.breakdown.stages
        assert result.extra == original.extra


class TestDefaultCacheOverride:
    def test_override_swaps_and_restores(self):
        before = default_cache()
        with override_default_cache() as cache:
            assert default_cache() is cache
            assert cache is not before
        assert default_cache() is before

    def test_experiment_uses_default_cache(self):
        with override_default_cache() as cache:
            Experiment(HARPV2_SYSTEM).backends("cpu").models(DLRM1).batch_sizes(4).run()
            assert len(cache) == 1

    def test_experiment_cache_none_disables_memoization(self):
        with override_default_cache() as cache:
            (
                Experiment(HARPV2_SYSTEM, cache=None)
                .backends("cpu")
                .models(DLRM1)
                .batch_sizes(4)
                .run()
            )
            assert len(cache) == 0


class TestCacheEffectiveness:
    def test_full_figure_suite_computes_each_point_exactly_once(self):
        """Regenerating every paper figure computes each design point once.

        This is the acceptance criterion of the Experiment redesign: the
        figures all slice the same (backend, model, batch) grid, so with the
        shared cache no unique point may ever be priced twice.
        """
        with override_default_cache() as cache:
            figure5_latency_breakdown(HARPV2_SYSTEM)
            figure6_cache_behaviour(HARPV2_SYSTEM)
            figure7_effective_throughput(HARPV2_SYSTEM)
            figure13_centaur_throughput(HARPV2_SYSTEM)
            figure14_centaur_breakdown(HARPV2_SYSTEM)
            figure15_comparison(HARPV2_SYSTEM)
            headline_summary(HARPV2_SYSTEM)
            ablation_link_bandwidth(HARPV2_SYSTEM)

            counts = cache.compute_counts()
            assert counts, "the figure suite must populate the cache"
            assert cache.max_compute_count() == 1, (
                "some design points were computed more than once: "
                f"{[key for key, count in counts.items() if count > 1]}"
            )
            # The full grid is 3 backends x 6 models x 6 batches = 108 points
            # on the unmodified platform; figures 5/6/7/13/14/15 + headline
            # all hit that same pool.
            harpv2 = system_fingerprint(HARPV2_SYSTEM)
            grid_points = [key for key in counts if key[3] == harpv2]
            assert len(grid_points) == 108
            assert cache.hits > len(counts), "later figures must reuse earlier points"

    def test_rerunning_a_figure_is_fully_cached(self):
        with override_default_cache() as cache:
            figure14_centaur_breakdown(HARPV2_SYSTEM)
            misses_after_first = cache.misses
            figure14_centaur_breakdown(HARPV2_SYSTEM)
            assert cache.misses == misses_after_first
            assert cache.max_compute_count() == 1
