"""Tests for the declarative Experiment builder and its result queries."""

import pytest

from repro.analysis.sweep import DesignPointSweep
from repro.config import DLRM1, DLRM3, HARPV2_SYSTEM, PAPER_BATCH_SIZES, PAPER_MODELS
from repro.errors import ConfigurationError, SimulationError
from repro.experiment import Experiment, ResultCache, run_grid


def small_grid(cache=None):
    return (
        Experiment(HARPV2_SYSTEM, cache=cache)
        .backends("cpu", "centaur")
        .models(DLRM1, DLRM3)
        .batch_sizes(1, 64)
        .run()
    )


class TestExperimentBuilder:
    def test_declarative_grid(self):
        grid = small_grid()
        assert len(grid) == 2 * 2 * 2
        assert grid.backends() == ["cpu", "centaur"]
        assert grid.model_names() == ["DLRM(1)", "DLRM(3)"]
        assert grid.batch_sizes() == [1, 64]

    def test_defaults_reproduce_the_paper_grid(self):
        experiment = Experiment(HARPV2_SYSTEM)
        assert experiment.grid_models == PAPER_MODELS
        assert experiment.grid_batch_sizes == PAPER_BATCH_SIZES
        assert set(experiment.backend_names) >= {"cpu", "cpu-gpu", "centaur"}

    def test_accepts_iterables_and_varargs(self):
        a = Experiment(HARPV2_SYSTEM).models([DLRM1, DLRM3]).batch_sizes([1, 4])
        b = Experiment(HARPV2_SYSTEM).models(DLRM1, DLRM3).batch_sizes(1, 4)
        assert a.grid_models == b.grid_models
        assert a.grid_batch_sizes == b.grid_batch_sizes

    def test_validation(self):
        with pytest.raises(SimulationError):
            Experiment(HARPV2_SYSTEM).backends()
        with pytest.raises(SimulationError):
            Experiment(HARPV2_SYSTEM).models()
        with pytest.raises(SimulationError):
            Experiment(HARPV2_SYSTEM).batch_sizes(0)
        with pytest.raises(ConfigurationError):
            Experiment(HARPV2_SYSTEM).backends("tpu")

    def test_conflicting_models_with_one_name_rejected(self):
        from repro.analysis.characterization import single_table_model
        from repro.config import DLRM4

        few = single_table_model(DLRM4, 5, name="X")
        many = single_table_model(DLRM4, 200, name="X")
        with pytest.raises(SimulationError, match="share the name"):
            Experiment(HARPV2_SYSTEM).models(few, many)
        # The same configuration repeated is harmless.
        Experiment(HARPV2_SYSTEM).models(DLRM1, DLRM1)

    def test_run_grid_convenience(self):
        grid = run_grid(
            HARPV2_SYSTEM, ["centaur"], [DLRM1], [16], cache=ResultCache()
        )
        assert len(grid) == 1
        assert grid.get("centaur", "DLRM(1)", 16).design_point == "Centaur"


class TestExperimentResultQueries:
    def test_get_accepts_aliases_and_design_point_labels(self):
        grid = small_grid()
        by_name = grid.get("centaur", "DLRM(3)", 64)
        assert grid.get("Centaur", "DLRM(3)", 64) is by_name
        assert grid.get("CPU-only", "DLRM(1)", 1) is grid.get("cpu", "DLRM(1)", 1)

    def test_get_missing_point_raises(self):
        grid = small_grid()
        with pytest.raises(KeyError):
            grid.get("cpu-gpu", "DLRM(1)", 1)

    def test_typoed_backend_raises_instead_of_matching_nothing(self):
        grid = small_grid()
        with pytest.raises(ConfigurationError, match="unknown backend"):
            grid.filter(backend="centuar")
        with pytest.raises(ConfigurationError, match="unknown backend"):
            grid.get("centuar", "DLRM(1)", 1)

    def test_filter(self):
        grid = small_grid()
        assert len(grid.filter(backend="centaur")) == 4
        assert len(grid.filter(model_name="DLRM(1)")) == 4
        assert len(grid.filter(batch_size=64)) == 4
        only = grid.filter(backend="cpu", model_name="DLRM(3)", batch_size=1)
        assert len(only) == 1
        assert only[0].design_point == "CPU-only"

    def test_pivot_single_backend(self):
        grid = small_grid()
        table = grid.pivot(value="latency_seconds", backend="centaur")
        assert set(table) == {"DLRM(1)", "DLRM(3)"}
        assert set(table["DLRM(1)"]) == {1, 64}
        assert table["DLRM(3)"][64] == grid.get("centaur", "DLRM(3)", 64).latency_seconds

    def test_pivot_multi_backend_keys_rows_by_backend(self):
        table = small_grid().pivot(value="energy_joules")
        assert ("cpu", "DLRM(1)") in table
        assert ("centaur", "DLRM(3)") in table

    def test_pivot_with_callable(self):
        table = small_grid().pivot(
            value=lambda result: result.breakdown.fraction("EMB"), backend="cpu"
        )
        assert 0.0 < table["DLRM(3)"][64] <= 1.0

    def test_to_dict_and_csv(self):
        grid = small_grid()
        payload = grid.to_dict()
        assert payload["system_fingerprint"]
        assert len(payload["results"]) == len(grid)
        csv_text = grid.to_csv()
        lines = csv_text.strip().splitlines()
        assert len(lines) == len(grid) + 1
        assert lines[0].startswith("backend,design_point,model,batch_size,latency_s")
        assert any(line.startswith("centaur,Centaur,DLRM(3),64") for line in lines)

    def test_to_sweep_result_round_trip(self):
        sweep = small_grid().to_sweep_result()
        assert sweep.design_points() == ["CPU-only", "Centaur"]
        assert sweep.get("Centaur", "DLRM(1)", 64).batch_size == 64


class TestVariantSweep:
    def test_addresses_results_by_sweep_value(self):
        from repro.analysis.characterization import single_table_model
        from repro.config import DLRM4
        from repro.experiment import VariantSweep

        sweep = VariantSweep(
            HARPV2_SYSTEM,
            ("cpu", "centaur"),
            {count: single_table_model(DLRM4, count) for count in (5, 50)},
            (1, 16),
        )
        assert len(sweep.grid) == 2 * 2 * 2
        assert sweep.model(5).gathers_per_table == 5
        result = sweep.result(50, "centaur", 16)
        assert result.design_point == "Centaur"
        assert result.model_name == sweep.model(50).name
        with pytest.raises(KeyError):
            sweep.model(999)

    def test_empty_variants_rejected(self):
        from repro.experiment import VariantSweep

        with pytest.raises(SimulationError):
            VariantSweep(HARPV2_SYSTEM, ("cpu",), {}, (1,))


class TestSweepCompatibility:
    def test_design_point_sweep_matches_experiment(self):
        sweep = DesignPointSweep(
            HARPV2_SYSTEM, models=[DLRM1], batch_sizes=[1, 16]
        ).run()
        grid = (
            Experiment(HARPV2_SYSTEM)
            .backends("cpu", "cpu-gpu", "centaur")
            .models(DLRM1)
            .batch_sizes(1, 16)
            .run()
        )
        for design_point, backend in (
            ("CPU-only", "cpu"),
            ("CPU-GPU", "cpu-gpu"),
            ("Centaur", "centaur"),
        ):
            for batch in (1, 16):
                legacy = sweep.get(design_point, "DLRM(1)", batch)
                modern = grid.get(backend, "DLRM(1)", batch)
                assert legacy.latency_seconds == modern.latency_seconds
                assert legacy.energy_joules == modern.energy_joules

    def test_design_point_sweep_accepts_registry_names(self):
        sweep = DesignPointSweep(
            HARPV2_SYSTEM,
            models=[DLRM1],
            batch_sizes=[4],
            design_points=("cpu", "centaur"),
        ).run()
        assert sweep.design_points() == ["CPU-only", "Centaur"]
        # Lookups accept the registry name the sweep was built with, too.
        assert sweep.get("cpu", "DLRM(1)", 4) is sweep.get("CPU-only", "DLRM(1)", 4)
        assert sweep.get("centaur", "DLRM(1)", 4).design_point == "Centaur"
