"""Tests for the DRAM service-time model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config.system import MemoryConfig
from repro.errors import SimulationError
from repro.memsys.dram import DRAMModel


@pytest.fixture()
def dram():
    return DRAMModel(MemoryConfig())


class TestLatencyModel:
    def test_average_latency_interpolates(self, dram):
        memory = dram.config
        all_miss = dram.average_latency(0.0)
        all_hit = dram.average_latency(1.0)
        assert all_miss == pytest.approx(memory.loaded_latency_s)
        assert all_hit == pytest.approx(0.5 * memory.idle_latency_s)
        middle = dram.average_latency(0.5)
        assert all_hit < middle < all_miss

    def test_invalid_hit_rate_rejected(self, dram):
        with pytest.raises(SimulationError):
            dram.average_latency(1.5)


class TestParallelismLimitedBandwidth:
    def test_scales_with_outstanding_requests(self, dram):
        low = dram.parallelism_limited_bandwidth(10)
        high = dram.parallelism_limited_bandwidth(100)
        assert high > low

    def test_capped_at_peak(self, dram):
        assert dram.parallelism_limited_bandwidth(1e6) == pytest.approx(
            dram.config.peak_bandwidth
        )

    def test_ten_mshrs_single_thread_is_far_below_peak(self, dram):
        """The paper's core observation: one latency-bound thread cannot
        come close to saturating the DRAM channels."""
        single_thread = dram.parallelism_limited_bandwidth(10)
        assert single_thread < 0.15 * dram.config.peak_bandwidth

    def test_rejects_non_positive_parallelism(self, dram):
        with pytest.raises(SimulationError):
            dram.parallelism_limited_bandwidth(0)


class TestServiceBurst:
    def test_zero_lines(self, dram):
        stats = dram.service_burst(0, outstanding_lines=10)
        assert stats.service_time_s == 0.0
        assert stats.transferred_bytes == 0

    def test_latency_limited_burst(self, dram):
        stats = dram.service_burst(1000, outstanding_lines=10)
        assert stats.latency_limited
        assert stats.achieved_bandwidth < dram.config.peak_bandwidth

    def test_bandwidth_limited_burst(self, dram):
        stats = dram.service_burst(10_000_000, outstanding_lines=10_000)
        assert not stats.latency_limited
        assert stats.achieved_bandwidth == pytest.approx(dram.config.peak_bandwidth)

    def test_negative_lines_rejected(self, dram):
        with pytest.raises(SimulationError):
            dram.service_burst(-1, outstanding_lines=10)

    @given(
        num_lines=st.integers(min_value=1, max_value=100_000),
        outstanding=st.integers(min_value=1, max_value=1_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_service_time_consistency(self, num_lines, outstanding):
        dram = DRAMModel(MemoryConfig())
        stats = dram.service_burst(num_lines, outstanding_lines=outstanding)
        assert stats.service_time_s >= stats.bandwidth_bound_s - 1e-15
        assert stats.service_time_s >= stats.parallelism_bound_s - 1e-15
        assert stats.achieved_bandwidth <= dram.config.peak_bandwidth * (1 + 1e-9)


class TestRowBufferModel:
    def test_gather_row_hit_rate_for_two_line_vectors(self, dram):
        # 128-byte vectors over a multi-GB table: second line of each vector
        # hits the row its first line opened -> 50% row-hit rate.
        rate = dram.row_hit_rate_for_gathers(vector_bytes=128, table_bytes=3_200_000_000)
        assert rate == pytest.approx(0.5)

    def test_single_line_vectors_never_hit(self, dram):
        rate = dram.row_hit_rate_for_gathers(vector_bytes=64, table_bytes=1_000_000_000)
        assert rate == pytest.approx(0.0)

    def test_tiny_table_mostly_hits(self, dram):
        rate = dram.row_hit_rate_for_gathers(vector_bytes=128, table_bytes=4096)
        assert rate >= 0.5

    def test_validation(self, dram):
        with pytest.raises(SimulationError):
            dram.row_hit_rate_for_gathers(0, 100)

    def test_empirical_hit_rate_sequential_vs_random(self, dram):
        sequential = np.arange(4096)
        random_lines = np.random.default_rng(0).integers(0, 10_000_000, size=4096)
        assert dram.estimate_row_hit_rate(sequential) > 0.9
        assert dram.estimate_row_hit_rate(random_lines) < 0.1

    def test_empirical_hit_rate_empty(self, dram):
        assert dram.estimate_row_hit_rate(np.array([])) == 0.0
