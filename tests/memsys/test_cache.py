"""Tests for the trace-driven set-associative cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.memsys.cache import ReplacementPolicy, SetAssociativeCache


class TestConstruction:
    def test_geometry(self):
        cache = SetAssociativeCache(capacity_bytes=8192, line_bytes=64, ways=4)
        assert cache.num_sets == 8192 // 64 // 4

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(capacity_bytes=0)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(capacity_bytes=100, line_bytes=64)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(capacity_bytes=64 * 6, line_bytes=64, ways=4)


class TestBasicBehaviour:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(capacity_bytes=4096, line_bytes=64, ways=4)
        assert cache.access(10) is False
        assert cache.access(10) is True
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_contains_does_not_touch_stats(self):
        cache = SetAssociativeCache(capacity_bytes=4096, line_bytes=64, ways=4)
        cache.access(1)
        before = cache.stats.accesses
        assert cache.contains(1)
        assert not cache.contains(2)
        assert cache.stats.accesses == before

    def test_occupancy_grows_until_capacity(self):
        cache = SetAssociativeCache(capacity_bytes=64 * 8, line_bytes=64, ways=2)
        for line in range(100):
            cache.access(line)
        assert cache.occupancy() == 8

    def test_reset(self):
        cache = SetAssociativeCache(capacity_bytes=4096, line_bytes=64, ways=4)
        cache.access(1)
        cache.reset()
        assert cache.occupancy() == 0
        assert cache.stats.accesses == 0

    def test_warm_installs_without_stats(self):
        cache = SetAssociativeCache(capacity_bytes=4096, line_bytes=64, ways=4)
        cache.warm([1, 2, 3])
        assert cache.stats.accesses == 0
        assert cache.access(1) is True

    def test_access_many_returns_delta_stats(self):
        cache = SetAssociativeCache(capacity_bytes=4096, line_bytes=64, ways=4)
        cache.access(1)
        stats = cache.access_many([1, 2, 2])
        assert stats.accesses == 3
        assert stats.hits == 2
        assert stats.misses == 1


class TestReplacement:
    def test_lru_evicts_least_recently_used(self):
        # Single set with 2 ways.
        cache = SetAssociativeCache(capacity_bytes=128, line_bytes=64, ways=2)
        cache.access(0)
        cache.access(1)
        cache.access(0)  # 1 becomes LRU
        cache.access(2)  # evicts 1
        assert cache.contains(0)
        assert not cache.contains(1)

    def test_fifo_evicts_oldest_inserted(self):
        cache = SetAssociativeCache(
            capacity_bytes=128, line_bytes=64, ways=2, policy=ReplacementPolicy.FIFO
        )
        cache.access(0)
        cache.access(1)
        cache.access(0)  # hit does not refresh FIFO age
        cache.access(2)  # evicts 0 (oldest insertion)
        assert not cache.contains(0)
        assert cache.contains(1)

    def test_small_working_set_hits_after_warmup(self):
        cache = SetAssociativeCache(capacity_bytes=64 * 64, line_bytes=64, ways=8)
        lines = np.arange(32)
        cache.access_many(lines)
        stats = cache.access_many(lines)
        assert stats.miss_rate == 0.0

    def test_streaming_working_set_always_misses(self):
        cache = SetAssociativeCache(capacity_bytes=64 * 16, line_bytes=64, ways=4)
        stats = cache.access_many(range(1000))
        assert stats.miss_rate == 1.0


class TestEmbeddingGatherBehaviour:
    """The cache-level phenomenon the paper builds on: huge tables defeat caching."""

    def test_large_table_random_gathers_mostly_miss(self):
        rng = np.random.default_rng(0)
        cache = SetAssociativeCache(capacity_bytes=256 * 1024, line_bytes=64, ways=8)
        # Table footprint 16 MB >> 256 KB cache.
        lines = rng.integers(0, 16 * 1024 * 1024 // 64, size=20_000)
        cache.access_many(lines[:10_000])  # warm up
        stats = cache.access_many(lines[10_000:])
        assert stats.miss_rate > 0.9

    def test_small_table_random_gathers_mostly_hit(self):
        rng = np.random.default_rng(0)
        cache = SetAssociativeCache(capacity_bytes=1024 * 1024, line_bytes=64, ways=8)
        # Table footprint 64 KB << 1 MB cache.
        lines = rng.integers(0, 64 * 1024 // 64, size=5_000)
        cache.access_many(lines[:2_000])
        stats = cache.access_many(lines[2_000:])
        assert stats.miss_rate < 0.05

    def test_miss_rate_grows_with_table_size(self):
        rng = np.random.default_rng(1)
        cache_bytes = 128 * 1024
        miss_rates = []
        for table_bytes in (64 * 1024, 512 * 1024, 4 * 1024 * 1024):
            cache = SetAssociativeCache(capacity_bytes=cache_bytes, line_bytes=64, ways=8)
            lines = rng.integers(0, table_bytes // 64, size=8_000)
            cache.access_many(lines[:4_000])
            miss_rates.append(cache.access_many(lines[4_000:]).miss_rate)
        assert miss_rates[0] < miss_rates[1] < miss_rates[2]


class TestPropertyBased:
    @given(
        lines=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300),
        ways=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=30, deadline=None)
    def test_counters_always_consistent(self, lines, ways):
        cache = SetAssociativeCache(capacity_bytes=64 * 16 * ways, line_bytes=64, ways=ways)
        cache.access_many(lines)
        cache.stats.validate()
        assert cache.stats.accesses == len(lines)
        assert cache.occupancy() <= 16 * ways

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_fully_resident_stream_second_pass_all_hits(self, lines):
        cache = SetAssociativeCache(capacity_bytes=64 * 64, line_bytes=64, ways=64)
        cache.access_many(lines)
        assert cache.access_many(lines).miss_rate == 0.0
