"""Tests for the statistics containers."""

import pytest

from repro.memsys.stats import CacheStats, MemoryTrafficStats


class TestCacheStats:
    def test_record_and_rates(self):
        stats = CacheStats()
        stats.record(hit=True)
        stats.record(hit=False)
        stats.record(hit=False)
        assert stats.accesses == 3
        assert stats.hit_rate == pytest.approx(1 / 3)
        assert stats.miss_rate == pytest.approx(2 / 3)

    def test_empty_rates_are_zero(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_merge(self):
        merged = CacheStats(accesses=4, hits=3, misses=1).merge(
            CacheStats(accesses=6, hits=2, misses=4)
        )
        assert merged.accesses == 10
        assert merged.hits == 5
        assert merged.misses == 5

    def test_validate_detects_inconsistency(self):
        with pytest.raises(ValueError):
            CacheStats(accesses=3, hits=1, misses=1).validate()
        CacheStats(accesses=2, hits=1, misses=1).validate()


class TestMemoryTrafficStats:
    def test_mpki(self):
        stats = MemoryTrafficStats(
            llc=CacheStats(accesses=100, hits=40, misses=60), instructions=30_000
        )
        assert stats.mpki == pytest.approx(2.0)

    def test_mpki_with_zero_instructions(self):
        assert MemoryTrafficStats().mpki == 0.0

    def test_effective_throughput(self):
        stats = MemoryTrafficStats(useful_bytes=1e6)
        assert stats.effective_throughput(1e-3) == pytest.approx(1e9)
        assert stats.effective_throughput(0.0) == 0.0
