"""Tests for address mapping helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memsys.address import AddressMapper, cache_lines_for_vector


class TestAddressMapper:
    def test_line_address(self):
        mapper = AddressMapper(line_bytes=64)
        assert mapper.line_address(0) == 0
        assert mapper.line_address(63) == 0
        assert mapper.line_address(64) == 1

    def test_line_address_vectorized(self):
        mapper = AddressMapper(line_bytes=64)
        np.testing.assert_array_equal(
            mapper.line_address(np.array([0, 64, 130])), [0, 1, 2]
        )

    def test_line_span_covers_unaligned_ranges(self):
        mapper = AddressMapper(line_bytes=64)
        # A 128-byte embedding vector starting mid-line touches three lines.
        np.testing.assert_array_equal(mapper.line_span(32, 128), [0, 1, 2])
        np.testing.assert_array_equal(mapper.line_span(0, 128), [0, 1])

    def test_line_span_empty(self):
        mapper = AddressMapper()
        assert mapper.line_span(100, 0).size == 0

    def test_channel_interleaving(self):
        mapper = AddressMapper(num_channels=4)
        channels = [mapper.channel_of_line(line) for line in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_dram_row_and_bank(self):
        mapper = AddressMapper(row_buffer_bytes=8192, num_channels=2, banks_per_channel=4)
        assert mapper.dram_row(8191) == 0
        assert mapper.dram_row(8192) == 1
        assert mapper.bank_of_row(9) == 9 % 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AddressMapper(line_bytes=0)
        with pytest.raises(ConfigurationError):
            AddressMapper(line_bytes=48)  # not a power of two
        with pytest.raises(ConfigurationError):
            AddressMapper(row_buffer_bytes=32, line_bytes=64)


class TestCacheLinesForVector:
    def test_paper_default_vector_spans_two_lines(self):
        # 32-dimensional fp32 embedding = 128 bytes = 2 cache lines.
        assert cache_lines_for_vector(128, 64) == 2

    def test_rounding_up(self):
        assert cache_lines_for_vector(129, 64) == 3
        assert cache_lines_for_vector(1, 64) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cache_lines_for_vector(0, 64)
        with pytest.raises(ConfigurationError):
            cache_lines_for_vector(128, 0)
