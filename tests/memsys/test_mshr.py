"""Tests for the MSHR file model."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.memsys.mshr import MSHRFile


class TestAllocation:
    def test_allocate_and_release(self):
        mshr = MSHRFile(capacity=4)
        mshr.allocate(100)
        assert mshr.occupancy == 1
        assert mshr.release(100) == 1
        assert mshr.occupancy == 0

    def test_secondary_miss_merges(self):
        mshr = MSHRFile(capacity=2)
        mshr.allocate(7)
        assert mshr.try_allocate(7)
        assert mshr.occupancy == 1
        assert mshr.merges == 1
        assert mshr.release(7) == 2

    def test_full_file_stalls(self):
        mshr = MSHRFile(capacity=2)
        mshr.allocate(1)
        mshr.allocate(2)
        assert mshr.is_full
        assert not mshr.try_allocate(3)
        assert mshr.stalls == 1

    def test_allocate_raises_when_full(self):
        mshr = MSHRFile(capacity=1)
        mshr.allocate(1)
        with pytest.raises(CapacityError):
            mshr.allocate(2)

    def test_release_unknown_line_raises(self):
        mshr = MSHRFile(capacity=1)
        with pytest.raises(CapacityError):
            mshr.release(5)

    def test_peak_occupancy_tracked(self):
        mshr = MSHRFile(capacity=4)
        for line in range(4):
            mshr.allocate(line)
        for line in range(4):
            mshr.release(line)
        assert mshr.peak_occupancy == 4
        assert mshr.occupancy == 0

    def test_oldest_entry(self):
        mshr = MSHRFile(capacity=4)
        mshr.allocate(10, issue_time=2.0)
        mshr.allocate(11, issue_time=1.0)
        assert mshr.oldest() == 11
        mshr.release(11)
        assert mshr.oldest() == 10

    def test_oldest_empty_is_none(self):
        assert MSHRFile(capacity=2).oldest() is None

    def test_outstanding_lines(self):
        mshr = MSHRFile(capacity=4)
        mshr.allocate(1)
        mshr.allocate(2)
        assert sorted(mshr.outstanding_lines()) == [1, 2]

    def test_reset(self):
        mshr = MSHRFile(capacity=2)
        mshr.allocate(1)
        mshr.try_allocate(1)
        mshr.reset()
        assert mshr.occupancy == 0
        assert mshr.allocations == 0
        assert mshr.merges == 0

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            MSHRFile(capacity=0)
