"""Tests for the analytic cache/traffic models (the fast path of Figures 6-7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DLRM1, DLRM4, DLRM5, DLRM6
from repro.config.system import CPUConfig
from repro.errors import SimulationError
from repro.memsys.analytic import (
    AnalyticCacheModel,
    EmbeddingAccessProfile,
    MLPAccessProfile,
    expected_unique_fraction,
    memory_level_parallelism_bandwidth,
)


class TestLittlesLaw:
    def test_bandwidth_formula(self):
        bandwidth = memory_level_parallelism_bandwidth(140, 64, 140e-9)
        assert bandwidth == pytest.approx(140 * 64 / 140e-9)

    def test_validation(self):
        with pytest.raises(SimulationError):
            memory_level_parallelism_bandwidth(0, 64, 1e-7)


class TestExpectedUniqueFraction:
    def test_single_draw_is_unique(self):
        assert expected_unique_fraction(1000, 1) == pytest.approx(1.0)

    def test_many_draws_over_small_population_saturate(self):
        assert expected_unique_fraction(10, 10_000) < 0.01

    def test_monotonically_decreasing_in_draws(self):
        fractions = [expected_unique_fraction(1000, draws) for draws in (1, 10, 100, 1000)]
        assert fractions == sorted(fractions, reverse=True)

    @given(
        population=st.integers(min_value=1, max_value=10**6),
        draws=st.integers(min_value=0, max_value=10**5),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_between_zero_and_one(self, population, draws):
        fraction = expected_unique_fraction(population, draws)
        assert 0.0 <= fraction <= 1.0


class TestAnalyticCacheModel:
    def test_small_structure_is_resident(self):
        model = AnalyticCacheModel(llc_bytes=35 * 1024 * 1024)
        assert model.resident_probability(1024 * 1024) == 1.0
        assert model.gather_miss_probability(1024 * 1024) == 0.0

    def test_huge_table_mostly_misses(self):
        model = AnalyticCacheModel(llc_bytes=35 * 1024 * 1024)
        assert model.gather_miss_probability(3_200_000_000) > 0.98

    def test_miss_probability_monotone_in_footprint(self):
        model = AnalyticCacheModel(llc_bytes=35 * 1024 * 1024)
        probabilities = [
            model.gather_miss_probability(bytes_)
            for bytes_ in (10_000_000, 128_000_000, 1_280_000_000, 3_200_000_000)
        ]
        assert probabilities == sorted(probabilities)

    def test_validation(self):
        with pytest.raises(SimulationError):
            AnalyticCacheModel(llc_bytes=0)
        with pytest.raises(SimulationError):
            AnalyticCacheModel(llc_bytes=100, usable_fraction=0.0)


class TestEmbeddingAccessProfile:
    @pytest.fixture()
    def profile(self):
        return EmbeddingAccessProfile(cpu=CPUConfig())

    def test_miss_rate_grows_with_batch(self, profile):
        rates = [profile.compute(DLRM4, batch).llc.miss_rate for batch in (1, 16, 128)]
        assert rates[0] < rates[1] < rates[2]

    def test_miss_rate_grows_with_table_footprint(self, profile):
        small = profile.compute(DLRM1, 64).llc.miss_rate
        large = profile.compute(DLRM5, 64).llc.miss_rate
        assert large > small

    def test_miss_rate_in_papers_ballpark(self, profile):
        # Figure 6(a) tops out around 45%; the model stays in that regime.
        for batch in (1, 32, 128):
            rate = profile.compute(DLRM4, batch).llc.miss_rate
            assert 0.0 < rate < 0.6

    def test_mpki_in_papers_ballpark(self, profile):
        # Figure 6(b) tops out around 6.5 MPKI.
        assert profile.compute(DLRM4, 128).mpki < 8.0
        assert profile.compute(DLRM4, 128).mpki > 2.0
        assert profile.compute(DLRM1, 1).mpki < 1.0

    def test_useful_bytes_scale_with_batch(self, profile):
        single = profile.compute(DLRM1, 1).useful_bytes
        batch64 = profile.compute(DLRM1, 64).useful_bytes
        assert batch64 == pytest.approx(64 * single)
        assert single == DLRM1.embedding_bytes_per_sample()

    def test_counters_consistent(self, profile):
        stats = profile.compute(DLRM6, 32)
        stats.llc.validate()
        assert stats.instructions > 0

    def test_rejects_bad_batch(self, profile):
        with pytest.raises(SimulationError):
            profile.compute(DLRM1, 0)


class TestMLPAccessProfile:
    @pytest.fixture()
    def profile(self):
        return MLPAccessProfile(cpu=CPUConfig())

    def test_mlp_layers_are_cache_friendly(self, profile):
        # The paper reports <20% LLC miss rates and sub-1 MPKI for MLP layers.
        for model in (DLRM1, DLRM4, DLRM6):
            for batch in (1, 32, 128):
                stats = profile.compute(model, batch)
                assert stats.llc.miss_rate < 0.20
                assert stats.mpki < 2.0

    def test_mlp_misses_far_fewer_than_embedding(self, profile):
        embedding = EmbeddingAccessProfile(cpu=CPUConfig())
        emb = embedding.compute(DLRM4, 64)
        mlp = profile.compute(DLRM4, 64)
        assert mlp.llc.misses < emb.llc.misses

    def test_counters_consistent(self, profile):
        profile.compute(DLRM6, 16).llc.validate()

    def test_rejects_bad_batch(self, profile):
        with pytest.raises(SimulationError):
            profile.compute(DLRM1, -1)
