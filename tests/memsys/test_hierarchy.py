"""Tests for the multi-level cache hierarchy."""

import pytest

from repro.errors import ConfigurationError
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.hierarchy import CacheHierarchy


def small_hierarchy():
    l1 = SetAssociativeCache(capacity_bytes=64 * 8, line_bytes=64, ways=2, name="L1")
    l2 = SetAssociativeCache(capacity_bytes=64 * 32, line_bytes=64, ways=4, name="L2")
    llc = SetAssociativeCache(capacity_bytes=64 * 128, line_bytes=64, ways=8, name="LLC")
    return CacheHierarchy([l1, l2, llc])


class TestConstruction:
    def test_levels_must_grow(self):
        big = SetAssociativeCache(capacity_bytes=64 * 64, line_bytes=64, ways=4)
        small = SetAssociativeCache(capacity_bytes=64 * 8, line_bytes=64, ways=2)
        with pytest.raises(ConfigurationError):
            CacheHierarchy([big, small])
        with pytest.raises(ConfigurationError):
            CacheHierarchy([])

    def test_broadwell_like_factory(self):
        hierarchy = CacheHierarchy.broadwell_like()
        assert len(hierarchy.levels) == 3
        assert hierarchy.levels[0].capacity_bytes < hierarchy.levels[1].capacity_bytes
        assert hierarchy.llc is hierarchy.levels[-1]


class TestAccessBehaviour:
    def test_first_access_misses_everywhere(self):
        hierarchy = small_hierarchy()
        result = hierarchy.access(1234)
        assert result.served_by_memory
        assert result.hit_level is None

    def test_second_access_hits_l1(self):
        hierarchy = small_hierarchy()
        hierarchy.access(1234)
        result = hierarchy.access(1234)
        assert result.hit_level == 0
        assert not result.served_by_memory

    def test_l1_eviction_leaves_line_in_llc(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0)
        # Stream enough lines to evict line 0 from the small L1 but not the LLC.
        hierarchy.access_many(range(1, 17))
        result = hierarchy.access(0)
        assert result.hit_level is not None
        assert result.hit_level >= 1

    def test_llc_stats_accumulate(self):
        hierarchy = small_hierarchy()
        hierarchy.access_many(range(10))
        stats = hierarchy.llc_stats()
        assert stats.accesses == 10
        assert stats.misses == 10

    def test_llc_not_probed_on_l1_hit(self):
        hierarchy = small_hierarchy()
        hierarchy.access(5)
        llc_accesses = hierarchy.llc.stats.accesses
        hierarchy.access(5)  # L1 hit
        assert hierarchy.llc.stats.accesses == llc_accesses

    def test_reset_clears_all_levels(self):
        hierarchy = small_hierarchy()
        hierarchy.access_many(range(20))
        hierarchy.reset()
        assert all(level.occupancy() == 0 for level in hierarchy.levels)
        assert hierarchy.llc_stats().accesses == 0
