"""Shared fixtures for the test suite.

The fixtures deliberately use *small* DLRM configurations (a few thousand
rows per table) so functional paths, trace-driven cache simulation and the
event-driven EB-Streamer all run in milliseconds; the full Table I presets
are exercised through the analytic performance models only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import HARPV2_SYSTEM, SystemConfig
from repro.config.models import DLRMConfig, homogeneous_dlrm
from repro.dlrm import DLRM, DLRMBatch, UniformTraceGenerator


@pytest.fixture(scope="session")
def system() -> SystemConfig:
    """The paper's HARPv2 evaluation platform configuration."""
    return HARPV2_SYSTEM


@pytest.fixture(scope="session")
def tiny_config() -> DLRMConfig:
    """A 4-table model small enough for exhaustive functional testing."""
    return homogeneous_dlrm(
        name="tiny",
        num_tables=4,
        rows_per_table=1_000,
        gathers_per_table=5,
        embedding_dim=32,
        bottom_hidden=(32, 16),
        top_hidden=(24,),
    )


@pytest.fixture(scope="session")
def small_config() -> DLRMConfig:
    """A slightly larger model used by integration tests."""
    return homogeneous_dlrm(
        name="small",
        num_tables=8,
        rows_per_table=4_000,
        gathers_per_table=10,
        embedding_dim=32,
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def trace_generator() -> UniformTraceGenerator:
    return UniformTraceGenerator(seed=42)


@pytest.fixture()
def tiny_model(tiny_config) -> DLRM:
    return DLRM.from_config(tiny_config, seed=7)


@pytest.fixture()
def tiny_batch(tiny_config, trace_generator) -> DLRMBatch:
    return trace_generator.model_batch(tiny_config, batch_size=6)
