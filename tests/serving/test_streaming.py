"""Streaming serving: laziness, equivalence with eager serving, multi-model.

The streaming driver pulls arrivals one event at a time, so memory is bound
by the in-flight work — not the stream length.  These tests pin:

* eager (sequence) and lazy (iterator) serving produce identical reports,
* a 1M-request run keeps peak resident requests bounded (satellite task),
* multi-model traffic mixes conserve requests and split batch segments,
* stream validation (out-of-order iterators fail loudly).
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.config import DLRM2, DLRM4, HARPV2_SYSTEM
from repro.config.models import DLRMConfig
from repro.errors import SimulationError
from repro.results import InferenceResult, LatencyBreakdown
from repro.serving import (
    ClusterSimulator,
    FixedSizeBatching,
    ServingSimulator,
    TimeoutBatching,
)
from repro.serving.replica import ReplicaServer, ServiceModel, drive_stream
from repro.sim.engine import Simulator
from repro.workloads import (
    ConstantRateArrivals,
    InferenceRequest,
    PoissonArrivals,
    TrafficMix,
    Workload,
)


@dataclass
class FlatRunner:
    """A constant-latency device: latency independent of model and batch."""

    latency_s: float = 1e-4
    design_point: str = "Flat"
    calls: int = 0

    def run(self, model: DLRMConfig, batch_size: int) -> InferenceResult:
        self.calls += 1
        return InferenceResult(
            design_point=self.design_point,
            model_name=model.name,
            batch_size=batch_size,
            breakdown=LatencyBreakdown({"Total": self.latency_s}),
            power_watts=10.0,
        )


class TestStreamingEquivalence:
    def test_lazy_iterator_matches_eager_sequence(self):
        """Same stream served eagerly and lazily: identical percentiles."""
        from repro import get_backend

        runner = get_backend("centaur", HARPV2_SYSTEM)
        process = PoissonArrivals(rate_qps=20_000.0)
        batching = TimeoutBatching(window_s=1e-3, max_batch_size=64)

        eager = ServingSimulator(runner, DLRM2, batching=batching).serve(
            process.generate(num_requests=2_000, seed=5)
        )
        lazy = ServingSimulator(runner, DLRM2, batching=batching).serve(
            process.arrivals(num_requests=2_000, seed=5)
        )
        assert eager.completed_requests == lazy.completed_requests
        assert eager.latency.p99_s == lazy.latency.p99_s
        assert eager.average_batch_size == lazy.average_batch_size
        assert eager.energy_joules == lazy.energy_joules

    def test_cluster_lazy_matches_eager(self):
        from repro import get_backend

        runner = get_backend("cpu", HARPV2_SYSTEM)
        process = PoissonArrivals(rate_qps=40_000.0)
        eager_cluster = ClusterSimulator(runner, DLRM2, num_replicas=3)
        lazy_cluster = ClusterSimulator(runner, DLRM2, num_replicas=3)
        eager = eager_cluster.serve(process.generate(num_requests=1_500, seed=2))
        lazy = lazy_cluster.serve(process.arrivals(num_requests=1_500, seed=2))
        assert eager.completed_requests == lazy.completed_requests
        assert eager.latency.p99_s == lazy.latency.p99_s


class TestBoundedMemory:
    def test_million_request_run_has_bounded_peak(self):
        """Satellite: 1M requests stream through the engine with peak
        resident requests bounded by the in-flight work, not the stream."""
        total = 1_000_000
        batch_cap = 1_024
        runner = FlatRunner(latency_s=2e-5)
        sim = Simulator()
        replica = ReplicaServer(
            sim,
            ServiceModel(runner, DLRM2),
            FixedSizeBatching(batch_size=batch_cap),
            record_latency_samples=False,
        )
        # Offered load at ~20% of device capacity (1024 / 2e-5 = 51.2M QPS)
        # so the queue stays shallow and the peak reflects in-flight work.
        stream = ConstantRateArrivals(rate_qps=10_000_000.0).arrivals(
            num_requests=total
        )
        outcome = drive_stream(sim, [replica], stream, lambda request: replica)
        assert outcome.scheduled == total
        assert outcome.completed == total
        # In-flight = pending batch (< cap) + device queue + look-ahead; far
        # below the stream length and proportional to the queue the offered
        # load sustains, not to the total request count.
        assert outcome.peak_resident <= replica.peak_outstanding + 1
        assert outcome.peak_resident < total / 10
        assert replica.completed_count == total
        # Samples disabled: no per-request floats and no per-batch records —
        # the run's only growth is the counters.
        assert len(replica.request_latency_s) == 0
        assert len(replica.executed) == 0
        assert replica.batch_count == -(-total // batch_cap)  # incl. flushed tail
        assert replica.batch_size_sum == total

    def test_aggregates_available_without_samples(self):
        runner = FlatRunner(latency_s=1e-4)
        sim = Simulator()
        replica = ReplicaServer(
            sim,
            ServiceModel(runner, DLRM2),
            FixedSizeBatching(batch_size=8),
            record_latency_samples=False,
        )
        stream = ConstantRateArrivals(rate_qps=50_000.0).arrivals(num_requests=64)
        drive_stream(sim, [replica], stream, lambda request: replica)
        assert replica.completed_count == 64
        assert replica.mean_latency_s > 0.0
        assert replica.latency_max_s >= replica.mean_latency_s
        with pytest.raises(SimulationError, match="samples disabled"):
            replica.build_report(DLRM2.name)


class TestMultiModelServing:
    def test_mix_conserves_and_prices_both_models(self):
        runner = FlatRunner()
        mix = TrafficMix.of((DLRM2, 0.5), (DLRM4, 0.5))
        workload = Workload(arrivals=PoissonArrivals(20_000.0), mix=mix)
        simulator = ServingSimulator(runner, DLRM2)
        report = simulator.serve_workload(workload, num_requests=1_000, seed=0)
        assert report.completed_requests == 1_000
        assert report.model_name == mix.label
        priced = {model for model, _ in simulator._service._cache}
        assert priced == {"DLRM(2)", "DLRM(4)"}

    def test_mixed_batches_split_into_per_model_segments(self):
        """A batch holding two models executes as two sequential segments."""
        runner = FlatRunner(latency_s=1e-4)
        sim = Simulator()
        service = ServiceModel(runner, DLRM2, extra_models=(DLRM4,))
        replica = ReplicaServer(sim, service, FixedSizeBatching(batch_size=4))
        requests = [
            InferenceRequest(0, 0.001, model_name="DLRM(2)"),
            InferenceRequest(1, 0.001, model_name="DLRM(4)"),
            InferenceRequest(2, 0.001, model_name="DLRM(2)"),
            InferenceRequest(3, 0.001, model_name="DLRM(4)"),
        ]
        drive_stream(sim, [replica], requests, lambda request: replica)
        # One closed batch of 4 -> two executed segments of 2, back to back.
        assert [batch.batch_size for batch in replica.executed] == [2, 2]
        first, second = replica.executed
        assert second.start_time_s == pytest.approx(first.finish_time_s)
        assert replica.completed_count == 4

    def test_unknown_model_fails_loudly(self):
        runner = FlatRunner()
        service = ServiceModel(runner, DLRM2)
        with pytest.raises(SimulationError, match="cannot price"):
            service.result(4, "DLRM(4)")

    def test_single_model_batches_stay_whole(self):
        """Untagged traffic must execute exactly as before (one segment)."""
        runner = FlatRunner()
        sim = Simulator()
        replica = ReplicaServer(
            sim, ServiceModel(runner, DLRM2), FixedSizeBatching(batch_size=4)
        )
        requests = [InferenceRequest(i, 0.001) for i in range(4)]
        drive_stream(sim, [replica], requests, lambda request: replica)
        assert [batch.batch_size for batch in replica.executed] == [4]


class TestStreamValidation:
    def test_out_of_order_iterator_rejected(self):
        runner = FlatRunner()
        sim = Simulator()
        replica = ReplicaServer(
            sim, ServiceModel(runner, DLRM2), FixedSizeBatching(batch_size=2)
        )
        disordered = iter(
            [InferenceRequest(0, 0.5), InferenceRequest(1, 0.1)]
        )
        with pytest.raises(SimulationError, match="time-ordered"):
            drive_stream(sim, [replica], disordered, lambda request: replica)

    def test_empty_stream_rejected_by_frontends(self):
        from repro import get_backend

        runner = get_backend("centaur", HARPV2_SYSTEM)
        simulator = ServingSimulator(runner, DLRM2)
        with pytest.raises(SimulationError, match="empty request stream"):
            simulator.serve(iter([]))
        with pytest.raises(SimulationError, match="empty request stream"):
            simulator.serve([])

    def test_stream_outcome_counters(self):
        runner = FlatRunner()
        sim = Simulator()
        replica = ReplicaServer(
            sim, ServiceModel(runner, DLRM2), FixedSizeBatching(batch_size=2)
        )
        requests = [InferenceRequest(i, 0.001 * (i + 1)) for i in range(6)]
        outcome = drive_stream(sim, [replica], requests, lambda request: replica)
        assert outcome.scheduled == 6
        assert outcome.completed == 6
        assert 1 <= outcome.peak_resident <= 6
