"""Tests for the autoscaling policies and the elastic cluster."""

import numpy as np
import pytest

from repro.backends import get_backend
from repro.config import DLRM1, DLRM2, HARPV2_SYSTEM
from repro.errors import ConfigurationError, SimulationError
from repro.serving import (
    AutoscalingCluster,
    ClusterSimulator,
    EWMAPolicy,
    LeastLoadedDispatcher,
    QueueDepthPolicy,
    ScheduledPolicy,
    TargetUtilizationPolicy,
    TimeoutBatching,
    parse_autoscaler_spec,
)
from repro.serving.autoscale import ClusterObservation
from repro.workloads import DiurnalArrivals, PoissonArrivals, Workload

BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=64)


def observation(**overrides) -> ClusterObservation:
    defaults = dict(
        time_s=1.0,
        interval_s=0.01,
        active_replicas=2,
        starting_replicas=0,
        draining_replicas=0,
        total_outstanding=4,
        queue_depth_per_replica=2.0,
        utilization=0.5,
        arrival_rate_qps=10_000.0,
        replica_capacity_qps=20_000.0,
        min_replicas=1,
        max_replicas=8,
    )
    defaults.update(overrides)
    return ClusterObservation(**defaults)


class TestQueueDepthPolicy:
    def test_scales_on_watermarks(self):
        policy = QueueDepthPolicy(high_watermark=8.0, low_watermark=1.0)
        assert policy.desired_replicas(observation(queue_depth_per_replica=10.0)) == 3
        assert policy.desired_replicas(observation(queue_depth_per_replica=0.5)) == 1
        assert policy.desired_replicas(observation(queue_depth_per_replica=4.0)) == 2

    def test_cooldown_is_hysteresis(self):
        policy = QueueDepthPolicy(high_watermark=8.0, low_watermark=1.0, cooldown_s=1.0)
        policy.reset()
        assert policy.desired_replicas(
            observation(time_s=0.0, queue_depth_per_replica=10.0)
        ) == 3
        # Within the cooldown the policy holds, whatever the queue does.
        assert policy.desired_replicas(
            observation(time_s=0.5, queue_depth_per_replica=100.0)
        ) == 2
        assert policy.desired_replicas(
            observation(time_s=1.5, queue_depth_per_replica=100.0)
        ) == 3

    def test_clamped_no_ops_do_not_restart_the_cooldown(self):
        # Pinned at max_replicas under sustained overload, every tick asks
        # for more capacity and is clamped back; those no-ops must not
        # hold the eventual scale-in hostage for a cooldown each.
        policy = QueueDepthPolicy(high_watermark=8.0, low_watermark=1.0, cooldown_s=1.0)
        policy.reset()
        pinned = observation(
            time_s=0.0, active_replicas=8, queue_depth_per_replica=100.0
        )
        assert policy.desired_replicas(pinned) == 8  # clamped: no change
        # The very next tick under-load may scale in immediately.
        assert policy.desired_replicas(
            observation(time_s=0.1, active_replicas=8, queue_depth_per_replica=0.0)
        ) == 7

    def test_reset_clears_cooldown(self):
        policy = QueueDepthPolicy(high_watermark=8.0, low_watermark=1.0, cooldown_s=10.0)
        policy.desired_replicas(observation(time_s=0.0, queue_depth_per_replica=10.0))
        policy.reset()
        assert policy.desired_replicas(
            observation(time_s=0.1, queue_depth_per_replica=10.0)
        ) == 3

    def test_validation(self):
        with pytest.raises(SimulationError):
            QueueDepthPolicy(high_watermark=1.0, low_watermark=2.0)
        with pytest.raises(SimulationError):
            QueueDepthPolicy(step=0)
        with pytest.raises(SimulationError):
            QueueDepthPolicy(cooldown_s=-1.0)


class TestTargetUtilizationPolicy:
    def test_proportional_rule(self):
        policy = TargetUtilizationPolicy(target=0.5, deadband=0.1)
        # 2 replicas at 90% utilization need ceil(2 * 0.9 / 0.5) = 4.
        assert policy.desired_replicas(observation(utilization=0.9)) == 4
        # 2 replicas at 10% need ceil(2 * 0.1 / 0.5) = 1.
        assert policy.desired_replicas(observation(utilization=0.1)) == 1

    def test_deadband_holds(self):
        policy = TargetUtilizationPolicy(target=0.5, deadband=0.15)
        for utilization in (0.36, 0.5, 0.64):
            assert policy.desired_replicas(observation(utilization=utilization)) == 2

    def test_validation(self):
        with pytest.raises(SimulationError):
            TargetUtilizationPolicy(target=0.0)
        with pytest.raises(SimulationError):
            TargetUtilizationPolicy(target=1.5)
        with pytest.raises(SimulationError):
            TargetUtilizationPolicy(target=0.5, deadband=0.5)


class TestScheduledPolicy:
    def test_follows_schedule(self):
        policy = ScheduledPolicy([(0.0, 1), (1.0, 4), (2.0, 2)])
        assert policy.desired_replicas(observation(time_s=0.5)) == 1
        assert policy.desired_replicas(observation(time_s=1.0)) == 4
        assert policy.desired_replicas(observation(time_s=5.0)) == 2

    def test_before_first_entry_defers_to_floor(self):
        policy = ScheduledPolicy([(1.0, 4)])
        # Returns 0; the controller clamps to min_replicas.
        assert policy.desired_replicas(observation(time_s=0.5)) == 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            ScheduledPolicy([])
        with pytest.raises(SimulationError):
            ScheduledPolicy([(0.0, 1), (0.0, 2)])
        with pytest.raises(SimulationError):
            ScheduledPolicy([(0.0, 0)])


class TestEWMAPolicy:
    def test_smooths_toward_observed_rate(self):
        policy = EWMAPolicy(alpha=0.5, headroom=1.0, replica_capacity_qps=10_000.0)
        policy.reset()
        # First observation seeds the average directly.
        assert policy.desired_replicas(observation(arrival_rate_qps=40_000.0)) == 4
        # 0.5 * 0 + 0.5 * 40000 = 20000 -> 2 replicas.
        assert policy.desired_replicas(observation(arrival_rate_qps=0.0)) == 2

    def test_uses_observed_capacity_when_not_given(self):
        policy = EWMAPolicy(alpha=1.0, headroom=1.0)
        policy.reset()
        desired = policy.desired_replicas(
            observation(arrival_rate_qps=40_000.0, replica_capacity_qps=20_000.0)
        )
        assert desired == 2

    def test_validation(self):
        with pytest.raises(SimulationError):
            EWMAPolicy(alpha=0.0)
        with pytest.raises(SimulationError):
            EWMAPolicy(headroom=0.0)
        with pytest.raises(SimulationError):
            EWMAPolicy(replica_capacity_qps=-1.0)


class TestParseAutoscalerSpec:
    def test_parses_every_kind(self):
        assert isinstance(parse_autoscaler_spec("queue"), QueueDepthPolicy)
        assert isinstance(parse_autoscaler_spec("util:target=0.7"), TargetUtilizationPolicy)
        assert isinstance(parse_autoscaler_spec("ewma:rate=20000"), EWMAPolicy)
        scheduled = parse_autoscaler_spec("schedule:0=1,0.5=4")
        assert isinstance(scheduled, ScheduledPolicy)
        assert scheduled.schedule == ((0.0, 1), (0.5, 4))

    def test_parameters_reach_the_policy(self):
        policy = parse_autoscaler_spec("queue:high=32,low=4,step=2,cooldown=0.1")
        assert policy.high_watermark == 32.0
        assert policy.low_watermark == 4.0
        assert policy.step == 2
        assert policy.cooldown_s == 0.1

    def test_rejects_bad_specs(self):
        for spec in ("", "warp-speed", "queue:frobnicate=1", "schedule:", "schedule:abc"):
            with pytest.raises(ConfigurationError):
                parse_autoscaler_spec(spec)


def _fingerprint(report):
    return (
        report.completed_requests,
        report.num_replicas,
        tuple(r.completed_requests for r in report.per_replica),
        report.latency.samples_s.tobytes(),
        report.total_energy_joules,
    )


class TestAutoscalingCluster:
    def _cluster(self, policy, **kwargs):
        backend = get_backend("cpu", HARPV2_SYSTEM)
        defaults = dict(
            min_replicas=1,
            max_replicas=4,
            control_interval_s=0.01,
            warmup_s=0.002,
            batching=BATCHING,
        )
        defaults.update(kwargs)
        return AutoscalingCluster(backend, DLRM2, policy=policy, **defaults)

    def test_validation(self):
        backend = get_backend("cpu", HARPV2_SYSTEM)
        with pytest.raises(SimulationError):
            AutoscalingCluster(backend, DLRM2, min_replicas=0)
        with pytest.raises(SimulationError):
            AutoscalingCluster(backend, DLRM2, min_replicas=4, max_replicas=2)
        with pytest.raises(SimulationError):
            AutoscalingCluster(backend, DLRM2, initial_replicas=9, max_replicas=4)
        with pytest.raises(SimulationError):
            AutoscalingCluster(backend, DLRM2, control_interval_s=0.0)
        with pytest.raises(SimulationError):
            AutoscalingCluster(backend, DLRM2, warmup_s=-1.0)
        with pytest.raises(SimulationError):
            AutoscalingCluster(backend, DLRM2, policy="queue")

    def test_disabled_is_bit_identical_to_static_cluster(self):
        backend = get_backend("cpu", HARPV2_SYSTEM)
        workload = Workload(arrivals=PoissonArrivals(rate_qps=30_000.0))
        static = ClusterSimulator(
            backend, DLRM2, num_replicas=3, batching=BATCHING
        ).serve_workload(workload, num_requests=2_000, seed=3)
        disabled = self._cluster(
            None, min_replicas=3, max_replicas=5
        ).serve_workload(workload, num_requests=2_000, seed=3)
        assert disabled.autoscale is None
        assert _fingerprint(disabled) == _fingerprint(static)
        np.testing.assert_array_equal(
            disabled.latency.samples_s, static.latency.samples_s
        )

    def test_scales_up_under_load_and_conserves_requests(self):
        policy = QueueDepthPolicy(high_watermark=16.0, low_watermark=2.0)
        cluster = self._cluster(policy)
        report = cluster.serve_workload(
            Workload(arrivals=PoissonArrivals(rate_qps=60_000.0)),
            num_requests=4_000,
            seed=1,
        )
        outcome = cluster.last_outcome
        assert outcome.scheduled == outcome.completed == 4_000
        assert report.completed_requests == 4_000
        assert report.autoscale is not None
        assert report.autoscale.scale_up_events >= 1
        assert report.autoscale.peak_replicas > 1

    def test_stranded_partial_batch_terminates_and_conserves(self):
        # Regression: FixedSizeBatching with no wait cap strands its trailing
        # partial batch (no close timer, no device-idle action).  The control
        # loop must stop ticking once only pending work remains so the
        # end-of-stream flush in drive_stream can drain it — this used to
        # keep the simulation alive forever.
        from repro.serving import FixedSizeBatching

        cluster = self._cluster(
            QueueDepthPolicy(high_watermark=16.0, low_watermark=2.0),
            batching=FixedSizeBatching(batch_size=64),
        )
        report = cluster.serve_workload(
            Workload(arrivals=PoissonArrivals(rate_qps=20_000.0)),
            num_requests=100,  # not a multiple of 64: the tail must flush
            seed=0,
        )
        assert cluster.last_outcome.completed == 100
        assert report.completed_requests == 100

    def test_drain_before_stop_loses_no_requests(self):
        # Force aggressive down-scaling right as load keeps arriving: the
        # schedule commissions 4 replicas then drops to 1 mid-stream.
        policy = ScheduledPolicy([(0.0, 4), (0.03, 1)])
        cluster = self._cluster(policy, initial_replicas=4, min_replicas=1)
        report = cluster.serve_workload(
            Workload(arrivals=PoissonArrivals(rate_qps=50_000.0)),
            num_requests=5_000,
            seed=2,
        )
        assert cluster.last_outcome.completed == 5_000
        assert report.completed_requests == 5_000
        assert report.autoscale.scale_down_events >= 3
        # The timeline must agree with the billing: drained replicas are
        # decommissioned in the final timeline entry, not reported as still
        # commissioned after their intervals closed.
        assert report.autoscale.timeline[-1][1] == 1

    def test_timeline_counts_stay_within_bounds(self):
        policy = TargetUtilizationPolicy(target=0.6, deadband=0.1)
        cluster = self._cluster(policy, min_replicas=1, max_replicas=3)
        report = cluster.serve_workload(
            Workload(
                arrivals=DiurnalArrivals(
                    trough_qps=5_000.0, peak_qps=50_000.0, period_s=0.2
                )
            ),
            duration_s=0.2,
            seed=4,
        )
        counts = [count for _, count in report.autoscale.timeline]
        times = [time for time, _ in report.autoscale.timeline]
        assert all(1 <= count <= 3 for count in counts)
        assert times == sorted(times)
        assert report.autoscale.replicas_at(0.0) == 1

    def test_long_warmup_keeps_new_replicas_out_of_service(self):
        # Warm-up longer than the run: commissioned replicas never activate,
        # so all traffic lands on the initial replica — but the fleet still
        # pays for the warming capacity.
        policy = ScheduledPolicy([(0.0, 1), (0.02, 3)])
        cluster = self._cluster(policy, warmup_s=10.0)
        report = cluster.serve_workload(
            Workload(arrivals=PoissonArrivals(rate_qps=20_000.0)),
            num_requests=2_000,
            seed=5,
        )
        assert report.num_replicas == 1
        assert len(report.per_replica) == 1
        assert report.autoscale.peak_replicas == 3
        single_makespan = report.per_replica[0].makespan_s
        assert report.autoscale.replica_seconds > single_makespan

    def test_replica_seconds_below_static_equivalent(self):
        policy = QueueDepthPolicy(high_watermark=32.0, low_watermark=4.0)
        cluster = self._cluster(policy, max_replicas=4)
        report = cluster.serve_workload(
            Workload(
                arrivals=DiurnalArrivals(
                    trough_qps=4_000.0, peak_qps=40_000.0, period_s=0.3
                )
            ),
            duration_s=0.3,
            seed=6,
        )
        static_equivalent = report.autoscale.peak_replicas * report.makespan_s
        assert report.replica_seconds < static_equivalent

    def test_idle_energy_accounting(self):
        policy = QueueDepthPolicy(high_watermark=32.0, low_watermark=4.0)
        cluster = self._cluster(policy, idle_power_w=50.0)
        report = cluster.serve_workload(
            Workload(arrivals=PoissonArrivals(rate_qps=20_000.0)),
            num_requests=2_000,
            seed=7,
        )
        autoscale = report.autoscale
        busy_seconds = sum(r.device_busy_s for r in report.per_replica)
        expected_idle = 50.0 * max(autoscale.replica_seconds - busy_seconds, 0.0)
        assert autoscale.idle_energy_joules == pytest.approx(expected_idle)
        assert autoscale.busy_energy_joules == pytest.approx(
            report.total_energy_joules
        )
        assert autoscale.total_energy_joules == pytest.approx(
            autoscale.busy_energy_joules + autoscale.idle_energy_joules
        )

    def test_dispatcher_only_sees_active_replicas(self):
        # With min == max == initial the fleet never changes; the elastic
        # path must agree with the static fleet on totals even with a
        # policy installed (it keeps asking for the same count).
        policy = ScheduledPolicy([(0.0, 2)])
        cluster = self._cluster(
            policy, min_replicas=2, max_replicas=2, initial_replicas=2,
            dispatcher=LeastLoadedDispatcher(),
        )
        workload = Workload(arrivals=PoissonArrivals(rate_qps=30_000.0))
        elastic = cluster.serve_workload(workload, num_requests=2_000, seed=8)
        backend = get_backend("cpu", HARPV2_SYSTEM)
        static = ClusterSimulator(
            backend, DLRM2, num_replicas=2, batching=BATCHING,
            dispatcher=LeastLoadedDispatcher(),
        ).serve_workload(workload, num_requests=2_000, seed=8)
        np.testing.assert_array_equal(
            elastic.latency.samples_s, static.latency.samples_s
        )

    def test_serves_smallest_model_with_ewma(self):
        policy = EWMAPolicy(alpha=0.5, headroom=1.2, replica_capacity_qps=15_000.0)
        cluster = AutoscalingCluster(
            get_backend("cpu", HARPV2_SYSTEM),
            DLRM1,
            policy=policy,
            min_replicas=1,
            max_replicas=4,
            control_interval_s=0.005,
            batching=BATCHING,
        )
        report = cluster.serve_workload(
            Workload(arrivals=PoissonArrivals(rate_qps=45_000.0)),
            num_requests=3_000,
            seed=9,
        )
        assert report.completed_requests == 3_000
        assert report.autoscale.peak_replicas >= 2
