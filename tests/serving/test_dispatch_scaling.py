"""Dispatcher behaviour when the replica fleet changes mid-stream.

Regression tests for two autoscaling-era bugs:

* ``RoundRobinDispatcher`` kept a monotonic counter and took the modulus at
  select time, so a fleet-size change skewed the rotation (skipping or
  double-hitting replicas).  The rotation is now anchored to the identity
  of the last-served replica.
* ``PowerOfTwoChoicesDispatcher`` consumed no randomness when only one
  replica was active, silently freezing its decision stream across a
  scale-to-one phase; every ``select`` now advances the RNG.
"""

import pytest

from repro.config import DLRM2, HARPV2_SYSTEM
from repro.core import CentaurRunner
from repro.serving import (
    AutoscalingCluster,
    PowerOfTwoChoicesDispatcher,
    RoundRobinDispatcher,
    ScheduledPolicy,
    TimeoutBatching,
)
from repro.workloads import PoissonArrivals, Workload

BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=32)


class FakeReplica:
    """The slice of replica state dispatchers inspect."""

    def __init__(self, outstanding: int = 0):
        self.outstanding = outstanding


def select_sequence(dispatcher, replicas, count, now=0.0):
    return [dispatcher.select(replicas, None, now) for _ in range(count)]


class TestRoundRobinUnderScaleEvents:
    def test_stable_fleet_keeps_the_legacy_rotation(self):
        dispatcher = RoundRobinDispatcher()
        replicas = [FakeReplica() for _ in range(3)]
        assert select_sequence(dispatcher, replicas, 7) == [0, 1, 2, 0, 1, 2, 0]

    def test_growth_continues_the_rotation_without_double_hits(self):
        dispatcher = RoundRobinDispatcher()
        replicas = [FakeReplica() for _ in range(3)]
        a, b, c = replicas
        assert select_sequence(dispatcher, replicas, 4) == [0, 1, 2, 0]
        # Fleet grows mid-stream; the old counter (4 % 4 == 0) would hit
        # the just-served replica ``a`` again.
        d = FakeReplica()
        grown = [a, b, c, d]
        follow = [grown[i] for i in select_sequence(dispatcher, grown, 4)]
        assert follow == [b, c, d, a]

    def test_shrink_of_the_last_served_replica_does_not_skip(self):
        dispatcher = RoundRobinDispatcher()
        a, b, c = (FakeReplica() for _ in range(3))
        select_sequence(dispatcher, [a, b, c], 2)  # served a, b
        # ``b`` (the last served) drains away; its old slot now holds ``c``,
        # which is exactly the replica next in rotation.
        shrunk = [a, c]
        follow = [shrunk[i] for i in select_sequence(dispatcher, shrunk, 3)]
        assert follow == [c, a, c]

    def test_shrink_elsewhere_keeps_rotation_by_identity(self):
        dispatcher = RoundRobinDispatcher()
        a, b, c = (FakeReplica() for _ in range(3))
        select_sequence(dispatcher, [a, b, c], 1)  # served a
        shrunk = [a, b]  # c drained; a was just served
        follow = [shrunk[i] for i in select_sequence(dispatcher, shrunk, 3)]
        assert follow == [b, a, b]

    def test_trailing_multi_drain_wraps_without_skipping(self):
        """Draining several trailing replicas (the autoscaler's pattern)
        including the last-served one must wrap the rotation to the front,
        not land mid-list and skip the early replicas."""
        dispatcher = RoundRobinDispatcher()
        fleet = [FakeReplica() for _ in range(5)]
        select_sequence(dispatcher, fleet, 5)  # last served: index 4
        shrunk = fleet[:3]  # replicas 3 and 4 drained together
        follow = [shrunk[i] for i in select_sequence(dispatcher, shrunk, 4)]
        assert follow == [fleet[0], fleet[1], fleet[2], fleet[0]]

    def test_fair_coverage_over_any_window_after_a_change(self):
        dispatcher = RoundRobinDispatcher()
        replicas = [FakeReplica() for _ in range(5)]
        select_sequence(dispatcher, replicas, 13)
        shrunk = replicas[1:]  # drop replica 0 mid-stream
        window = select_sequence(dispatcher, shrunk, len(shrunk))
        assert sorted(window) == list(range(len(shrunk))), (
            "one full window after a scale event must hit every replica once"
        )

    def test_reset_restarts_the_rotation(self):
        dispatcher = RoundRobinDispatcher()
        replicas = [FakeReplica() for _ in range(3)]
        select_sequence(dispatcher, replicas, 2)
        dispatcher.reset()
        assert dispatcher.select(replicas, None, 0.0) == 0


class TestRoundRobinUnderCrashEvents:
    """Crash-driven shrink removes *arbitrary* replicas, not the trailing
    suffix the autoscaler drains; the rotation must resume at the crashed
    anchor's remembered successor, not whatever now sits in its old slot."""

    def test_crash_of_anchor_and_an_earlier_replica_resumes_at_successor(self):
        dispatcher = RoundRobinDispatcher()
        a, b, c, d = (FakeReplica() for _ in range(4))
        select_sequence(dispatcher, [a, b, c, d], 3)  # last served: c
        # A crash takes the anchor ``c`` *and* ``a`` in one step.  The slot
        # heuristic would resume at index 2 -> wrap to ``b`` (double-hit
        # territory); the remembered rotation says ``d`` follows ``c``.
        survivors = [b, d]
        follow = [survivors[i] for i in select_sequence(dispatcher, survivors, 4)]
        assert follow == [d, b, d, b]

    def test_crash_of_anchor_mid_list_does_not_restart_the_rotation(self):
        dispatcher = RoundRobinDispatcher()
        fleet = [FakeReplica() for _ in range(5)]
        select_sequence(dispatcher, fleet, 2)  # last served: fleet[1]
        survivors = [fleet[0], fleet[2], fleet[4]]  # crash took 1 and 3
        follow = [survivors[i] for i in select_sequence(dispatcher, survivors, 3)]
        assert follow == [fleet[2], fleet[4], fleet[0]]

    def test_full_fleet_replacement_falls_back_to_the_slot_heuristic(self):
        dispatcher = RoundRobinDispatcher()
        old = [FakeReplica() for _ in range(3)]
        select_sequence(dispatcher, old, 2)  # last served index 1
        fresh = [FakeReplica() for _ in range(3)]
        assert dispatcher.select(fresh, None, 0.0) == 1

    def test_crash_then_restart_rejoins_the_rotation(self):
        dispatcher = RoundRobinDispatcher()
        a, b, c = (FakeReplica() for _ in range(3))
        select_sequence(dispatcher, [a, b, c], 3)  # last served: c
        shrunk = [a, b]  # c crashed
        assert [shrunk[i] for i in select_sequence(dispatcher, shrunk, 2)] == [a, b]
        healed = [a, b, c]  # c restarted into its old slot
        follow = [healed[i] for i in select_sequence(dispatcher, healed, 3)]
        assert follow == [c, a, b]


class TestPowerOfTwoUnderScaleEvents:
    def test_single_replica_phase_advances_the_rng(self):
        """A fleet that dipped to one replica must not replay the stream of
        a fleet that never did (the select consumed nothing before)."""
        replicas = [FakeReplica() for _ in range(4)]
        single = [FakeReplica()]

        dipped = PowerOfTwoChoicesDispatcher(seed=9)
        for _ in range(6):
            assert dipped.select(single, None, 0.0) == 0
        after_dip = select_sequence(dipped, replicas, 20)

        steady = PowerOfTwoChoicesDispatcher(seed=9)
        no_dip = select_sequence(steady, replicas, 20)
        assert after_dip != no_dip

    def test_scaled_trajectory_is_reproducible(self):
        def run():
            dispatcher = PowerOfTwoChoicesDispatcher(seed=5)
            dispatcher.reset()
            fleet3 = [FakeReplica(i) for i in range(3)]
            fleet1 = [FakeReplica()]
            fleet5 = [FakeReplica(i % 2) for i in range(5)]
            choices = select_sequence(dispatcher, fleet3, 10)
            choices += select_sequence(dispatcher, fleet1, 5)
            choices += select_sequence(dispatcher, fleet5, 10)
            return choices

        assert run() == run()

    def test_ties_break_toward_the_lower_index_without_extra_draws(self):
        dispatcher = PowerOfTwoChoicesDispatcher(seed=0)
        tied = [FakeReplica(2) for _ in range(4)]
        shadow = PowerOfTwoChoicesDispatcher(seed=0)
        for _ in range(25):
            choice = dispatcher.select(tied, None, 0.0)
            first, second = shadow._rng.choice(4, size=2, replace=False)
            assert choice == min(int(first), int(second))

    def test_loaded_candidate_loses(self):
        dispatcher = PowerOfTwoChoicesDispatcher(seed=1)
        replicas = [FakeReplica(10), FakeReplica(0), FakeReplica(10), FakeReplica(10)]
        picks = select_sequence(dispatcher, replicas, 40)
        # Whenever replica 1 was sampled it must have won its pairing; it
        # is sampled in roughly half of all pairs, so it dominates.
        assert picks.count(1) > len(picks) / 3


class TestAutoscaledServingRegression:
    """End-to-end: both dispatchers stay deterministic and conserve requests
    while a scheduled policy scales the fleet mid-stream."""

    @pytest.mark.parametrize(
        "make_dispatcher",
        [RoundRobinDispatcher, lambda: PowerOfTwoChoicesDispatcher(seed=11)],
    )
    def test_mid_stream_scale_event_double_run(self, make_dispatcher):
        workload = Workload(arrivals=PoissonArrivals(rate_qps=60_000))

        def run():
            cluster = AutoscalingCluster(
                CentaurRunner(HARPV2_SYSTEM),
                DLRM2,
                policy=ScheduledPolicy([(0.0, 1), (0.02, 4), (0.06, 2)]),
                min_replicas=1,
                max_replicas=4,
                control_interval_s=5e-3,
                batching=BATCHING,
                dispatcher=make_dispatcher(),
            )
            return cluster.serve_workload(workload, duration_s=0.1, seed=2)

        first, second = run(), run()
        assert first.completed_requests == second.completed_requests
        assert first.latency.samples_s.tolist() == second.latency.samples_s.tolist()
        assert first.autoscale.timeline == second.autoscale.timeline
        assert first.autoscale.scale_up_events >= 1
        assert first.autoscale.scale_down_events >= 1

    @pytest.mark.parametrize(
        "make_dispatcher",
        [RoundRobinDispatcher, lambda: PowerOfTwoChoicesDispatcher(seed=11)],
    )
    def test_crash_driven_shrink_double_run(self, make_dispatcher):
        """A crash removes a non-suffix replica mid-stream — the shrink the
        drain path never produces; dispatch must stay deterministic and
        conserve every request."""
        from repro.chaos import FaultSchedule, ReplicaCrash

        workload = Workload(arrivals=PoissonArrivals(rate_qps=60_000))

        def run():
            cluster = AutoscalingCluster(
                CentaurRunner(HARPV2_SYSTEM),
                DLRM2,
                policy=None,
                min_replicas=1,
                max_replicas=4,
                initial_replicas=4,
                warmup_s=2e-3,
                batching=BATCHING,
                dispatcher=make_dispatcher(),
            )
            report = cluster.serve_workload(
                workload,
                num_requests=3_000,
                seed=2,
                faults=FaultSchedule(
                    [
                        # Replica 1 dies first (non-suffix removal), then the
                        # current anchor region loses replica 2 as well.
                        ReplicaCrash(at_s=0.01, replica=1, restart_after_s=0.015),
                        ReplicaCrash(at_s=0.012, replica=2),
                    ]
                ),
            )
            return report, cluster.last_outcome

        (first, first_outcome), (second, second_outcome) = run(), run()
        assert first_outcome == second_outcome
        assert first_outcome.completed + first_outcome.shed == 3_000
        assert first.latency.samples_s.tolist() == second.latency.samples_s.tolist()
        assert first.autoscale.crashes == 2
        assert first.autoscale.restarts == 1
        # One full rotation after the crash still covers every live replica:
        # completions keep landing on all surviving replicas.
        live = [r for r in first.per_replica if r.completed_requests > 0]
        assert len(live) >= 3
