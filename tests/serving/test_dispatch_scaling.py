"""Dispatcher behaviour when the replica fleet changes mid-stream.

Regression tests for two autoscaling-era bugs:

* ``RoundRobinDispatcher`` kept a monotonic counter and took the modulus at
  select time, so a fleet-size change skewed the rotation (skipping or
  double-hitting replicas).  The rotation is now anchored to the identity
  of the last-served replica.
* ``PowerOfTwoChoicesDispatcher`` consumed no randomness when only one
  replica was active, silently freezing its decision stream across a
  scale-to-one phase; every ``select`` now advances the RNG.
"""

import pytest

from repro.config import DLRM2, HARPV2_SYSTEM
from repro.core import CentaurRunner
from repro.serving import (
    AutoscalingCluster,
    PowerOfTwoChoicesDispatcher,
    RoundRobinDispatcher,
    ScheduledPolicy,
    TimeoutBatching,
)
from repro.workloads import PoissonArrivals, Workload

BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=32)


class FakeReplica:
    """The slice of replica state dispatchers inspect."""

    def __init__(self, outstanding: int = 0):
        self.outstanding = outstanding


def select_sequence(dispatcher, replicas, count, now=0.0):
    return [dispatcher.select(replicas, None, now) for _ in range(count)]


class TestRoundRobinUnderScaleEvents:
    def test_stable_fleet_keeps_the_legacy_rotation(self):
        dispatcher = RoundRobinDispatcher()
        replicas = [FakeReplica() for _ in range(3)]
        assert select_sequence(dispatcher, replicas, 7) == [0, 1, 2, 0, 1, 2, 0]

    def test_growth_continues_the_rotation_without_double_hits(self):
        dispatcher = RoundRobinDispatcher()
        replicas = [FakeReplica() for _ in range(3)]
        a, b, c = replicas
        assert select_sequence(dispatcher, replicas, 4) == [0, 1, 2, 0]
        # Fleet grows mid-stream; the old counter (4 % 4 == 0) would hit
        # the just-served replica ``a`` again.
        d = FakeReplica()
        grown = [a, b, c, d]
        follow = [grown[i] for i in select_sequence(dispatcher, grown, 4)]
        assert follow == [b, c, d, a]

    def test_shrink_of_the_last_served_replica_does_not_skip(self):
        dispatcher = RoundRobinDispatcher()
        a, b, c = (FakeReplica() for _ in range(3))
        select_sequence(dispatcher, [a, b, c], 2)  # served a, b
        # ``b`` (the last served) drains away; its old slot now holds ``c``,
        # which is exactly the replica next in rotation.
        shrunk = [a, c]
        follow = [shrunk[i] for i in select_sequence(dispatcher, shrunk, 3)]
        assert follow == [c, a, c]

    def test_shrink_elsewhere_keeps_rotation_by_identity(self):
        dispatcher = RoundRobinDispatcher()
        a, b, c = (FakeReplica() for _ in range(3))
        select_sequence(dispatcher, [a, b, c], 1)  # served a
        shrunk = [a, b]  # c drained; a was just served
        follow = [shrunk[i] for i in select_sequence(dispatcher, shrunk, 3)]
        assert follow == [b, a, b]

    def test_trailing_multi_drain_wraps_without_skipping(self):
        """Draining several trailing replicas (the autoscaler's pattern)
        including the last-served one must wrap the rotation to the front,
        not land mid-list and skip the early replicas."""
        dispatcher = RoundRobinDispatcher()
        fleet = [FakeReplica() for _ in range(5)]
        select_sequence(dispatcher, fleet, 5)  # last served: index 4
        shrunk = fleet[:3]  # replicas 3 and 4 drained together
        follow = [shrunk[i] for i in select_sequence(dispatcher, shrunk, 4)]
        assert follow == [fleet[0], fleet[1], fleet[2], fleet[0]]

    def test_fair_coverage_over_any_window_after_a_change(self):
        dispatcher = RoundRobinDispatcher()
        replicas = [FakeReplica() for _ in range(5)]
        select_sequence(dispatcher, replicas, 13)
        shrunk = replicas[1:]  # drop replica 0 mid-stream
        window = select_sequence(dispatcher, shrunk, len(shrunk))
        assert sorted(window) == list(range(len(shrunk))), (
            "one full window after a scale event must hit every replica once"
        )

    def test_reset_restarts_the_rotation(self):
        dispatcher = RoundRobinDispatcher()
        replicas = [FakeReplica() for _ in range(3)]
        select_sequence(dispatcher, replicas, 2)
        dispatcher.reset()
        assert dispatcher.select(replicas, None, 0.0) == 0


class TestPowerOfTwoUnderScaleEvents:
    def test_single_replica_phase_advances_the_rng(self):
        """A fleet that dipped to one replica must not replay the stream of
        a fleet that never did (the select consumed nothing before)."""
        replicas = [FakeReplica() for _ in range(4)]
        single = [FakeReplica()]

        dipped = PowerOfTwoChoicesDispatcher(seed=9)
        for _ in range(6):
            assert dipped.select(single, None, 0.0) == 0
        after_dip = select_sequence(dipped, replicas, 20)

        steady = PowerOfTwoChoicesDispatcher(seed=9)
        no_dip = select_sequence(steady, replicas, 20)
        assert after_dip != no_dip

    def test_scaled_trajectory_is_reproducible(self):
        def run():
            dispatcher = PowerOfTwoChoicesDispatcher(seed=5)
            dispatcher.reset()
            fleet3 = [FakeReplica(i) for i in range(3)]
            fleet1 = [FakeReplica()]
            fleet5 = [FakeReplica(i % 2) for i in range(5)]
            choices = select_sequence(dispatcher, fleet3, 10)
            choices += select_sequence(dispatcher, fleet1, 5)
            choices += select_sequence(dispatcher, fleet5, 10)
            return choices

        assert run() == run()

    def test_ties_break_toward_the_lower_index_without_extra_draws(self):
        dispatcher = PowerOfTwoChoicesDispatcher(seed=0)
        tied = [FakeReplica(2) for _ in range(4)]
        shadow = PowerOfTwoChoicesDispatcher(seed=0)
        for _ in range(25):
            choice = dispatcher.select(tied, None, 0.0)
            first, second = shadow._rng.choice(4, size=2, replace=False)
            assert choice == min(int(first), int(second))

    def test_loaded_candidate_loses(self):
        dispatcher = PowerOfTwoChoicesDispatcher(seed=1)
        replicas = [FakeReplica(10), FakeReplica(0), FakeReplica(10), FakeReplica(10)]
        picks = select_sequence(dispatcher, replicas, 40)
        # Whenever replica 1 was sampled it must have won its pairing; it
        # is sampled in roughly half of all pairs, so it dominates.
        assert picks.count(1) > len(picks) / 3


class TestAutoscaledServingRegression:
    """End-to-end: both dispatchers stay deterministic and conserve requests
    while a scheduled policy scales the fleet mid-stream."""

    @pytest.mark.parametrize(
        "make_dispatcher",
        [RoundRobinDispatcher, lambda: PowerOfTwoChoicesDispatcher(seed=11)],
    )
    def test_mid_stream_scale_event_double_run(self, make_dispatcher):
        workload = Workload(arrivals=PoissonArrivals(rate_qps=60_000))

        def run():
            cluster = AutoscalingCluster(
                CentaurRunner(HARPV2_SYSTEM),
                DLRM2,
                policy=ScheduledPolicy([(0.0, 1), (0.02, 4), (0.06, 2)]),
                min_replicas=1,
                max_replicas=4,
                control_interval_s=5e-3,
                batching=BATCHING,
                dispatcher=make_dispatcher(),
            )
            return cluster.serve_workload(workload, duration_s=0.1, seed=2)

        first, second = run(), run()
        assert first.completed_requests == second.completed_requests
        assert first.latency.samples_s.tolist() == second.latency.samples_s.tolist()
        assert first.autoscale.timeline == second.autoscale.timeline
        assert first.autoscale.scale_up_events >= 1
        assert first.autoscale.scale_down_events >= 1
