"""Tests for request-arrival generation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.serving.requests import InferenceRequest, PoissonRequestGenerator


class TestInferenceRequest:
    def test_validation(self):
        with pytest.raises(SimulationError):
            InferenceRequest(request_id=-1, arrival_time_s=0.0)
        with pytest.raises(SimulationError):
            InferenceRequest(request_id=0, arrival_time_s=-1.0)


class TestPoissonRequestGenerator:
    def test_deterministic_for_seed(self):
        first = PoissonRequestGenerator(1000.0, seed=3).generate(num_requests=50)
        second = PoissonRequestGenerator(1000.0, seed=3).generate(num_requests=50)
        assert [r.arrival_time_s for r in first] == [r.arrival_time_s for r in second]

    def test_repeated_generate_calls_restart_from_seed(self):
        """Regression: one instance, two generate() calls, identical streams.

        The generator used to keep advancing a single RNG stream across
        calls, so "same seed" only meant "same arrivals" on a fresh object.
        Every call now restarts from the stored seed.
        """
        generator = PoissonRequestGenerator(1000.0, seed=3)
        first = generator.generate(num_requests=50)
        second = generator.generate(num_requests=50)
        assert [r.arrival_time_s for r in first] == [r.arrival_time_s for r in second]
        # Mixed-mode calls share the stream prefix too.
        by_duration = generator.generate(duration_s=first[-1].arrival_time_s)
        assert [r.arrival_time_s for r in by_duration] == [
            r.arrival_time_s for r in first
        ]

    def test_stream_matches_generate(self):
        generator = PoissonRequestGenerator(2000.0, seed=9)
        eager = generator.generate(num_requests=40)
        lazy = list(generator.stream(num_requests=40))
        assert [r.arrival_time_s for r in eager] == [r.arrival_time_s for r in lazy]

    def test_arrivals_sorted_and_ids_sequential(self):
        requests = PoissonRequestGenerator(500.0, seed=0).generate(num_requests=100)
        times = [r.arrival_time_s for r in requests]
        assert times == sorted(times)
        assert [r.request_id for r in requests] == list(range(100))

    def test_duration_mode_respects_window(self):
        requests = PoissonRequestGenerator(2_000.0, seed=1).generate(duration_s=0.05)
        assert all(r.arrival_time_s <= 0.05 for r in requests)
        # About rate x duration arrivals are expected (within loose bounds).
        assert 40 <= len(requests) <= 180

    def test_average_rate_close_to_requested(self):
        rate = 5_000.0
        requests = PoissonRequestGenerator(rate, seed=7).generate(num_requests=5_000)
        empirical_rate = len(requests) / requests[-1].arrival_time_s
        assert empirical_rate == pytest.approx(rate, rel=0.1)

    def test_interarrival_times_are_exponential_like(self):
        requests = PoissonRequestGenerator(1_000.0, seed=5).generate(num_requests=4_000)
        gaps = np.diff([0.0] + [r.arrival_time_s for r in requests])
        # Mean ~1ms and coefficient of variation ~1 for an exponential.
        assert np.mean(gaps) == pytest.approx(1e-3, rel=0.1)
        assert np.std(gaps) / np.mean(gaps) == pytest.approx(1.0, abs=0.15)

    def test_argument_validation(self):
        with pytest.raises(SimulationError):
            PoissonRequestGenerator(0.0)
        generator = PoissonRequestGenerator(10.0)
        with pytest.raises(SimulationError):
            generator.generate()
        with pytest.raises(SimulationError):
            generator.generate(duration_s=1.0, num_requests=5)
        with pytest.raises(SimulationError):
            generator.generate(duration_s=-1.0)
        with pytest.raises(SimulationError):
            generator.generate(num_requests=0)
