"""Tests for the pluggable request dispatchers."""

import pytest

from repro.config import DLRM2, HARPV2_SYSTEM
from repro.core import CentaurRunner
from repro.cpu import CPUOnlyRunner
from repro.errors import SimulationError
from repro.serving import (
    ClusterSimulator,
    Dispatcher,
    HeterogeneousCluster,
    JoinShortestQueueDispatcher,
    LeastLoadedDispatcher,
    PoissonRequestGenerator,
    PowerOfTwoChoicesDispatcher,
    ReplicaSpec,
    RoundRobinDispatcher,
    TimeoutBatching,
)

BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=32)

ALL_DISPATCHERS = [
    RoundRobinDispatcher,
    JoinShortestQueueDispatcher,
    LeastLoadedDispatcher,
    PowerOfTwoChoicesDispatcher,
]


def stream(rate_qps=40_000, n=400, seed=2):
    return PoissonRequestGenerator(rate_qps=rate_qps, seed=seed).generate(num_requests=n)


class TestConservation:
    @pytest.mark.parametrize("dispatcher_cls", ALL_DISPATCHERS)
    def test_every_request_served_exactly_once(self, dispatcher_cls):
        cluster = ClusterSimulator(
            CentaurRunner(HARPV2_SYSTEM),
            DLRM2,
            num_replicas=3,
            batching=BATCHING,
            dispatcher=dispatcher_cls(),
        )
        report = cluster.serve(stream())
        assert report.completed_requests == 400
        assert len(report.latency) == 400
        assert sum(r.completed_requests for r in report.per_replica) == 400

    @pytest.mark.parametrize("dispatcher_cls", ALL_DISPATCHERS)
    def test_heterogeneous_fleet_conserves_requests(self, dispatcher_cls):
        specs = [
            ReplicaSpec(CPUOnlyRunner(HARPV2_SYSTEM)),
            ReplicaSpec(CentaurRunner(HARPV2_SYSTEM)),
        ]
        cluster = HeterogeneousCluster(
            specs, DLRM2, dispatcher=dispatcher_cls(), batching=BATCHING
        )
        report = cluster.serve(stream())
        assert report.completed_requests == 400


class TestDeterminism:
    @pytest.mark.parametrize("dispatcher_cls", ALL_DISPATCHERS)
    def test_same_stream_same_result(self, dispatcher_cls):
        """Repeated serves through one cluster object must be identical —
        dispatcher state (round-robin cursor, power-of-two RNG) resets."""
        cluster = ClusterSimulator(
            CentaurRunner(HARPV2_SYSTEM),
            DLRM2,
            num_replicas=3,
            batching=BATCHING,
            dispatcher=dispatcher_cls(),
        )
        requests = stream(seed=6)
        first = cluster.serve(requests)
        second = cluster.serve(requests)
        assert (first.latency.samples_s == second.latency.samples_s).all()
        assert first.latency.p99_s == second.latency.p99_s

    def test_power_of_two_seed_controls_choices(self):
        requests = stream(seed=4)

        def serve(seed):
            return HeterogeneousCluster(
                [
                    ReplicaSpec(CPUOnlyRunner(HARPV2_SYSTEM)),
                    ReplicaSpec(CentaurRunner(HARPV2_SYSTEM)),
                ],
                DLRM2,
                dispatcher=PowerOfTwoChoicesDispatcher(seed=seed),
                batching=BATCHING,
            ).serve(requests)

        assert (
            serve(0).latency.samples_s == serve(0).latency.samples_s
        ).all()
        with pytest.raises(SimulationError):
            PowerOfTwoChoicesDispatcher(seed=-1)


class TestRouting:
    def test_round_robin_cycles_indices(self):
        # Widely spaced arrivals: each replica gets every third request.
        requests = stream(rate_qps=50.0, n=6, seed=0)
        cluster = ClusterSimulator(
            CentaurRunner(HARPV2_SYSTEM),
            DLRM2,
            num_replicas=3,
            batching=BATCHING,
            dispatcher=RoundRobinDispatcher(),
        )
        report = cluster.serve(requests)
        assert [r.completed_requests for r in report.per_replica] == [2, 2, 2]

    def test_jsq_prefers_idle_replicas(self):
        # Under load, JSQ must never leave one replica idle while another
        # holds more than a full batch backlog.
        cluster = ClusterSimulator(
            CPUOnlyRunner(HARPV2_SYSTEM),
            DLRM2,
            num_replicas=4,
            batching=BATCHING,
            dispatcher=JoinShortestQueueDispatcher(),
        )
        report = cluster.serve(stream(rate_qps=60_000, n=600, seed=8))
        counts = [r.completed_requests for r in report.per_replica]
        assert max(counts) - min(counts) < 150  # roughly balanced

    def test_least_loaded_sends_more_work_to_faster_device(self):
        specs = [
            ReplicaSpec(CPUOnlyRunner(HARPV2_SYSTEM)),
            ReplicaSpec(CentaurRunner(HARPV2_SYSTEM)),
        ]
        cluster = HeterogeneousCluster(
            specs, DLRM2, dispatcher=LeastLoadedDispatcher(), batching=BATCHING
        )
        report = cluster.serve(stream(rate_qps=60_000, n=800, seed=3))
        cpu_report = next(r for r in report.per_replica if r.design_point == "CPU-only")
        centaur_report = next(r for r in report.per_replica if r.design_point == "Centaur")
        assert centaur_report.completed_requests > cpu_report.completed_requests

    def test_jsq_beats_round_robin_under_skewed_service_times(self):
        """The refactor's payoff: with a slow and a fast replica, blind
        round-robin overloads the slow device while JSQ routes around it."""
        specs = [
            ReplicaSpec(CPUOnlyRunner(HARPV2_SYSTEM)),
            ReplicaSpec(CentaurRunner(HARPV2_SYSTEM)),
        ]
        requests = stream(rate_qps=60_000, n=2000, seed=3)
        round_robin = HeterogeneousCluster(
            specs, DLRM2, dispatcher=RoundRobinDispatcher(), batching=BATCHING
        ).serve(requests)
        shortest_queue = HeterogeneousCluster(
            specs, DLRM2, dispatcher=JoinShortestQueueDispatcher(), batching=BATCHING
        ).serve(requests)
        assert shortest_queue.latency.p99_s < round_robin.latency.p99_s
        assert shortest_queue.latency.mean_s < round_robin.latency.mean_s

    def test_invalid_dispatcher_index_rejected(self):
        class BrokenDispatcher(Dispatcher):
            name = "broken"

            def select(self, replicas, request, now):
                return len(replicas)  # out of range

        cluster = ClusterSimulator(
            CentaurRunner(HARPV2_SYSTEM),
            DLRM2,
            num_replicas=2,
            batching=BATCHING,
            dispatcher=BrokenDispatcher(),
        )
        with pytest.raises(SimulationError):
            cluster.serve(stream(n=10))

    def test_dispatcher_name_lands_in_report(self):
        cluster = ClusterSimulator(
            CentaurRunner(HARPV2_SYSTEM),
            DLRM2,
            num_replicas=2,
            batching=BATCHING,
            dispatcher=JoinShortestQueueDispatcher(),
        )
        report = cluster.serve(stream(n=50))
        assert report.dispatcher == "join-shortest-queue"
