"""Tests for the capacity planner's minimal-fleet search."""

import pytest

from repro.backends import get_backend
from repro.config import DLRM2, HARPV2_SYSTEM
from repro.errors import SimulationError
from repro.serving import (
    CapacityPlanner,
    ClusterSimulator,
    TimeoutBatching,
)
from repro.workloads import PoissonArrivals, Workload

BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=64)
WORKLOAD = Workload(arrivals=PoissonArrivals(rate_qps=60_000.0), name="steady")


def planner(**overrides) -> CapacityPlanner:
    defaults = dict(
        system=HARPV2_SYSTEM,
        sla_s=5e-3,
        target_attainment=0.99,
        max_replicas=16,
        batching=BATCHING,
        seed=0,
    )
    defaults.update(overrides)
    return CapacityPlanner(**defaults)


class TestValidation:
    def test_constructor_bounds(self):
        with pytest.raises(SimulationError):
            planner(sla_s=0.0)
        with pytest.raises(SimulationError):
            planner(target_attainment=0.0)
        with pytest.raises(SimulationError):
            planner(target_attainment=1.5)
        with pytest.raises(SimulationError):
            planner(max_replicas=0)

    def test_plan_needs_exactly_one_bound(self):
        with pytest.raises(SimulationError):
            planner().plan(WORKLOAD, DLRM2, backends=("cpu",))
        with pytest.raises(SimulationError):
            planner().plan(
                WORKLOAD, DLRM2, backends=("cpu",), duration_s=0.1, num_requests=100
            )


class TestMinimalSearch:
    def test_found_fleet_is_minimal(self):
        point = planner().plan_backend("cpu", DLRM2, WORKLOAD, num_requests=5_000)
        assert point.feasible
        assert point.replicas >= 1
        assert point.attainment >= 0.99

        def attainment(count):
            report = ClusterSimulator(
                get_backend("cpu", HARPV2_SYSTEM),
                DLRM2,
                num_replicas=count,
                batching=BATCHING,
            ).serve_workload(WORKLOAD, num_requests=5_000, seed=0)
            return report.latency.sla_attainment(5e-3)

        # The chosen fleet meets the target and the next-smaller one fails.
        assert attainment(point.replicas) >= 0.99
        if point.replicas > 1:
            assert attainment(point.replicas - 1) < 0.99

    def test_search_is_logarithmic_not_linear(self):
        point = planner().plan_backend("cpu", DLRM2, WORKLOAD, num_requests=5_000)
        # Exponential probe + binary search: far fewer evaluations than
        # fleets in range, and no fleet evaluated twice.
        assert len(point.evaluated) == len(set(point.evaluated))
        assert len(point.evaluated) <= 2 * point.replicas.bit_length() + 2

    def test_infeasible_when_ceiling_too_low(self):
        heavy = Workload(arrivals=PoissonArrivals(rate_qps=500_000.0), name="heavy")
        point = planner(max_replicas=2, sla_s=1e-4).plan_backend(
            "cpu", DLRM2, heavy, num_requests=2_000
        )
        assert not point.feasible
        assert point.replicas is None
        assert point.attainment < 0.99

    def test_deterministic_across_runs(self):
        first = planner().plan_backend("cpu", DLRM2, WORKLOAD, num_requests=4_000)
        second = planner().plan_backend("cpu", DLRM2, WORKLOAD, num_requests=4_000)
        assert first == second


class TestPlan:
    def test_plans_every_backend_and_recommends(self):
        plan = planner().plan(
            WORKLOAD, DLRM2, backends=("cpu", "centaur"), num_requests=4_000
        )
        assert {point.backend for point in plan.points} == {"cpu", "centaur"}
        best = plan.best()
        assert best is not None
        # The paper's story: the FPGA meets the SLA with no more sockets
        # than the CPU baseline.
        assert plan.get("centaur").replicas <= plan.get("cpu").replicas
        assert best.replicas == min(point.replicas for point in plan.points)

    def test_best_none_when_nothing_feasible(self):
        plan = planner(max_replicas=1, sla_s=1e-4).plan(
            Workload(arrivals=PoissonArrivals(rate_qps=500_000.0), name="heavy"),
            DLRM2,
            backends=("cpu",),
            num_requests=2_000,
        )
        assert plan.best() is None
        with pytest.raises(KeyError):
            plan.get("centaur")
