"""Event-driven simulator vs. legacy open-loop replay: exact equivalence.

The serving stack was rebuilt on the discrete-event engine; for open-loop
batching policies the two implementations must agree *bit for bit* — same
batch boundaries, same per-request latencies, same energy — on any seeded
arrival stream.  The legacy replay is kept (repro.serving.legacy) purely as
this oracle.
"""

import pytest

from repro.config import DLRM1, DLRM2, HARPV2_SYSTEM
from repro.core import CentaurRunner
from repro.cpu import CPUOnlyRunner
from repro.serving import (
    ClusterSimulator,
    FixedSizeBatching,
    LegacyServingSimulator,
    PoissonRequestGenerator,
    ServingSimulator,
    TimeoutBatching,
)


def poisson_stream(rate_qps, n, seed):
    return PoissonRequestGenerator(rate_qps=rate_qps, seed=seed).generate(num_requests=n)


def assert_reports_identical(event_report, legacy_report, compare_ready=True):
    """Batch boundaries, latencies and energy must match exactly (not approx)."""
    assert len(event_report.executed_batches) == len(legacy_report.executed_batches)
    for event_batch, legacy_batch in zip(
        event_report.executed_batches, legacy_report.executed_batches
    ):
        assert event_batch.batch_size == legacy_batch.batch_size
        assert event_batch.start_time_s == legacy_batch.start_time_s
        assert event_batch.finish_time_s == legacy_batch.finish_time_s
        if compare_ready:
            assert event_batch.ready_time_s == legacy_batch.ready_time_s
    assert (event_report.latency.samples_s == legacy_report.latency.samples_s).all()
    assert (event_report.queueing.samples_s == legacy_report.queueing.samples_s).all()
    assert event_report.energy_joules == legacy_report.energy_joules
    assert event_report.makespan_s == legacy_report.makespan_s
    assert event_report.device_busy_s == legacy_report.device_busy_s
    assert event_report.average_batch_size == legacy_report.average_batch_size
    assert event_report.completed_requests == legacy_report.completed_requests


class TestTimeoutBatchingEquivalence:
    """The acceptance criterion: TimeoutBatching on a seeded Poisson stream."""

    @pytest.mark.parametrize("seed", [0, 7, 42])
    @pytest.mark.parametrize("rate_qps", [8_000, 30_000, 60_000])
    def test_batch_boundaries_and_latencies_match(self, seed, rate_qps):
        policy = TimeoutBatching(window_s=1e-3, max_batch_size=32)
        stream = poisson_stream(rate_qps, 300, seed)
        runner = CentaurRunner(HARPV2_SYSTEM)
        event = ServingSimulator(runner, DLRM2, batching=policy).serve(stream)
        legacy = LegacyServingSimulator(runner, DLRM2, batching=policy).serve(stream)
        assert_reports_identical(event, legacy)

    def test_overloaded_device_still_matches(self):
        """Saturation: batches queue behind the device, start > ready."""
        policy = TimeoutBatching(window_s=5e-4, max_batch_size=16)
        stream = poisson_stream(80_000, 400, seed=3)
        runner = CPUOnlyRunner(HARPV2_SYSTEM)
        event = ServingSimulator(runner, DLRM1, batching=policy).serve(stream)
        legacy = LegacyServingSimulator(runner, DLRM1, batching=policy).serve(stream)
        assert_reports_identical(event, legacy)
        assert any(
            batch.start_time_s > batch.ready_time_s
            for batch in event.executed_batches
        )

    def test_default_policy_poisson_entrypoint_matches(self):
        runner = CentaurRunner(HARPV2_SYSTEM)
        event = ServingSimulator(runner, DLRM2).serve_poisson(
            rate_qps=20_000, duration_s=0.05, seed=9
        )
        legacy = LegacyServingSimulator(runner, DLRM2).serve_poisson(
            rate_qps=20_000, duration_s=0.05, seed=9
        )
        assert_reports_identical(event, legacy)


class TestFixedSizeBatchingEquivalence:
    @pytest.mark.parametrize("seed", [1, 11])
    def test_wait_capped_policy_matches(self, seed):
        policy = FixedSizeBatching(batch_size=8, max_wait_s=2e-3)
        stream = poisson_stream(25_000, 250, seed)
        runner = CentaurRunner(HARPV2_SYSTEM)
        event = ServingSimulator(runner, DLRM2, batching=policy).serve(stream)
        legacy = LegacyServingSimulator(runner, DLRM2, batching=policy).serve(stream)
        assert_reports_identical(event, legacy)

    def test_uncapped_policy_matches_except_trailing_ready_time(self):
        """With no wait cap the trailing partial batch closes at stream
        drain in the event world but is backdated by the legacy replay;
        execution and latencies still match exactly."""
        policy = FixedSizeBatching(batch_size=8)
        stream = poisson_stream(25_000, 251, seed=5)
        runner = CentaurRunner(HARPV2_SYSTEM)
        event = ServingSimulator(runner, DLRM2, batching=policy).serve(stream)
        legacy = LegacyServingSimulator(runner, DLRM2, batching=policy).serve(stream)
        assert_reports_identical(event, legacy, compare_ready=False)


class TestClusterEquivalence:
    def test_round_robin_cluster_matches_legacy_modulo_split(self):
        """The legacy cluster split arrivals round-robin over sorted order
        and replayed each replica independently; the event-driven cluster
        with a RoundRobinDispatcher must reproduce it replica for replica."""
        policy = TimeoutBatching(window_s=1e-3, max_batch_size=32)
        runner = CentaurRunner(HARPV2_SYSTEM)
        stream = poisson_stream(45_000, 330, seed=13)
        num_replicas = 3

        cluster = ClusterSimulator(
            runner, DLRM2, num_replicas=num_replicas, batching=policy
        ).serve(stream)

        ordered = sorted(stream, key=lambda request: request.arrival_time_s)
        legacy_reports = []
        for index in range(num_replicas):
            sub_stream = ordered[index::num_replicas]
            legacy_reports.append(
                LegacyServingSimulator(runner, DLRM2, batching=policy).serve(sub_stream)
            )

        assert len(cluster.per_replica) == num_replicas
        for event_report, legacy_report in zip(cluster.per_replica, legacy_reports):
            assert_reports_identical(event_report, legacy_report)
