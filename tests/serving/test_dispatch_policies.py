"""Dispatcher-policy behaviour on HeterogeneousCluster fleets.

Covers the policy-level contracts the per-dispatcher unit tests do not:
seeded power-of-two-choices determinism across repeated streams on one
cluster object, the divergence between queue-depth (JSQ) and
drain-time (least-loaded) routing on a mixed fleet, and backend-name
replica construction.
"""

import pytest

from repro.config import DLRM2, HARPV2_SYSTEM
from repro.core.centaur import CentaurRunner
from repro.cpu.cpu_runner import CPUOnlyRunner
from repro.errors import SimulationError
from repro.serving import (
    HeterogeneousCluster,
    JoinShortestQueueDispatcher,
    LeastLoadedDispatcher,
    PowerOfTwoChoicesDispatcher,
    ReplicaSpec,
    TimeoutBatching,
)

BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=32)


def mixed_fleet(dispatcher, num_cpu=3, num_centaur=1):
    """A deliberately lopsided fleet: several slow CPUs, one fast Centaur."""
    specs = [ReplicaSpec(CPUOnlyRunner(HARPV2_SYSTEM)) for _ in range(num_cpu)]
    specs += [ReplicaSpec(CentaurRunner(HARPV2_SYSTEM)) for _ in range(num_centaur)]
    return HeterogeneousCluster(
        specs, DLRM2, dispatcher=dispatcher, batching=BATCHING
    )


def per_replica_counts(report):
    return tuple(
        (r.design_point, r.completed_requests) for r in report.per_replica
    )


class TestPowerOfTwoDeterminism:
    def test_same_seed_reproduces_the_exact_stream_outcome(self):
        report_a = mixed_fleet(PowerOfTwoChoicesDispatcher(seed=7)).serve_poisson(
            rate_qps=60_000, duration_s=0.05, seed=3
        )
        report_b = mixed_fleet(PowerOfTwoChoicesDispatcher(seed=7)).serve_poisson(
            rate_qps=60_000, duration_s=0.05, seed=3
        )
        assert per_replica_counts(report_a) == per_replica_counts(report_b)
        assert report_a.latency.samples_s.tolist() == report_b.latency.samples_s.tolist()

    def test_reset_restores_determinism_across_streams(self):
        cluster = mixed_fleet(PowerOfTwoChoicesDispatcher(seed=11))
        first = cluster.serve_poisson(rate_qps=60_000, duration_s=0.05, seed=3)
        second = cluster.serve_poisson(rate_qps=60_000, duration_s=0.05, seed=3)
        assert per_replica_counts(first) == per_replica_counts(second)

    def test_different_seeds_route_differently(self):
        outcomes = {
            per_replica_counts(
                mixed_fleet(PowerOfTwoChoicesDispatcher(seed=seed)).serve_poisson(
                    rate_qps=60_000, duration_s=0.05, seed=3
                )
            )
            for seed in range(4)
        }
        assert len(outcomes) > 1, "four seeds should not all route identically"

    def test_negative_seed_rejected(self):
        with pytest.raises(SimulationError):
            PowerOfTwoChoicesDispatcher(seed=-1)


class TestJSQvsLeastLoadedDivergence:
    def test_policies_split_a_lopsided_fleet_differently(self):
        """JSQ counts requests; least-loaded weights them by device speed.

        On a fleet of slow CPUs plus one fast Centaur the two disagree:
        least-loaded keeps feeding the Centaur (its backlog drains faster),
        while JSQ evens out raw queue depths across all replicas.
        """
        jsq = mixed_fleet(JoinShortestQueueDispatcher()).serve_poisson(
            rate_qps=80_000, duration_s=0.05, seed=5
        )
        least = mixed_fleet(LeastLoadedDispatcher()).serve_poisson(
            rate_qps=80_000, duration_s=0.05, seed=5
        )

        def centaur_share(report):
            total = report.completed_requests
            centaur = sum(
                r.completed_requests
                for r in report.per_replica
                if r.design_point == "Centaur"
            )
            return centaur / total

        assert centaur_share(least) > centaur_share(jsq), (
            "least-loaded must route a larger share to the fast replica"
        )
        assert per_replica_counts(jsq) != per_replica_counts(least)

    def test_least_loaded_cuts_the_tail_on_the_lopsided_fleet(self):
        jsq = mixed_fleet(JoinShortestQueueDispatcher()).serve_poisson(
            rate_qps=80_000, duration_s=0.05, seed=5
        )
        least = mixed_fleet(LeastLoadedDispatcher()).serve_poisson(
            rate_qps=80_000, duration_s=0.05, seed=5
        )
        assert least.latency.p99_s <= jsq.latency.p99_s


class TestBackendNameConstruction:
    def test_from_backends_builds_a_mixed_fleet(self):
        fleet = HeterogeneousCluster.from_backends(
            ["cpu", "cpu", "centaur"],
            DLRM2,
            HARPV2_SYSTEM,
            dispatcher=LeastLoadedDispatcher(),
            batching=BATCHING,
        )
        assert fleet.num_replicas == 3
        assert fleet.design_point == "CPU-only+Centaur"
        report = fleet.serve_poisson(rate_qps=40_000, duration_s=0.02, seed=1)
        assert report.completed_requests > 0

    def test_specs_accept_backend_names_with_system(self):
        fleet = HeterogeneousCluster(
            [ReplicaSpec("cpu"), ReplicaSpec("centaur")],
            DLRM2,
            batching=BATCHING,
            system=HARPV2_SYSTEM,
        )
        assert fleet.design_point == "CPU-only+Centaur"
        # Same-name replicas share one resolved runner instance (and thus
        # one prediction cache), mirroring shared-runner clusters.
        shared = HeterogeneousCluster(
            ["cpu", "cpu"], DLRM2, batching=BATCHING, system=HARPV2_SYSTEM
        )
        assert shared.specs[0].runner is shared.specs[1].runner

    def test_backend_name_without_system_raises(self):
        with pytest.raises(SimulationError, match="system"):
            HeterogeneousCluster([ReplicaSpec("cpu")], DLRM2, batching=BATCHING)

    def test_unknown_backend_name_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown backend"):
            HeterogeneousCluster(
                ["tpu"], DLRM2, batching=BATCHING, system=HARPV2_SYSTEM
            )
