"""Tests for the batching policies."""

import pytest

from repro.config import DLRM1
from repro.errors import SimulationError
from repro.results import InferenceResult, LatencyBreakdown
from repro.serving import ServingSimulator
from repro.serving.batching import (
    AdaptiveWindowBatching,
    CloseOnFullBatching,
    FixedSizeBatching,
    SizeBucketedBatching,
    TimeoutBatching,
)
from repro.serving.requests import InferenceRequest


def arrivals(times):
    return [InferenceRequest(request_id=i, arrival_time_s=t) for i, t in enumerate(times)]


class StubRunner:
    """Deterministic device: latency = base + per_sample * batch_size."""

    design_point = "Stub"

    def __init__(self, base_s=1e-3, per_sample_s=0.0, power_watts=10.0):
        self.base_s = base_s
        self.per_sample_s = per_sample_s
        self.power_watts = power_watts

    def run(self, model, batch_size):
        return InferenceResult(
            design_point=self.design_point,
            model_name=model.name,
            batch_size=batch_size,
            breakdown=LatencyBreakdown(
                {"EMB": self.base_s + self.per_sample_s * batch_size}
            ),
            power_watts=self.power_watts,
        )


def serve(policy, times, runner=None):
    runner = runner if runner is not None else StubRunner()
    simulator = ServingSimulator(runner, DLRM1, batching=policy)
    return simulator.serve(arrivals(times))


class TestFixedSizeBatching:
    def test_full_batches_dispatch_on_last_arrival(self):
        policy = FixedSizeBatching(batch_size=2)
        batches = policy.form_batches(arrivals([1.0, 2.0, 3.0, 4.0]))
        assert len(batches) == 2
        assert batches[0][0] == 2.0 and len(batches[0][1]) == 2
        assert batches[1][0] == 4.0 and len(batches[1][1]) == 2

    def test_trailing_partial_batch_dispatches(self):
        policy = FixedSizeBatching(batch_size=4)
        batches = policy.form_batches(arrivals([1.0, 2.0, 3.0]))
        assert len(batches) == 1
        assert len(batches[0][1]) == 3

    def test_max_wait_flushes_partial_batches(self):
        policy = FixedSizeBatching(batch_size=10, max_wait_s=0.5)
        batches = policy.form_batches(arrivals([0.0, 0.1, 5.0]))
        # The first two requests flush at 0.5s; the third forms its own batch.
        assert len(batches) == 2
        assert batches[0][0] == pytest.approx(0.5)
        assert len(batches[0][1]) == 2
        assert len(batches[1][1]) == 1

    def test_every_request_appears_exactly_once(self):
        policy = FixedSizeBatching(batch_size=3, max_wait_s=1.0)
        stream = arrivals([0.0, 0.2, 0.4, 3.0, 3.1, 9.0])
        batches = policy.form_batches(stream)
        ids = [r.request_id for _, batch in batches for r in batch]
        assert sorted(ids) == list(range(len(stream)))

    def test_validation(self):
        with pytest.raises(SimulationError):
            FixedSizeBatching(batch_size=0)
        with pytest.raises(SimulationError):
            FixedSizeBatching(batch_size=2, max_wait_s=0.0)


class TestTimeoutBatching:
    def test_window_groups_burst(self):
        policy = TimeoutBatching(window_s=1.0, max_batch_size=8)
        batches = policy.form_batches(arrivals([0.0, 0.2, 0.4, 5.0]))
        assert len(batches) == 2
        ready, first = batches[0]
        assert ready == pytest.approx(1.0)
        assert len(first) == 3
        assert len(batches[1][1]) == 1

    def test_max_batch_size_caps_bursts(self):
        policy = TimeoutBatching(window_s=10.0, max_batch_size=2)
        batches = policy.form_batches(arrivals([0.0, 0.1, 0.2, 0.3]))
        assert [len(batch) for _, batch in batches] == [2, 2]
        # A full batch dispatches as soon as it fills, not at the window end.
        assert batches[0][0] == pytest.approx(0.1)

    def test_every_request_appears_exactly_once(self):
        policy = TimeoutBatching(window_s=0.3, max_batch_size=3)
        stream = arrivals([0.0, 0.1, 0.25, 0.26, 1.0, 1.05, 2.0])
        batches = policy.form_batches(stream)
        ids = [r.request_id for _, batch in batches for r in batch]
        assert sorted(ids) == list(range(len(stream)))

    def test_ready_time_never_before_last_member_arrival(self):
        policy = TimeoutBatching(window_s=0.5, max_batch_size=16)
        stream = arrivals([0.0, 0.1, 0.45, 2.0, 2.2])
        for ready, batch in policy.form_batches(stream):
            assert ready >= max(r.arrival_time_s for r in batch) - 1e-12

    def test_validation(self):
        with pytest.raises(SimulationError):
            TimeoutBatching(window_s=0.0)
        with pytest.raises(SimulationError):
            TimeoutBatching(window_s=1.0, max_batch_size=0)


class TestCloseOnFullBatching:
    def test_idle_device_dispatches_immediately(self):
        # Lone request with the device idle: no batching delay at all.
        report = serve(CloseOnFullBatching(batch_size=8), [0.0])
        assert report.executed_batches[0].ready_time_s == 0.0
        assert report.latency.mean_s == pytest.approx(1e-3)

    def test_busy_device_accumulates_then_dispatches_on_idle(self):
        # First request ties up the device for 1 ms; the next three arrive
        # while it is busy and dispatch as one batch the moment it frees.
        report = serve(
            CloseOnFullBatching(batch_size=8), [0.0, 2e-4, 4e-4, 6e-4]
        )
        sizes = [batch.batch_size for batch in report.executed_batches]
        assert sizes == [1, 3]
        assert report.executed_batches[1].start_time_s == pytest.approx(1e-3)

    def test_queued_work_keeps_pending_accumulating(self):
        # While a closed batch is still waiting for the device, the device is
        # not idle: completions must not prematurely flush the pending batch.
        # r0 runs alone; r1+r2 close as a full batch and queue; r3 arrives
        # pending.  When r0 completes the queued batch starts (device busy
        # again), so r3 keeps accumulating and batches with r4.
        report = serve(
            CloseOnFullBatching(batch_size=2), [0.0, 2e-4, 3e-4, 4e-4, 1.5e-3]
        )
        sizes = [batch.batch_size for batch in report.executed_batches]
        assert sizes == [1, 2, 2]

    def test_full_batch_dispatches_even_while_busy(self):
        policy = CloseOnFullBatching(batch_size=2)
        report = serve(policy, [0.0, 1e-4, 2e-4, 3e-4, 4e-4])
        assert all(batch.batch_size <= 2 for batch in report.executed_batches)
        assert report.completed_requests == 5

    def test_cannot_form_batches_open_loop(self):
        with pytest.raises(SimulationError):
            CloseOnFullBatching(batch_size=4).form_batches(arrivals([0.0]))

    def test_validation(self):
        with pytest.raises(SimulationError):
            CloseOnFullBatching(batch_size=0)
        with pytest.raises(SimulationError):
            CloseOnFullBatching(batch_size=4, max_wait_s=0.0)


class TestAdaptiveWindowBatching:
    def test_lone_request_waits_the_full_window(self):
        report = serve(AdaptiveWindowBatching(base_window_s=2e-3), [0.0])
        assert report.executed_batches[0].ready_time_s == pytest.approx(2e-3)

    def test_window_shrinks_as_queue_deepens(self):
        # Two pending requests halve the window (sensitivity 1): the batch
        # closes at 1 ms, not 2 ms.
        report = serve(
            AdaptiveWindowBatching(base_window_s=2e-3, depth_sensitivity=1.0),
            [0.0, 1e-4],
        )
        assert report.executed_batches[0].ready_time_s == pytest.approx(1e-3)
        assert report.executed_batches[0].batch_size == 2

    def test_full_batch_closes_immediately(self):
        report = serve(
            AdaptiveWindowBatching(base_window_s=5e-3, max_batch_size=3),
            [0.0, 1e-4, 2e-4],
        )
        assert report.executed_batches[0].ready_time_s == pytest.approx(2e-4)

    def test_min_window_floors_the_shrinkage(self):
        report = serve(
            AdaptiveWindowBatching(
                base_window_s=2e-3, depth_sensitivity=100.0, min_window_s=1e-3
            ),
            [0.0, 1e-5, 2e-5],
        )
        assert report.executed_batches[0].ready_time_s == pytest.approx(1e-3)

    def test_validation(self):
        with pytest.raises(SimulationError):
            AdaptiveWindowBatching(base_window_s=0.0)
        with pytest.raises(SimulationError):
            AdaptiveWindowBatching(base_window_s=1e-3, max_batch_size=0)
        with pytest.raises(SimulationError):
            AdaptiveWindowBatching(base_window_s=1e-3, depth_sensitivity=-1.0)
        with pytest.raises(SimulationError):
            AdaptiveWindowBatching(base_window_s=1e-3, min_window_s=-1.0)


class TestSizeBucketedBatching:
    def test_batches_execute_padded_to_the_next_bucket(self):
        # Three requests in one window, buckets (1, 2, 4): the device runs a
        # size-4 execution, so busy time reflects 4 samples, not 3.
        runner = StubRunner(base_s=1e-3, per_sample_s=1e-4)
        report = serve(
            SizeBucketedBatching(window_s=1e-3, buckets=(1, 2, 4)),
            [0.0, 1e-4, 2e-4],
            runner=runner,
        )
        assert report.executed_batches[0].batch_size == 3  # as formed
        assert report.device_busy_s == pytest.approx(1e-3 + 4 * 1e-4)

    def test_exact_bucket_sizes_execute_unpadded(self):
        runner = StubRunner(base_s=1e-3, per_sample_s=1e-4)
        report = serve(
            SizeBucketedBatching(window_s=1e-3, buckets=(1, 2, 4)),
            [0.0, 1e-4],
            runner=runner,
        )
        assert report.device_busy_s == pytest.approx(1e-3 + 2 * 1e-4)

    def test_largest_bucket_closes_immediately(self):
        report = serve(
            SizeBucketedBatching(window_s=10.0, buckets=(1, 2)),
            [0.0, 1e-4, 2e-4, 3e-4],
        )
        assert [batch.batch_size for batch in report.executed_batches] == [2, 2]

    def test_execution_batch_size_rounding(self):
        policy = SizeBucketedBatching(window_s=1e-3, buckets=(1, 2, 4, 8))
        assert policy.execution_batch_size(1) == 1
        assert policy.execution_batch_size(3) == 4
        assert policy.execution_batch_size(8) == 8

    def test_validation(self):
        with pytest.raises(SimulationError):
            SizeBucketedBatching(window_s=0.0)
        with pytest.raises(SimulationError):
            SizeBucketedBatching(window_s=1e-3, buckets=())
        with pytest.raises(SimulationError):
            SizeBucketedBatching(window_s=1e-3, buckets=(4, 2))
        with pytest.raises(SimulationError):
            SizeBucketedBatching(window_s=1e-3, buckets=(0, 2))
