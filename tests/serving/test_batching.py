"""Tests for the batching policies."""

import pytest

from repro.errors import SimulationError
from repro.serving.batching import FixedSizeBatching, TimeoutBatching
from repro.serving.requests import InferenceRequest


def arrivals(times):
    return [InferenceRequest(request_id=i, arrival_time_s=t) for i, t in enumerate(times)]


class TestFixedSizeBatching:
    def test_full_batches_dispatch_on_last_arrival(self):
        policy = FixedSizeBatching(batch_size=2)
        batches = policy.form_batches(arrivals([1.0, 2.0, 3.0, 4.0]))
        assert len(batches) == 2
        assert batches[0][0] == 2.0 and len(batches[0][1]) == 2
        assert batches[1][0] == 4.0 and len(batches[1][1]) == 2

    def test_trailing_partial_batch_dispatches(self):
        policy = FixedSizeBatching(batch_size=4)
        batches = policy.form_batches(arrivals([1.0, 2.0, 3.0]))
        assert len(batches) == 1
        assert len(batches[0][1]) == 3

    def test_max_wait_flushes_partial_batches(self):
        policy = FixedSizeBatching(batch_size=10, max_wait_s=0.5)
        batches = policy.form_batches(arrivals([0.0, 0.1, 5.0]))
        # The first two requests flush at 0.5s; the third forms its own batch.
        assert len(batches) == 2
        assert batches[0][0] == pytest.approx(0.5)
        assert len(batches[0][1]) == 2
        assert len(batches[1][1]) == 1

    def test_every_request_appears_exactly_once(self):
        policy = FixedSizeBatching(batch_size=3, max_wait_s=1.0)
        stream = arrivals([0.0, 0.2, 0.4, 3.0, 3.1, 9.0])
        batches = policy.form_batches(stream)
        ids = [r.request_id for _, batch in batches for r in batch]
        assert sorted(ids) == list(range(len(stream)))

    def test_validation(self):
        with pytest.raises(SimulationError):
            FixedSizeBatching(batch_size=0)
        with pytest.raises(SimulationError):
            FixedSizeBatching(batch_size=2, max_wait_s=0.0)


class TestTimeoutBatching:
    def test_window_groups_burst(self):
        policy = TimeoutBatching(window_s=1.0, max_batch_size=8)
        batches = policy.form_batches(arrivals([0.0, 0.2, 0.4, 5.0]))
        assert len(batches) == 2
        ready, first = batches[0]
        assert ready == pytest.approx(1.0)
        assert len(first) == 3
        assert len(batches[1][1]) == 1

    def test_max_batch_size_caps_bursts(self):
        policy = TimeoutBatching(window_s=10.0, max_batch_size=2)
        batches = policy.form_batches(arrivals([0.0, 0.1, 0.2, 0.3]))
        assert [len(batch) for _, batch in batches] == [2, 2]
        # A full batch dispatches as soon as it fills, not at the window end.
        assert batches[0][0] == pytest.approx(0.1)

    def test_every_request_appears_exactly_once(self):
        policy = TimeoutBatching(window_s=0.3, max_batch_size=3)
        stream = arrivals([0.0, 0.1, 0.25, 0.26, 1.0, 1.05, 2.0])
        batches = policy.form_batches(stream)
        ids = [r.request_id for _, batch in batches for r in batch]
        assert sorted(ids) == list(range(len(stream)))

    def test_ready_time_never_before_last_member_arrival(self):
        policy = TimeoutBatching(window_s=0.5, max_batch_size=16)
        stream = arrivals([0.0, 0.1, 0.45, 2.0, 2.2])
        for ready, batch in policy.form_batches(stream):
            assert ready >= max(r.arrival_time_s for r in batch) - 1e-12

    def test_validation(self):
        with pytest.raises(SimulationError):
            TimeoutBatching(window_s=0.0)
        with pytest.raises(SimulationError):
            TimeoutBatching(window_s=1.0, max_batch_size=0)
