"""Tests for the serving metrics."""

import pytest

from repro.errors import SimulationError
from repro.serving.metrics import LatencyDistribution, ServingReport


class TestLatencyDistribution:
    def test_basic_statistics(self):
        dist = LatencyDistribution([1e-3, 2e-3, 3e-3, 4e-3])
        assert len(dist) == 4
        assert dist.mean_s == pytest.approx(2.5e-3)
        assert dist.max_s == pytest.approx(4e-3)
        assert dist.p50_s == pytest.approx(2.5e-3)

    def test_percentiles_monotone(self):
        dist = LatencyDistribution([float(i) for i in range(1, 101)])
        assert dist.p50_s <= dist.p95_s <= dist.p99_s <= dist.max_s

    def test_sla_attainment(self):
        dist = LatencyDistribution([1.0, 2.0, 3.0, 4.0])
        assert dist.sla_attainment(2.5) == pytest.approx(0.5)
        assert dist.sla_attainment(10.0) == 1.0
        with pytest.raises(SimulationError):
            dist.sla_attainment(0.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            LatencyDistribution([])
        with pytest.raises(SimulationError):
            LatencyDistribution([1.0, -1.0])
        with pytest.raises(SimulationError):
            LatencyDistribution([1.0]).percentile(150.0)

    def test_empty_distribution_sla_attainment_is_vacuous(self):
        # Regression: this used to divide by zero. Empty windows (e.g. one
        # bucket of an autoscale timeline with no completions) attain any
        # SLA vacuously.
        empty = LatencyDistribution([], allow_empty=True)
        assert len(empty) == 0
        assert empty.sla_attainment(1e-3) == 1.0
        with pytest.raises(SimulationError):
            empty.sla_attainment(0.0)  # the budget must still be positive

    def test_empty_distribution_statistics_raise_clearly(self):
        empty = LatencyDistribution([], allow_empty=True)
        for query in (
            lambda: empty.mean_s,
            lambda: empty.max_s,
            lambda: empty.p99_s,
            lambda: empty.percentile(50.0),
            lambda: empty.percentiles((50.0, 99.0)),
        ):
            with pytest.raises(SimulationError):
                query()


class TestServingReport:
    def _report(self):
        return ServingReport(
            design_point="Centaur",
            model_name="DLRM(1)",
            offered_load_qps=1000.0,
            completed_requests=100,
            makespan_s=0.2,
            latency=LatencyDistribution([1e-3] * 100),
            queueing=LatencyDistribution([5e-4] * 100),
            average_batch_size=10.0,
            device_busy_s=0.1,
            energy_joules=7.4,
        )

    def test_derived_metrics(self):
        report = self._report()
        assert report.achieved_qps == pytest.approx(500.0)
        assert report.device_utilization == pytest.approx(0.5)
        assert report.energy_per_request_joules == pytest.approx(0.074)

    def test_summary_row_keys(self):
        row = self._report().summary_row()
        for key in ("achieved_qps", "p99_ms", "utilization", "energy_per_request_mj"):
            assert key in row
