"""Serving-level tests for embedding-update streams and the shared tier."""

import pickle
from types import SimpleNamespace

import numpy as np
import pytest

from repro.config import HARPV2_SYSTEM
from repro.config.models import homogeneous_dlrm
from repro.core import CentaurRunner
from repro.errors import SimulationError
from repro.serving import ShardedReplicaGroup, TimeoutBatching
from repro.serving.sharded import ShardedReplicaServer
from repro.sharding import CacheConfig
from repro.workloads import PoissonArrivals, UpdateProcess, Workload
from repro.workloads.traces import ZipfianTrace

BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=32)
NUM_REQUESTS = 1_500
SEED = 3


@pytest.fixture(scope="module")
def model():
    return homogeneous_dlrm(
        name="freshness-test",
        num_tables=4,
        rows_per_table=5_000,
        gathers_per_table=8,
        embedding_dim=32,
    )


def zipf_workload():
    return Workload(
        arrivals=PoissonArrivals(rate_qps=30_000),
        trace=ZipfianTrace(alpha=1.05),
    )


def serve(model, updates=None, shared_cache=None, cache_rows=1_024, **kwargs):
    group = ShardedReplicaGroup(
        CentaurRunner(HARPV2_SYSTEM),
        model,
        num_shards=2,
        strategy="row",
        cache=CacheConfig(policy="lru", capacity_rows=cache_rows),
        batching=BATCHING,
        system=HARPV2_SYSTEM,
        updates=updates,
        shared_cache=shared_cache,
    )
    return group.serve_workload(
        zipf_workload(), num_requests=NUM_REQUESTS, seed=SEED, **kwargs
    )


def pushes(mode, rate=20_000, rows=8):
    return UpdateProcess(arrivals=rate, rows_per_update=rows, mode=mode)


class TestZeroUpdateIdentity:
    """The acceptance gate: updates=None must cost nothing, bit for bit."""

    def test_updates_none_is_bit_identical_to_read_only_path(self, model):
        baseline = serve(model)  # updates kwarg defaulted
        off = serve(model, updates=None)
        # Compare the fresh, untouched reports: latency accessors memoize
        # into instance state, so any property read before pickling would
        # fake a difference.
        assert pickle.dumps(baseline) == pickle.dumps(off)

    def test_read_only_runs_report_inert_freshness_fields(self, model):
        report = serve(model)
        stats = report.sharding
        assert stats.update_mode is None
        assert stats.update_events == 0
        assert stats.update_rows == 0
        assert stats.update_invalidations == 0
        assert stats.update_refreshes == 0
        assert stats.stale_hits == 0
        assert stats.update_apply_s_total == 0.0
        assert stats.shared_cache is None
        assert stats.stale_hit_rate == 0.0


class TestInvalidate:
    def test_invalidation_costs_hits_and_counts_per_cause(self, model):
        off = serve(model)
        inval = serve(model, updates=pushes("invalidate"))
        assert inval.sharding.update_mode == "invalidate"
        assert inval.sharding.update_events > 0
        assert inval.sharding.update_rows > 0
        assert inval.sharding.update_invalidations > 0
        assert inval.sharding.update_refreshes == 0
        # Update-evictions are counted apart from capacity evictions, and
        # the stripped rows cost real hits against the same seed.
        assert inval.sharding.evictions > 0
        assert inval.sharding.hit_rate < off.sharding.hit_rate
        assert inval.completed_requests == NUM_REQUESTS

    def test_update_pressure_scales_the_damage(self, model):
        gentle = serve(model, updates=pushes("invalidate", rate=2_000))
        storm = serve(model, updates=pushes("invalidate", rate=40_000))
        assert storm.sharding.update_invalidations > gentle.sharding.update_invalidations
        assert storm.sharding.hit_rate < gentle.sharding.hit_rate


class TestWriteThrough:
    def test_refreshes_preserve_the_hit_stream_and_cost_gather_time(self, model):
        off = serve(model)
        wt = serve(model, updates=pushes("write-through"))
        stats = wt.sharding
        assert stats.update_mode == "write-through"
        assert stats.update_refreshes > 0
        assert stats.update_invalidations == 0
        assert stats.update_apply_s_total > 0.0
        # A refresh is not a read: residency and recency are untouched, so
        # the hit stream is identical to the read-only run...
        assert stats.hit_rate == off.sharding.hit_rate
        # ...but the refresh traffic competes with reads in the gather
        # stage (priced into the straggler gate).
        assert stats.gather_s_total > off.sharding.gather_s_total


class TestIgnore:
    def test_ignored_pushes_count_stale_hits(self, model):
        off = serve(model)
        stale = serve(model, updates=pushes("ignore"))
        stats = stale.sharding
        assert stats.update_mode == "ignore"
        assert stats.stale_hits > 0
        assert stats.stale_hit_rate > 0.0
        assert stats.update_invalidations == 0
        assert stats.update_refreshes == 0
        # Nothing is applied, so serving is unchanged except accounting.
        assert stats.hit_rate == off.sharding.hit_rate


class TestSharedTier:
    def test_shared_cache_absorbs_local_misses_over_the_link(self, model):
        report = serve(
            model, shared_cache=CacheConfig(policy="lru", capacity_rows=8_192)
        )
        stats = report.sharding
        assert stats.shared_cache is not None
        assert stats.shared_cache.accesses > 0
        assert stats.shared_hits > 0
        assert stats.shared_transfer_s > 0.0

    def test_shared_tier_requires_a_system(self, model):
        # A runner without a .system attribute leaves the group systemless;
        # the shared tier must then be rejected (its fetches are priced
        # over the system link).
        with pytest.raises(SimulationError):
            ShardedReplicaGroup(
                SimpleNamespace(),
                model,
                num_shards=1,
                batching=BATCHING,
                shared_cache=CacheConfig(policy="lru", capacity_rows=1_024),
            )

    def test_shared_tier_sees_update_stream_too(self, model):
        report = serve(
            model,
            updates=pushes("invalidate"),
            shared_cache=CacheConfig(policy="lru", capacity_rows=8_192),
        )
        # Invalidations land on both tiers; the totals include the shared
        # tier's drops on top of the per-shard ones.
        solo = serve(model, updates=pushes("invalidate"))
        assert (
            report.sharding.update_invalidations > solo.sharding.update_invalidations
        )


class TestValidation:
    def test_updates_must_be_an_update_process(self, model):
        with pytest.raises(SimulationError):
            ShardedReplicaGroup(
                CentaurRunner(HARPV2_SYSTEM),
                model,
                num_shards=2,
                batching=BATCHING,
                system=HARPV2_SYSTEM,
                updates="invalidate:rate=100",
            )

    def test_shared_cache_must_be_a_cache_config(self, model):
        with pytest.raises(SimulationError):
            ShardedReplicaGroup(
                CentaurRunner(HARPV2_SYSTEM),
                model,
                num_shards=2,
                batching=BATCHING,
                system=HARPV2_SYSTEM,
                shared_cache="lru:rows=1024",
            )


class TestDriverTermination:
    """The infinite push stream must not keep the simulator alive."""

    @pytest.mark.parametrize("mode", ["invalidate", "write-through", "ignore"])
    def test_run_completes_exactly_the_requested_load(self, model, mode):
        report = serve(model, updates=pushes(mode))
        assert report.completed_requests == NUM_REQUESTS
        assert report.sharding.update_events > 0

    def test_deterministic_across_fresh_runs(self, model):
        first = serve(model, updates=pushes("invalidate"))
        second = serve(model, updates=pushes("invalidate"))
        assert pickle.dumps(first) == pickle.dumps(second)


class TestPriceRefillRegression:
    def test_dense_only_breakdown_prices_a_refill_at_zero(self):
        """Regression: a duck-typed runner handing back a plain-dict
        breakdown without an "EMB" stage made ``price_refill`` divide
        ``None`` — an opaque TypeError mid-chaos-run."""
        from repro.sharding.plan import make_plan
        from repro.sim.engine import Simulator

        dense_model = homogeneous_dlrm(
            name="dense-only",
            num_tables=2,
            rows_per_table=100,
            gathers_per_table=2,
        )
        service = SimpleNamespace(
            model_for=lambda name: dense_model,
            result=lambda batch_size, name: SimpleNamespace(
                breakdown={}, power_watts=10.0
            ),
        )
        server = ShardedReplicaServer(
            Simulator(),
            service,
            BATCHING,
            plan=make_plan(dense_model, 2, "table"),
            link=None,
            trace_model=None,
            trace_rng=np.random.default_rng(0),
        )
        assert server.price_refill(1_000) == (0.0, 0.0)
