"""Tests for heterogeneous replica fleets."""

import pytest

from repro.config import DLRM2, HARPV2_SYSTEM
from repro.core import CentaurRunner
from repro.cpu import CPUOnlyRunner
from repro.errors import SimulationError
from repro.gpu import CPUGPURunner
from repro.serving import (
    CloseOnFullBatching,
    HeterogeneousCluster,
    JoinShortestQueueDispatcher,
    PoissonRequestGenerator,
    ReplicaSpec,
    ServingSimulator,
    TimeoutBatching,
)

BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=32)


def stream(rate_qps=40_000, n=400, seed=2):
    return PoissonRequestGenerator(rate_qps=rate_qps, seed=seed).generate(num_requests=n)


def mixed_specs():
    return [
        ReplicaSpec(CPUOnlyRunner(HARPV2_SYSTEM)),
        ReplicaSpec(CPUGPURunner(HARPV2_SYSTEM)),
        ReplicaSpec(CentaurRunner(HARPV2_SYSTEM)),
    ]


class TestFleetComposition:
    def test_mixed_fleet_serves_and_labels_design_points(self):
        cluster = HeterogeneousCluster(mixed_specs(), DLRM2, batching=BATCHING)
        report = cluster.serve(stream())
        assert report.completed_requests == 400
        assert report.num_replicas == 3
        assert report.design_point == "CPU-only+CPU-GPU+Centaur"
        served_points = {r.design_point for r in report.per_replica}
        assert served_points == {"CPU-only", "CPU-GPU", "Centaur"}

    def test_bare_runners_accepted_as_specs(self):
        cluster = HeterogeneousCluster(
            [CPUOnlyRunner(HARPV2_SYSTEM), CentaurRunner(HARPV2_SYSTEM)],
            DLRM2,
            batching=BATCHING,
        )
        report = cluster.serve(stream(n=100))
        assert report.completed_requests == 100
        assert report.design_point == "CPU-only+Centaur"

    def test_per_replica_batching_override(self):
        """A replica can run its own policy while the rest use the default."""
        specs = [
            ReplicaSpec(
                CentaurRunner(HARPV2_SYSTEM),
                batching=CloseOnFullBatching(batch_size=16),
            ),
            ReplicaSpec(CPUOnlyRunner(HARPV2_SYSTEM)),
        ]
        cluster = HeterogeneousCluster(specs, DLRM2, batching=BATCHING)
        report = cluster.serve(stream(n=200))
        assert report.completed_requests == 200
        greedy = next(r for r in report.per_replica if r.design_point == "Centaur")
        windowed = next(r for r in report.per_replica if r.design_point == "CPU-only")
        # The greedy policy dispatches eagerly, so it forms smaller batches
        # than a 1 ms window at the same per-replica load.
        assert greedy.average_batch_size < windowed.average_batch_size

    def test_validation(self):
        with pytest.raises(SimulationError):
            HeterogeneousCluster([], DLRM2)
        cluster = HeterogeneousCluster(mixed_specs(), DLRM2, batching=BATCHING)
        with pytest.raises(SimulationError):
            cluster.serve([])


class TestAgainstSingleDevice:
    def test_single_replica_fleet_matches_serving_simulator(self):
        runner = CentaurRunner(HARPV2_SYSTEM)
        requests = stream(rate_qps=20_000, n=150, seed=9)
        single = ServingSimulator(runner, DLRM2, batching=BATCHING).serve(requests)
        fleet = HeterogeneousCluster(
            [ReplicaSpec(runner)], DLRM2, batching=BATCHING
        ).serve(requests)
        assert (fleet.latency.samples_s == single.latency.samples_s).all()
        assert fleet.total_energy_joules == pytest.approx(single.energy_joules, rel=1e-12)

    def test_adding_a_centaur_replica_to_a_cpu_fleet_cuts_the_tail(self):
        """The provisioning story: augmenting a CPU fleet with one Centaur
        socket under smart dispatch improves the tail at fixed load."""
        requests = stream(rate_qps=50_000, n=1500, seed=17)
        cpu_only = HeterogeneousCluster(
            [ReplicaSpec(CPUOnlyRunner(HARPV2_SYSTEM)) for _ in range(2)],
            DLRM2,
            dispatcher=JoinShortestQueueDispatcher(),
            batching=BATCHING,
        ).serve(requests)
        augmented = HeterogeneousCluster(
            [
                ReplicaSpec(CPUOnlyRunner(HARPV2_SYSTEM)),
                ReplicaSpec(CPUOnlyRunner(HARPV2_SYSTEM)),
                ReplicaSpec(CentaurRunner(HARPV2_SYSTEM)),
            ],
            DLRM2,
            dispatcher=JoinShortestQueueDispatcher(),
            batching=BATCHING,
        ).serve(requests)
        assert augmented.latency.p99_s < cpu_only.latency.p99_s

    def test_determinism_under_fixed_seed(self):
        cluster = HeterogeneousCluster(
            mixed_specs(), DLRM2, dispatcher=JoinShortestQueueDispatcher(), batching=BATCHING
        )
        first = cluster.serve_poisson(rate_qps=30_000, duration_s=0.05, seed=21)
        second = cluster.serve_poisson(rate_qps=30_000, duration_s=0.05, seed=21)
        assert (first.latency.samples_s == second.latency.samples_s).all()
        assert first.completed_requests == second.completed_requests
