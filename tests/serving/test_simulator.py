"""Tests for the single-device serving simulation."""

import pytest

from repro.config import DLRM1, DLRM2, HARPV2_SYSTEM
from repro.core import CentaurRunner
from repro.cpu import CPUOnlyRunner
from repro.errors import SimulationError
from repro.serving import (
    FixedSizeBatching,
    PoissonRequestGenerator,
    ServingSimulator,
    TimeoutBatching,
)
from repro.serving.requests import InferenceRequest


def arrivals(times):
    return [InferenceRequest(request_id=i, arrival_time_s=t) for i, t in enumerate(times)]


class TestServeExplicitStream:
    def test_single_request_latency_is_batch1_latency(self):
        runner = CPUOnlyRunner(HARPV2_SYSTEM)
        simulator = ServingSimulator(runner, DLRM1, batching=FixedSizeBatching(batch_size=1))
        report = simulator.serve(arrivals([0.0]))
        expected = runner.run(DLRM1, 1).latency_seconds
        assert report.latency.mean_s == pytest.approx(expected, rel=1e-9)
        assert report.completed_requests == 1
        assert report.average_batch_size == 1.0

    def test_queueing_delay_appears_under_contention(self):
        runner = CPUOnlyRunner(HARPV2_SYSTEM)
        simulator = ServingSimulator(runner, DLRM1, batching=FixedSizeBatching(batch_size=1))
        # Two simultaneous arrivals: the second one waits for the first batch.
        report = simulator.serve(arrivals([0.0, 0.0]))
        batch1_latency = runner.run(DLRM1, 1).latency_seconds
        assert report.latency.max_s == pytest.approx(2 * batch1_latency, rel=1e-6)
        assert report.queueing.max_s == pytest.approx(batch1_latency, rel=1e-6)

    def test_all_requests_accounted_for(self):
        runner = CentaurRunner(HARPV2_SYSTEM)
        simulator = ServingSimulator(
            runner, DLRM1, batching=TimeoutBatching(window_s=1e-3, max_batch_size=8)
        )
        stream = PoissonRequestGenerator(rate_qps=20_000, seed=1).generate(num_requests=200)
        report = simulator.serve(stream)
        assert report.completed_requests == 200
        assert len(report.latency) == 200
        assert report.makespan_s >= stream[-1].arrival_time_s

    def test_energy_accumulates_per_batch(self):
        runner = CentaurRunner(HARPV2_SYSTEM)
        simulator = ServingSimulator(runner, DLRM1, batching=FixedSizeBatching(batch_size=2))
        report = simulator.serve(arrivals([0.0, 0.0, 1.0, 1.0]))
        expected = 2 * runner.run(DLRM1, 2).energy_joules
        assert report.energy_joules == pytest.approx(expected, rel=1e-9)

    def test_empty_stream_rejected(self):
        simulator = ServingSimulator(CPUOnlyRunner(HARPV2_SYSTEM), DLRM1)
        with pytest.raises(SimulationError):
            simulator.serve([])


class TestServePoisson:
    def test_reports_are_deterministic_for_a_seed(self):
        runner = CentaurRunner(HARPV2_SYSTEM)
        simulator = ServingSimulator(runner, DLRM1)
        first = simulator.serve_poisson(rate_qps=5_000, duration_s=0.05, seed=3)
        second = simulator.serve_poisson(rate_qps=5_000, duration_s=0.05, seed=3)
        assert first.latency.p99_s == second.latency.p99_s
        assert first.completed_requests == second.completed_requests

    def test_tail_latency_grows_with_load(self):
        runner = CPUOnlyRunner(HARPV2_SYSTEM)
        simulator = ServingSimulator(
            runner, DLRM2, batching=TimeoutBatching(window_s=1e-3, max_batch_size=32)
        )
        saturation = simulator.saturation_throughput()
        light = simulator.serve_poisson(rate_qps=0.2 * saturation, duration_s=0.3, seed=0)
        heavy = simulator.serve_poisson(rate_qps=0.9 * saturation, duration_s=0.3, seed=0)
        assert heavy.latency.p99_s > light.latency.p99_s
        assert heavy.device_utilization > light.device_utilization

    def test_centaur_meets_tighter_sla_than_cpu_at_same_load(self):
        """The serving-level consequence of Centaur's lower batch latency."""
        rate = 30_000.0
        batching = TimeoutBatching(window_s=1e-3, max_batch_size=64)
        cpu = ServingSimulator(CPUOnlyRunner(HARPV2_SYSTEM), DLRM2, batching=batching)
        centaur = ServingSimulator(CentaurRunner(HARPV2_SYSTEM), DLRM2, batching=batching)
        cpu_report = cpu.serve_poisson(rate_qps=rate, duration_s=0.2, seed=5)
        centaur_report = centaur.serve_poisson(rate_qps=rate, duration_s=0.2, seed=5)
        assert centaur_report.latency.p99_s < cpu_report.latency.p99_s
        assert centaur_report.energy_per_request_joules < cpu_report.energy_per_request_joules

    def test_saturation_throughput_positive_and_validated(self):
        simulator = ServingSimulator(CentaurRunner(HARPV2_SYSTEM), DLRM1)
        assert simulator.saturation_throughput() > 10_000
        with pytest.raises(SimulationError):
            simulator.saturation_throughput(max_batch_size=0)

    def test_no_arrivals_rejected(self):
        simulator = ServingSimulator(CentaurRunner(HARPV2_SYSTEM), DLRM1)
        with pytest.raises(SimulationError):
            simulator.serve_poisson(rate_qps=0.001, duration_s=0.001, seed=0)
