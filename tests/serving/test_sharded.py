"""Tests for ShardedReplicaGroup: fan-out pricing, caching, equivalence."""

import numpy as np
import pytest

from repro.config import HARPV2_SYSTEM
from repro.config.models import homogeneous_dlrm
from repro.core import CentaurRunner
from repro.cpu import CPUOnlyRunner
from repro.errors import SimulationError
from repro.serving import (
    ClusterSimulator,
    ShardedReplicaGroup,
    TimeoutBatching,
)
from repro.sharding import CacheConfig, make_plan
from repro.workloads import PoissonArrivals, Workload
from repro.workloads.mix import TrafficMix
from repro.workloads.traces import UniformTrace, WorkingSetTrace, ZipfianTrace

BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=32)


@pytest.fixture(scope="module")
def model():
    return homogeneous_dlrm(
        name="sharded-test",
        num_tables=4,
        rows_per_table=5_000,
        gathers_per_table=8,
        embedding_dim=32,
    )


def zipf_workload():
    return Workload(
        arrivals=PoissonArrivals(rate_qps=30_000),
        trace=ZipfianTrace(alpha=1.05),
    )


def serve(group, workload, n=1_500, seed=3):
    return group.serve_workload(workload, num_requests=n, seed=seed)


class TestUnshardedEquivalence:
    """1 shard + cache off must be bit-identical to the plain cluster path."""

    @pytest.mark.parametrize("trace", [UniformTrace(), ZipfianTrace(alpha=1.05)])
    def test_bit_identical_to_cluster_simulator(self, model, trace):
        workload = Workload(arrivals=PoissonArrivals(rate_qps=30_000), trace=trace)
        group = ShardedReplicaGroup(
            CentaurRunner(HARPV2_SYSTEM),
            model,
            num_shards=1,
            batching=BATCHING,
            system=HARPV2_SYSTEM,
        )
        sharded = serve(group, workload)
        cluster = ClusterSimulator(
            CentaurRunner(HARPV2_SYSTEM), model, num_replicas=1, batching=BATCHING
        )
        baseline = cluster.serve_workload(workload, num_requests=1_500, seed=3)

        assert sharded.latency.samples_s.tolist() == baseline.latency.samples_s.tolist()
        assert sharded.completed_requests == baseline.completed_requests
        assert sharded.total_energy_joules == baseline.total_energy_joules
        assert sharded.num_replicas == baseline.num_replicas == 1
        left, right = sharded.per_replica[0], baseline.per_replica[0]
        assert left.executed_batches == right.executed_batches
        assert left.ordered_latency_s == right.ordered_latency_s
        assert left.device_busy_s == right.device_busy_s

    def test_degenerate_group_still_accounts_lookups(self, model):
        group = ShardedReplicaGroup(
            CentaurRunner(HARPV2_SYSTEM),
            model,
            num_shards=1,
            batching=BATCHING,
            system=HARPV2_SYSTEM,
        )
        report = serve(group, zipf_workload())
        stats = report.sharding
        assert stats.num_shards == 1
        assert stats.per_shard_lookups[0] > 0
        assert stats.per_shard_gathered == stats.per_shard_lookups
        assert stats.cross_shard_bytes == 0.0
        assert stats.hit_rate == 0.0


class TestHotRowCache:
    """The acceptance scenario: skewed traces reward the hot-row cache."""

    @pytest.mark.parametrize(
        "trace",
        [ZipfianTrace(alpha=1.05), WorkingSetTrace(hot_fraction=0.05, hot_weight=0.9)],
    )
    @pytest.mark.parametrize("policy", ["lru", "lfu"])
    def test_cache_raises_hit_rate_and_cuts_gather_latency(self, model, trace, policy):
        workload = Workload(arrivals=PoissonArrivals(rate_qps=30_000), trace=trace)

        def run(cache):
            group = ShardedReplicaGroup(
                CentaurRunner(HARPV2_SYSTEM),
                model,
                num_shards=2,
                strategy="row",
                cache=cache,
                batching=BATCHING,
                system=HARPV2_SYSTEM,
            )
            return serve(group, workload)

        off = run(None)
        on = run(CacheConfig(policy=policy, capacity_rows=1_024))
        assert on.sharding.hit_rate > 0.3
        assert off.sharding.hit_rate == 0.0
        assert on.sharding.mean_gather_s < off.sharding.mean_gather_s
        assert on.latency.mean_s < off.latency.mean_s
        # Same seed, same arrivals: the comparison is apples to apples.
        assert on.completed_requests == off.completed_requests

    def test_cache_helps_skew_more_than_uniform(self, model):
        def hit_rate(trace):
            workload = Workload(arrivals=PoissonArrivals(rate_qps=30_000), trace=trace)
            group = ShardedReplicaGroup(
                CentaurRunner(HARPV2_SYSTEM),
                model,
                num_shards=2,
                strategy="row",
                cache=CacheConfig(policy="lru", capacity_rows=512),
                batching=BATCHING,
                system=HARPV2_SYSTEM,
            )
            return serve(group, workload).sharding.hit_rate

        assert hit_rate(ZipfianTrace(alpha=1.05)) > hit_rate(UniformTrace()) + 0.1

    def test_eviction_accounting_under_tight_capacity(self, model):
        group = ShardedReplicaGroup(
            CentaurRunner(HARPV2_SYSTEM),
            model,
            num_shards=2,
            strategy="row",
            cache=CacheConfig(policy="lru", capacity_rows=64),
            batching=BATCHING,
            system=HARPV2_SYSTEM,
        )
        stats = serve(group, zipf_workload()).sharding
        assert stats.evictions > 0
        stats.cache.validate()
        assert stats.cache.accesses == stats.total_lookups


class TestFanOutPricing:
    def test_sharding_cuts_the_gather_stage(self, model):
        """More shards gather in parallel: the straggler beats the monolith."""
        gathers = {}
        for shards in (1, 2, 4):
            group = ShardedReplicaGroup(
                CentaurRunner(HARPV2_SYSTEM),
                model,
                num_shards=shards,
                strategy="row",
                batching=BATCHING,
                system=HARPV2_SYSTEM,
            )
            gathers[shards] = serve(group, zipf_workload()).sharding.mean_gather_s
        assert gathers[2] < gathers[1]
        assert gathers[4] < gathers[2]
        # But never better than a perfect split: the straggler gates.
        assert gathers[2] > gathers[1] / 2

    def test_cross_shard_traffic_appears_beyond_one_shard(self, model):
        for shards, strategy in ((2, "row"), (4, "table")):
            group = ShardedReplicaGroup(
                CentaurRunner(HARPV2_SYSTEM),
                model,
                num_shards=shards,
                strategy=strategy,
                batching=BATCHING,
                system=HARPV2_SYSTEM,
            )
            stats = serve(group, zipf_workload()).sharding
            assert stats.cross_shard_bytes > 0
            assert stats.cross_shard_transfer_s > 0
            assert sum(stats.per_shard_lookups) == stats.total_lookups

    def test_double_run_is_deterministic(self, model):
        def run():
            group = ShardedReplicaGroup(
                CentaurRunner(HARPV2_SYSTEM),
                model,
                num_shards=4,
                strategy="row",
                cache=CacheConfig(policy="lfu", capacity_rows=512),
                batching=BATCHING,
                system=HARPV2_SYSTEM,
            )
            return serve(group, zipf_workload())

        first, second = run(), run()
        assert first.latency.samples_s.tolist() == second.latency.samples_s.tolist()
        assert first.sharding == second.sharding

    def test_works_on_the_cpu_backend_too(self, model):
        group = ShardedReplicaGroup(
            CPUOnlyRunner(HARPV2_SYSTEM),
            model,
            num_shards=2,
            strategy="greedy",
            cache=CacheConfig(policy="lru", capacity_rows=1_024),
            batching=BATCHING,
            system=HARPV2_SYSTEM,
        )
        report = serve(group, zipf_workload())
        assert report.sharding.hit_rate > 0.0
        assert report.completed_requests == 1_500

    def test_backend_name_resolution(self, model):
        group = ShardedReplicaGroup(
            "centaur", model, num_shards=2, batching=BATCHING, system=HARPV2_SYSTEM
        )
        assert group.design_point == "Centaur"

    def test_raw_request_stream_defaults_to_a_uniform_trace(self, model):
        requests = zipf_workload().request_list(num_requests=500, seed=4)
        group = ShardedReplicaGroup(
            CentaurRunner(HARPV2_SYSTEM),
            model,
            num_shards=2,
            strategy="table",
            cache=CacheConfig(policy="lru", capacity_rows=256),
            batching=BATCHING,
            system=HARPV2_SYSTEM,
        )
        report = group.serve(requests)
        stats = report.sharding
        assert report.completed_requests == 500
        assert not group.plan.row_wise
        assert stats.total_lookups == sum(stats.per_shard_lookups)
        # A uniform trace over 5k rows/table barely hits a 256-row cache.
        assert stats.hit_rate < 0.3


class TestValidation:
    def test_backend_name_without_system_rejected(self, model):
        with pytest.raises(SimulationError):
            ShardedReplicaGroup("centaur", model, num_shards=2)

    def test_plan_for_another_model_rejected(self, model):
        other = homogeneous_dlrm(
            name="other", num_tables=2, rows_per_table=100, gathers_per_table=2
        )
        with pytest.raises(SimulationError):
            ShardedReplicaGroup(
                CentaurRunner(HARPV2_SYSTEM),
                model,
                plan=make_plan(other, 2, "table"),
                system=HARPV2_SYSTEM,
            )

    def test_multi_model_mix_rejected(self, model):
        other = homogeneous_dlrm(
            name="mix-other", num_tables=2, rows_per_table=100, gathers_per_table=2
        )
        workload = Workload(
            arrivals=PoissonArrivals(rate_qps=10_000),
            mix=TrafficMix(((model, 0.5), (other, 0.5))),
        )
        group = ShardedReplicaGroup(
            CentaurRunner(HARPV2_SYSTEM),
            model,
            num_shards=2,
            batching=BATCHING,
            system=HARPV2_SYSTEM,
        )
        with pytest.raises(SimulationError):
            group.serve_workload(workload, num_requests=10)

    def test_single_model_mix_for_another_model_rejected_upfront(self, model):
        other = homogeneous_dlrm(
            name="mix-single-other", num_tables=2, rows_per_table=100, gathers_per_table=2
        )
        workload = Workload(
            arrivals=PoissonArrivals(rate_qps=10_000),
            mix=TrafficMix(((other, 1.0),)),
        )
        group = ShardedReplicaGroup(
            CentaurRunner(HARPV2_SYSTEM),
            model,
            num_shards=2,
            batching=BATCHING,
            system=HARPV2_SYSTEM,
        )
        with pytest.raises(SimulationError, match="mix targets model"):
            group.serve_workload(workload, num_requests=10)

    def test_empty_stream_rejected(self, model):
        group = ShardedReplicaGroup(
            CentaurRunner(HARPV2_SYSTEM),
            model,
            num_shards=2,
            batching=BATCHING,
            system=HARPV2_SYSTEM,
        )
        with pytest.raises(SimulationError):
            group.serve([])

    def test_bad_cache_argument_rejected(self, model):
        with pytest.raises(SimulationError):
            ShardedReplicaGroup(
                CentaurRunner(HARPV2_SYSTEM),
                model,
                num_shards=2,
                cache="lru:rows=4",
                system=HARPV2_SYSTEM,
            )
