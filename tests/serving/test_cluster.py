"""Tests for the multi-replica cluster serving simulation."""

import pytest

from repro.config import DLRM2, HARPV2_SYSTEM
from repro.core import CentaurRunner
from repro.cpu import CPUOnlyRunner
from repro.errors import SimulationError
from repro.serving import ClusterSimulator, TimeoutBatching
from repro.serving.requests import InferenceRequest, PoissonRequestGenerator


BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=32)


class TestDispatch:
    def test_every_request_served_exactly_once(self):
        cluster = ClusterSimulator(
            CentaurRunner(HARPV2_SYSTEM), DLRM2, num_replicas=3, batching=BATCHING
        )
        stream = PoissonRequestGenerator(rate_qps=10_000, seed=2).generate(num_requests=120)
        report = cluster.serve(stream)
        assert report.completed_requests == 120
        assert len(report.latency) == 120
        assert report.num_replicas == 3

    def test_single_replica_matches_single_device_simulator(self):
        from repro.serving import ServingSimulator

        runner = CentaurRunner(HARPV2_SYSTEM)
        stream = PoissonRequestGenerator(rate_qps=5_000, seed=3).generate(num_requests=60)
        single = ServingSimulator(runner, DLRM2, batching=BATCHING).serve(stream)
        cluster = ClusterSimulator(runner, DLRM2, num_replicas=1, batching=BATCHING).serve(
            stream
        )
        assert cluster.latency.p99_s == pytest.approx(single.latency.p99_s, rel=1e-9)
        assert cluster.total_energy_joules == pytest.approx(single.energy_joules, rel=1e-9)

    def test_validation(self):
        with pytest.raises(SimulationError):
            ClusterSimulator(CentaurRunner(HARPV2_SYSTEM), DLRM2, num_replicas=0)
        cluster = ClusterSimulator(CentaurRunner(HARPV2_SYSTEM), DLRM2, num_replicas=2)
        with pytest.raises(SimulationError):
            cluster.serve([])


class TestScaling:
    def test_more_replicas_cut_tail_latency_under_heavy_load(self):
        runner = CPUOnlyRunner(HARPV2_SYSTEM)
        load = 40_000
        one = ClusterSimulator(runner, DLRM2, num_replicas=1, batching=BATCHING)
        four = ClusterSimulator(runner, DLRM2, num_replicas=4, batching=BATCHING)
        heavy_one = one.serve_poisson(rate_qps=load, duration_s=0.15, seed=7)
        heavy_four = four.serve_poisson(rate_qps=load, duration_s=0.15, seed=7)
        assert heavy_four.latency.p99_s < heavy_one.latency.p99_s
        assert heavy_four.mean_utilization < 1.0

    def test_fewer_centaur_replicas_match_cpu_tail(self):
        """The provisioning claim: Centaur needs fewer sockets for the same SLA."""
        load = 40_000
        cpu_cluster = ClusterSimulator(
            CPUOnlyRunner(HARPV2_SYSTEM), DLRM2, num_replicas=3, batching=BATCHING
        )
        centaur_cluster = ClusterSimulator(
            CentaurRunner(HARPV2_SYSTEM), DLRM2, num_replicas=1, batching=BATCHING
        )
        cpu_report = cpu_cluster.serve_poisson(rate_qps=load, duration_s=0.15, seed=11)
        centaur_report = centaur_cluster.serve_poisson(rate_qps=load, duration_s=0.15, seed=11)
        assert centaur_report.latency.p99_s <= cpu_report.latency.p99_s * 1.5
        assert centaur_report.total_energy_joules < cpu_report.total_energy_joules

    def test_energy_per_request_independent_of_replica_count_at_fixed_batching(self):
        runner = CentaurRunner(HARPV2_SYSTEM)
        stream = PoissonRequestGenerator(rate_qps=20_000, seed=5).generate(num_requests=200)
        two = ClusterSimulator(runner, DLRM2, num_replicas=2, batching=BATCHING).serve(stream)
        assert two.energy_per_request_joules > 0
