"""Tests for the ASCII table renderer."""

import pytest

from repro.utils.tables import TextTable, format_series


class TestTextTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_row_length_validation(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_render_contains_title_and_cells(self):
        table = TextTable(["model", "speedup"], title="Figure 14")
        table.add_row(["DLRM(1)", 9.3])
        rendered = table.render()
        assert "Figure 14" in rendered
        assert "DLRM(1)" in rendered
        assert "9.30" in rendered

    def test_add_rows_bulk(self):
        table = TextTable(["x"])
        table.add_rows([[1], [2], [3]])
        assert table.num_rows == 3

    def test_bool_formatting(self):
        table = TextTable(["feature", "supported"])
        table.add_row(["gathers", True])
        table.add_row(["small vectors", False])
        rendered = table.render()
        assert "yes" in rendered and "no" in rendered

    def test_large_and_small_float_formatting(self):
        table = TextTable(["value"])
        table.add_row([12345.678])
        table.add_row([0.00123])
        rendered = table.render()
        assert "12,345.7" in rendered
        assert "0.0012" in rendered

    def test_columns_align(self):
        table = TextTable(["a", "b"])
        table.add_row(["looooooooong", 1])
        table.add_row(["x", 22])
        lines = table.render().splitlines()
        header_width = len(lines[1])
        assert all(len(line) == header_width for line in lines[1:])


class TestFormatSeries:
    def test_renders_key_value_pairs(self):
        series = {1: 0.5, 4: 1.25}
        rendered = format_series(series)
        assert rendered == "1=0.50  4=1.25"

    def test_custom_format(self):
        assert format_series({"a": 3.14159}, "{:.1f}") == "a=3.1"
