"""Tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.stats_utils import (
    geometric_mean,
    harmonic_mean,
    safe_divide,
    weighted_mean,
)


class TestSafeDivide:
    def test_normal_division(self):
        assert safe_divide(6, 3) == 2

    def test_zero_denominator_returns_default(self):
        assert safe_divide(6, 0) == 0.0
        assert safe_divide(6, 0, default=-1.0) == -1.0


class TestGeometricMean:
    def test_matches_closed_form(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @given(
        st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=10),
        st.floats(min_value=0.5, max_value=4.0),
    )
    def test_scale_invariance(self, values, scale):
        scaled = [value * scale for value in values]
        assert geometric_mean(scaled) == pytest.approx(geometric_mean(values) * scale, rel=1e-9)


class TestHarmonicMean:
    def test_matches_closed_form(self):
        assert harmonic_mean([1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 6]) == pytest.approx(3.0)

    def test_rejects_empty_and_non_positive(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([-1.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=20))
    def test_harmonic_below_geometric(self, values):
        assert harmonic_mean(values) <= geometric_mean(values) + 1e-9


class TestWeightedMean:
    def test_uniform_weights_match_average(self):
        assert weighted_mean([1, 2, 3], [1, 1, 1]) == pytest.approx(2.0)

    def test_weights_shift_the_mean(self):
        assert weighted_mean([0.0, 10.0], [3.0, 1.0]) == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_mean([1], [1, 2])
        with pytest.raises(ValueError):
            weighted_mean([], [])
        with pytest.raises(ValueError):
            weighted_mean([1, 2], [0.0, 0.0])
        with pytest.raises(ValueError):
            weighted_mean([1, 2], [1.0, -1.0])

    def test_is_nan_free_for_finite_inputs(self):
        assert not math.isnan(weighted_mean([1e-9, 1e9], [1e-3, 1e3]))
