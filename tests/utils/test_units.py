"""Tests for unit constants and conversion helpers."""

import pytest

from repro.utils.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    bytes_to_human,
    gbps,
    microseconds,
    milliseconds,
    nanoseconds,
    seconds_to_human,
)


class TestUnitConstants:
    def test_binary_units_are_powers_of_two(self):
        assert KIB == 2 ** 10
        assert MIB == 2 ** 20
        assert GIB == 2 ** 30

    def test_decimal_units_are_powers_of_ten(self):
        assert KB == 10 ** 3
        assert MB == 10 ** 6
        assert GB == 10 ** 9

    def test_binary_units_exceed_decimal_units(self):
        assert KIB > KB and MIB > MB and GIB > GB


class TestConversions:
    def test_gbps(self):
        assert gbps(77.0) == pytest.approx(77e9)

    def test_time_helpers(self):
        assert nanoseconds(80) == pytest.approx(80e-9)
        assert microseconds(5) == pytest.approx(5e-6)
        assert milliseconds(3) == pytest.approx(3e-3)


class TestBytesToHuman:
    def test_small_values_stay_in_bytes(self):
        assert bytes_to_human(512) == "512 B"

    def test_decimal_rendering_matches_paper_style(self):
        assert bytes_to_human(128_000_000) == "128.00 MB"
        assert bytes_to_human(1_280_000_000) == "1.28 GB"

    def test_binary_rendering(self):
        assert bytes_to_human(35 * MIB, decimal=False) == "35.00 MiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_human(-1)


class TestSecondsToHuman:
    def test_zero(self):
        assert seconds_to_human(0) == "0 s"

    def test_nanoseconds_range(self):
        assert seconds_to_human(80e-9).endswith("ns")

    def test_microseconds_range(self):
        assert seconds_to_human(5e-6).endswith("us")

    def test_milliseconds_range(self):
        assert seconds_to_human(3.3e-3).endswith("ms")

    def test_seconds_range(self):
        assert seconds_to_human(2.0).endswith("s")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            seconds_to_human(-0.1)
