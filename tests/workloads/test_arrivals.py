"""Tests for the arrival processes: determinism, laziness, statistics."""

import itertools

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.workloads import (
    ArrivalProcess,
    ConstantRateArrivals,
    DiurnalArrivals,
    InferenceRequest,
    OnOffArrivals,
    PoissonArrivals,
    ReplayArrivals,
    as_arrival_process,
    merge_streams,
)

ALL_PROCESSES = (
    PoissonArrivals(rate_qps=5_000.0),
    ConstantRateArrivals(rate_qps=5_000.0),
    OnOffArrivals(on_rate_qps=20_000.0, off_rate_qps=1_000.0, mean_on_s=0.01, mean_off_s=0.02),
    DiurnalArrivals(trough_qps=2_000.0, peak_qps=20_000.0, period_s=0.2),
    ReplayArrivals(np.linspace(0.001, 1.0, 500)),
)


class TestDeterminism:
    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: p.kind)
    def test_identical_seeds_identical_streams(self, process):
        first = process.generate(num_requests=200, seed=7)
        second = process.generate(num_requests=200, seed=7)
        assert [r.arrival_time_s for r in first] == [r.arrival_time_s for r in second]

    @pytest.mark.parametrize(
        "process",
        [p for p in ALL_PROCESSES if p.kind not in ("replay", "constant")],
        ids=lambda p: p.kind,
    )
    def test_different_seeds_differ(self, process):
        first = process.generate(num_requests=50, seed=1)
        second = process.generate(num_requests=50, seed=2)
        assert [r.arrival_time_s for r in first] != [r.arrival_time_s for r in second]

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: p.kind)
    def test_streams_are_sorted_with_sequential_ids(self, process):
        requests = process.generate(num_requests=300, seed=3)
        times = [r.arrival_time_s for r in requests]
        assert times == sorted(times)
        assert [r.request_id for r in requests] == list(range(len(requests)))

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: p.kind)
    def test_statelessness_across_calls(self, process):
        """One instance, two calls, same seed: identical streams."""
        first = process.generate(num_requests=64, seed=11)
        second = process.generate(num_requests=64, seed=11)
        assert [r.arrival_time_s for r in first] == [r.arrival_time_s for r in second]


class TestLaziness:
    def test_arrivals_is_a_lazy_iterator(self):
        process = PoissonArrivals(rate_qps=1_000.0)
        stream = process.arrivals(num_requests=10_000_000, seed=0)
        head = list(itertools.islice(stream, 5))
        assert len(head) == 5
        assert all(isinstance(r, InferenceRequest) for r in head)

    def test_duration_mode_respects_window(self):
        requests = PoissonArrivals(2_000.0).generate(duration_s=0.05, seed=1)
        assert all(r.arrival_time_s <= 0.05 for r in requests)
        assert 40 <= len(requests) <= 180


class TestPoisson:
    def test_rate_close_to_requested(self):
        requests = PoissonArrivals(5_000.0).generate(num_requests=5_000, seed=7)
        empirical = len(requests) / requests[-1].arrival_time_s
        assert empirical == pytest.approx(5_000.0, rel=0.1)

    def test_chunked_draws_match_legacy_scalar_loop(self):
        """The vectorized stream is draw-for-draw the legacy per-request loop.

        The count deliberately spans several chunk boundaries: folding the
        running clock into the first gap before the cumsum keeps the float
        accumulation order identical to the sequential ``now += gap`` loop,
        which a start-of-chunk offset add would silently break.
        """
        rate, seed, count = 1_234.0, 42, 10_000
        rng = np.random.default_rng(seed)
        legacy = []
        now = 0.0
        for _ in range(count):
            now += float(rng.exponential(1.0 / rate))
            legacy.append(now)
        vectorized = [
            r.arrival_time_s
            for r in PoissonArrivals(rate).generate(num_requests=count, seed=seed)
        ]
        assert vectorized == pytest.approx(legacy, abs=0.0)


class TestConstantRate:
    def test_evenly_spaced(self):
        requests = ConstantRateArrivals(1_000.0).generate(num_requests=10)
        gaps = np.diff([0.0] + [r.arrival_time_s for r in requests])
        assert gaps == pytest.approx(np.full(10, 1e-3))


class TestOnOff:
    def test_mean_rate_is_sojourn_weighted(self):
        process = OnOffArrivals(
            on_rate_qps=30_000.0, off_rate_qps=0.0, mean_on_s=0.1, mean_off_s=0.3
        )
        assert process.mean_rate_qps == pytest.approx(7_500.0)

    def test_burstier_than_poisson(self):
        """Inter-arrival CoV well above 1 distinguishes MMPP from Poisson."""
        process = OnOffArrivals(
            on_rate_qps=50_000.0, off_rate_qps=500.0, mean_on_s=0.01, mean_off_s=0.05
        )
        times = [r.arrival_time_s for r in process.generate(num_requests=4_000, seed=5)]
        gaps = np.diff([0.0] + times)
        assert np.std(gaps) / np.mean(gaps) > 1.5

    def test_long_run_rate_approaches_mean(self):
        process = OnOffArrivals(
            on_rate_qps=20_000.0, off_rate_qps=2_000.0, mean_on_s=0.02, mean_off_s=0.02
        )
        requests = process.generate(duration_s=2.0, seed=9)
        empirical = len(requests) / 2.0
        assert empirical == pytest.approx(process.mean_rate_qps, rel=0.2)

    def test_validation(self):
        with pytest.raises(SimulationError):
            OnOffArrivals(on_rate_qps=0.0)
        with pytest.raises(SimulationError):
            OnOffArrivals(on_rate_qps=1.0, off_rate_qps=-1.0)
        with pytest.raises(SimulationError):
            OnOffArrivals(on_rate_qps=1.0, mean_on_s=0.0)


class TestDiurnal:
    def test_rate_curve_endpoints(self):
        process = DiurnalArrivals(trough_qps=1_000.0, peak_qps=9_000.0, period_s=1.0)
        assert process.rate_at(0.0) == pytest.approx(1_000.0)
        assert process.rate_at(0.5) == pytest.approx(9_000.0)
        assert process.mean_rate_qps == pytest.approx(5_000.0)

    def test_peak_half_busier_than_trough_half(self):
        process = DiurnalArrivals(trough_qps=2_000.0, peak_qps=30_000.0, period_s=1.0)
        requests = process.generate(duration_s=1.0, seed=3)
        times = np.array([r.arrival_time_s for r in requests])
        near_peak = np.sum((times > 0.25) & (times <= 0.75))
        off_peak = len(times) - near_peak
        assert near_peak > 2 * off_peak

    def test_validation(self):
        with pytest.raises(SimulationError):
            DiurnalArrivals(trough_qps=10.0, peak_qps=5.0)
        with pytest.raises(SimulationError):
            DiurnalArrivals(trough_qps=1.0, peak_qps=2.0, period_s=0.0)


class TestReplay:
    def test_replays_exactly(self):
        times = [0.001, 0.002, 0.0035]
        requests = ReplayArrivals(times).generate(num_requests=10)
        assert [r.arrival_time_s for r in requests] == pytest.approx(times)

    def test_rejects_unsorted_and_negative(self):
        with pytest.raises(SimulationError):
            ReplayArrivals([0.2, 0.1])
        with pytest.raises(SimulationError):
            ReplayArrivals([-0.1, 0.2])
        with pytest.raises(SimulationError):
            ReplayArrivals([])


class TestArgumentValidation:
    def test_exactly_one_bound(self):
        process = PoissonArrivals(10.0)
        with pytest.raises(SimulationError):
            list(process.arrivals())
        with pytest.raises(SimulationError):
            list(process.arrivals(duration_s=1.0, num_requests=5))
        with pytest.raises(SimulationError):
            list(process.arrivals(duration_s=-1.0))
        with pytest.raises(SimulationError):
            list(process.arrivals(num_requests=0))

    def test_as_arrival_process(self):
        assert isinstance(as_arrival_process(500.0), PoissonArrivals)
        process = ConstantRateArrivals(10.0)
        assert as_arrival_process(process) is process
        with pytest.raises(SimulationError):
            as_arrival_process("nope")


class TestMergeStreams:
    def test_merges_in_time_order_with_fresh_ids(self):
        a = ReplayArrivals([0.1, 0.3]).arrivals(num_requests=2)
        b = ReplayArrivals([0.2, 0.4]).arrivals(num_requests=2)
        merged = list(merge_streams([a, b]))
        assert [r.arrival_time_s for r in merged] == pytest.approx([0.1, 0.2, 0.3, 0.4])
        assert [r.request_id for r in merged] == [0, 1, 2, 3]

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            list(merge_streams([]))


class TestAbstractBase:
    def test_base_class_raises(self):
        process = ArrivalProcess()
        with pytest.raises(NotImplementedError):
            process.mean_rate_qps
        with pytest.raises(NotImplementedError):
            next(iter(process.times()))
