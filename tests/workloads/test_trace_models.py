"""Tests for the stateless trace models (uniform / zipf / hot-cold / per-table)."""

import numpy as np
import pytest

from repro.config.models import EmbeddingTableConfig, homogeneous_dlrm
from repro.errors import TraceError
from repro.workloads import (
    ModelTraceGenerator,
    PerTableTrace,
    UniformTrace,
    WorkingSetTrace,
    ZipfianTrace,
    model_batch,
    table_trace,
)

TABLE = EmbeddingTableConfig(num_rows=10_000, embedding_dim=32, gathers=20)


def draws(model, count=20_000, num_rows=10_000, seed=0, table_index=None):
    return model.draw(np.random.default_rng(seed), num_rows, count, table_index)


class TestUniformTrace:
    def test_range_and_determinism(self):
        a = draws(UniformTrace(), seed=5)
        b = draws(UniformTrace(), seed=5)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 10_000

    def test_roughly_uniform(self):
        indices = draws(UniformTrace(), count=100_000)
        hot_share = np.mean(indices < 1_000)
        assert hot_share == pytest.approx(0.1, abs=0.02)


class TestZipfianTrace:
    def test_skew_concentrates_traffic(self):
        zipf = ZipfianTrace(alpha=1.2)
        indices = draws(zipf, count=50_000)
        _, counts = np.unique(indices, return_counts=True)
        top_share = np.sort(counts)[::-1][:100].sum() / len(indices)
        assert top_share > 0.4  # top-100 rows take a large share

    def test_alpha_zero_rejected(self):
        with pytest.raises(TraceError):
            ZipfianTrace(alpha=0.0)

    def test_scatter_is_stable_across_stream_seeds(self):
        """Hot-row placement is part of the model, not the stream seed."""
        zipf = ZipfianTrace(alpha=1.4)
        a = draws(zipf, count=50_000, seed=1)
        b = draws(zipf, count=50_000, seed=2)
        hot_a = np.bincount(a, minlength=10_000).argmax()
        hot_b = np.bincount(b, minlength=10_000).argmax()
        assert hot_a == hot_b


class TestWorkingSetTrace:
    def test_hot_set_takes_hot_weight(self):
        model = WorkingSetTrace(hot_fraction=0.05, hot_weight=0.9)
        indices = draws(model, count=100_000)
        counts = np.bincount(indices, minlength=10_000)
        hot_rows = np.sort(counts)[::-1][:500]  # 5% of 10k rows
        assert hot_rows.sum() / counts.sum() == pytest.approx(0.9, abs=0.02)

    def test_validation(self):
        with pytest.raises(TraceError):
            WorkingSetTrace(hot_fraction=0.0)
        with pytest.raises(TraceError):
            WorkingSetTrace(hot_fraction=1.0)
        with pytest.raises(TraceError):
            WorkingSetTrace(hot_weight=1.5)

    def test_describe(self):
        assert "5%" in WorkingSetTrace(hot_fraction=0.05).describe()


class TestPerTableTrace:
    def test_override_dispatch(self):
        per_table = PerTableTrace(
            default=UniformTrace(), overrides={1: WorkingSetTrace(0.01, 0.99)}
        )
        uniform = draws(per_table, count=50_000, table_index=0)
        skewed = draws(per_table, count=50_000, table_index=1)
        top_uniform = np.sort(np.bincount(uniform, minlength=10_000))[::-1][:100].sum()
        top_skewed = np.sort(np.bincount(skewed, minlength=10_000))[::-1][:100].sum()
        assert top_skewed > 5 * top_uniform

    def test_validation(self):
        with pytest.raises(TraceError):
            PerTableTrace(default="nope", overrides={})
        with pytest.raises(TraceError):
            PerTableTrace(default=UniformTrace(), overrides={-1: UniformTrace()})
        with pytest.raises(TraceError):
            PerTableTrace(default=UniformTrace(), overrides={0: "nope"})

    def test_describe_names_overrides(self):
        per_table = PerTableTrace(UniformTrace(), {2: ZipfianTrace(alpha=2.0)})
        text = per_table.describe()
        assert "table 2" in text and "zipf" in text


class TestTraceHelpers:
    def test_table_trace_shape(self):
        trace = table_trace(UniformTrace(), np.random.default_rng(0), TABLE, batch_size=8)
        assert trace.batch_size == 8
        assert trace.total_lookups == 8 * TABLE.gathers
        assert trace.num_rows == TABLE.num_rows

    def test_table_trace_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(TraceError):
            table_trace(UniformTrace(), rng, TABLE, batch_size=0)
        with pytest.raises(TraceError):
            table_trace(UniformTrace(), rng, TABLE, batch_size=4, lookups_per_sample=-1)

    def test_model_batch_covers_all_tables(self):
        config = homogeneous_dlrm(
            "wl-test", num_tables=3, rows_per_table=1_000, gathers_per_table=4
        )
        batch = model_batch(UniformTrace(), np.random.default_rng(1), config, batch_size=6)
        assert batch.batch_size == 6
        assert batch.num_tables == 3

    def test_model_trace_generator_adapter(self):
        """Legacy TraceGenerator consumers can drive any TraceModel."""
        config = homogeneous_dlrm(
            "wl-adapter", num_tables=2, rows_per_table=2_000, gathers_per_table=5
        )
        generator = ModelTraceGenerator(WorkingSetTrace(0.05, 0.9), seed=3)
        batch = generator.model_batch(config, batch_size=4)
        assert batch.num_tables == 2
        assert batch.total_lookups == 4 * 5 * 2
        repeat = ModelTraceGenerator(WorkingSetTrace(0.05, 0.9), seed=3)
        again = repeat.model_batch(config, batch_size=4)
        assert np.array_equal(batch.sparse_traces[0].indices, again.sparse_traces[0].indices)
