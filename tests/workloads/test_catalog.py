"""Tests for the workload spec parser and catalog."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    ARRIVAL_CATALOG,
    TRACE_CATALOG,
    ConstantRateArrivals,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
    ReplayArrivals,
    UniformTrace,
    WorkingSetTrace,
    ZipfianTrace,
    parse_arrival_spec,
    parse_trace_spec,
    parse_workload_spec,
)


class TestArrivalSpecs:
    def test_poisson(self):
        process = parse_arrival_spec("poisson:30000")
        assert isinstance(process, PoissonArrivals)
        assert process.rate_qps == 30_000.0

    def test_constant(self):
        assert isinstance(parse_arrival_spec("constant:100"), ConstantRateArrivals)

    def test_bursty_with_defaults_and_overrides(self):
        process = parse_arrival_spec("bursty:on=50000,mean_on=0.02")
        assert isinstance(process, OnOffArrivals)
        assert process.on_rate_qps == 50_000.0
        assert process.mean_on_s == 0.02
        assert process.off_rate_qps == 0.0  # default

    def test_diurnal(self):
        process = parse_arrival_spec("diurnal:trough=1000,peak=9000,period=2")
        assert isinstance(process, DiurnalArrivals)
        assert process.peak_qps == 9_000.0

    def test_replay(self):
        process = parse_arrival_spec("replay:0.001,0.002,0.0035")
        assert isinstance(process, ReplayArrivals)
        assert len(process.arrival_times_s) == 3

    def test_case_insensitive_kind(self):
        assert isinstance(parse_arrival_spec("POISSON:10"), PoissonArrivals)

    def test_errors(self):
        with pytest.raises(ConfigurationError, match="unknown arrival"):
            parse_arrival_spec("sawtooth:1")
        with pytest.raises(ConfigurationError, match="rate"):
            parse_arrival_spec("poisson:fast")
        with pytest.raises(ConfigurationError, match="unknown bursty parameter"):
            parse_arrival_spec("bursty:warp=9")
        with pytest.raises(ConfigurationError, match="key=value"):
            parse_arrival_spec("bursty:40000")
        with pytest.raises(ConfigurationError, match="not a number"):
            parse_arrival_spec("diurnal:peak=tall")
        with pytest.raises(ConfigurationError):
            parse_arrival_spec("replay:")
        with pytest.raises(ConfigurationError):
            parse_arrival_spec("replay:a,b")


class TestTraceSpecs:
    def test_uniform(self):
        assert isinstance(parse_trace_spec("uniform"), UniformTrace)
        with pytest.raises(ConfigurationError):
            parse_trace_spec("uniform:1")

    def test_zipf(self):
        model = parse_trace_spec("zipf:1.3")
        assert isinstance(model, ZipfianTrace)
        assert model.alpha == 1.3
        assert parse_trace_spec("zipf").alpha == 1.05

    def test_hotcold(self):
        model = parse_trace_spec("hotcold:frac=0.1,weight=0.8")
        assert isinstance(model, WorkingSetTrace)
        assert model.hot_fraction == 0.1
        assert model.hot_weight == 0.8

    def test_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown trace"):
            parse_trace_spec("fractal")


class TestWorkloadSpec:
    def test_composes_both(self):
        workload = parse_workload_spec("poisson:5000", "zipf:1.1")
        assert isinstance(workload.arrivals, PoissonArrivals)
        assert isinstance(workload.trace, ZipfianTrace)


class TestCatalogCoverage:
    def test_every_entry_example_parses(self):
        for entry in ARRIVAL_CATALOG.values():
            assert parse_arrival_spec(entry.example) is not None
        for entry in TRACE_CATALOG.values():
            assert parse_trace_spec(entry.example) is not None

    def test_render_workload_catalog(self):
        from repro.analysis import render_workload_catalog

        text = render_workload_catalog()
        for kind in ARRIVAL_CATALOG:
            assert kind in text
        for kind in TRACE_CATALOG:
            assert kind in text
