"""Unit tests for embedding update streams and their spec grammar."""

import itertools
from collections import Counter

import numpy as np
import pytest

from repro.config.models import homogeneous_dlrm
from repro.errors import ConfigurationError
from repro.workloads import (
    PoissonArrivals,
    UPDATE_SCENARIO_CATALOG,
    UpdateProcess,
    parse_update_spec,
    resolve_update_spec,
)
from repro.workloads.traces import UniformTrace, ZipfianTrace

MODEL = homogeneous_dlrm(
    name="updates-test",
    num_tables=4,
    rows_per_table=10_000,
    gathers_per_table=4,
    embedding_dim=32,
)


def take(process, n, seed=0, default_trace=None):
    return list(
        itertools.islice(process.events(MODEL, seed=seed, default_trace=default_trace), n)
    )


class TestDeterminism:
    def test_equal_processes_produce_identical_streams(self):
        a = UpdateProcess(arrivals=5_000, rows_per_update=8, mode="invalidate")
        b = UpdateProcess(arrivals=5_000, rows_per_update=8, mode="invalidate")
        for left, right in zip(take(a, 50, seed=7), take(b, 50, seed=7)):
            assert left.sequence == right.sequence
            assert left.time_s == right.time_s
            assert left.table_index == right.table_index
            assert np.array_equal(left.rows, right.rows)

    def test_different_seeds_produce_different_streams(self):
        process = UpdateProcess(arrivals=5_000, rows_per_update=8)
        first = take(process, 50, seed=1)
        second = take(process, 50, seed=2)
        assert [e.time_s for e in first] != [e.time_s for e in second]

    def test_times_are_monotone_and_sequences_count_up(self):
        process = UpdateProcess(arrivals=5_000, rows_per_update=4)
        events = take(process, 80, seed=3)
        times = [event.time_s for event in events]
        assert times == sorted(times)
        assert [event.sequence for event in events] == list(range(80))


class TestRowSkew:
    def test_default_trace_shapes_the_drawn_rows(self):
        """With a zipf default trace the pushed rows concentrate on the head."""
        process = UpdateProcess(arrivals=5_000, rows_per_update=16)
        uniform_rows = Counter(
            int(row)
            for event in take(process, 200, seed=9, default_trace=UniformTrace())
            for row in event.rows
        )
        zipf_rows = Counter(
            int(row)
            for event in take(
                process, 200, seed=9, default_trace=ZipfianTrace(alpha=1.5)
            )
            for row in event.rows
        )
        assert max(zipf_rows.values()) > 3 * max(uniform_rows.values())

    def test_explicit_trace_overrides_the_default(self):
        skewed = UpdateProcess(
            arrivals=5_000, rows_per_update=16, trace=ZipfianTrace(alpha=1.5)
        )
        rows = Counter(
            int(row)
            for event in take(skewed, 200, seed=9, default_trace=UniformTrace())
            for row in event.rows
        )
        assert max(rows.values()) > 10  # zipf head, not uniform spread

    def test_tables_are_weighted_by_row_count(self):
        import dataclasses

        base = homogeneous_dlrm(
            name="updates-weighted",
            num_tables=2,
            rows_per_table=1_000,
            gathers_per_table=2,
        )
        big = dataclasses.replace(base.tables[0], num_rows=99_000)
        big_and_small = dataclasses.replace(
            base, tables=type(base.tables)([big, base.tables[1]])
        )
        process = UpdateProcess(arrivals=5_000, rows_per_update=2)
        events = list(
            itertools.islice(process.events(big_and_small, seed=4), 300)
        )
        tables = Counter(event.table_index for event in events)
        assert tables[0] > 250  # 99% of the row mass

    def test_rows_stay_in_range(self):
        process = UpdateProcess(arrivals=5_000, rows_per_update=32)
        for event in take(process, 100, seed=5, default_trace=ZipfianTrace(alpha=1.2)):
            assert (event.rows >= 0).all()
            assert (event.rows < MODEL.tables[event.table_index].num_rows).all()


class TestValidationAndLabels:
    def test_bare_rate_coerces_to_poisson(self):
        process = UpdateProcess(arrivals=2_500.0)
        assert isinstance(process.arrivals, PoissonArrivals)
        assert process.mean_push_rate == 2_500.0

    def test_mean_row_rate_scales_with_rows_per_update(self):
        process = UpdateProcess(arrivals=1_000, rows_per_update=32)
        assert process.mean_row_rate == 32_000.0

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            UpdateProcess(arrivals=1_000, mode="drop")

    def test_bad_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            UpdateProcess(arrivals=1_000, rows_per_update=0)

    def test_label_defaults_to_mode_rate_rows(self):
        process = UpdateProcess(arrivals=4_000, rows_per_update=32, mode="invalidate")
        assert process.label() == "invalidate:4000x32"

    def test_explicit_name_wins(self):
        process = UpdateProcess(arrivals=4_000, name="storm")
        assert process.label() == "storm"


class TestSpecParsing:
    def test_full_spec(self):
        process = parse_update_spec("write-through:rate=2000,rows=16")
        assert process.mode == "write-through"
        assert process.mean_push_rate == 2_000.0
        assert process.rows_per_update == 16

    def test_mode_aliases(self):
        assert parse_update_spec("writethrough:100").mode == "write-through"
        assert parse_update_spec("write_through:100").mode == "write-through"

    def test_bare_number_body_is_the_rate(self):
        process = parse_update_spec("invalidate:4000")
        assert process.mean_push_rate == 4_000.0
        assert process.rows_per_update == 1

    def test_trace_parameter(self):
        process = parse_update_spec("ignore:rate=500,rows=4,trace=zipf:1.2")
        assert isinstance(process.trace, ZipfianTrace)
        assert process.mode == "ignore"

    @pytest.mark.parametrize("spec", [None, "", "off", "none", "invalidate:rate=0"])
    def test_disabled_specs(self, spec):
        assert parse_update_spec(spec) is None

    @pytest.mark.parametrize(
        "spec",
        ["drop:rate=100", "invalidate:rate=-5", "invalidate:pages=4", "invalidate:rate=x"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_update_spec(spec)


class TestScenarioCatalog:
    def test_model_push_storm_resolves(self):
        process = resolve_update_spec("model-push-storm")
        assert process is not None
        assert process.mode == "invalidate"
        assert process.mean_push_rate == 4_000.0
        assert process.rows_per_update == 32

    def test_raw_spec_falls_through(self):
        process = resolve_update_spec("ignore:rate=10")
        assert process.mode == "ignore"

    def test_scenarios_carry_runnable_traffic(self):
        for scenario in UPDATE_SCENARIO_CATALOG.values():
            workload = scenario.workload()
            assert workload.arrivals.mean_rate_qps > 0
            assert scenario.updates() is not None
