"""Tests for TrafficMix, Workload composition, seed-splitting and gating."""

import itertools

import numpy as np
import pytest

from repro.backends import BackendCapabilities
from repro.config import DLRM2, DLRM4
from repro.errors import SimulationError
from repro.workloads import (
    OnOffArrivals,
    PoissonArrivals,
    TrafficMix,
    UniformTrace,
    Workload,
    ZipfianTrace,
    poisson_workload,
)


class TestTrafficMix:
    def test_shares_normalized(self):
        mix = TrafficMix.of((DLRM2, 3.0), (DLRM4, 1.0))
        shares = mix.expected_shares()
        assert shares["DLRM(2)"] == pytest.approx(0.75)
        assert shares["DLRM(4)"] == pytest.approx(0.25)

    def test_name_stream_matches_weights(self):
        mix = TrafficMix.of((DLRM2, 0.7), (DLRM4, 0.3))
        names = list(itertools.islice(mix.name_stream(seed=0), 20_000))
        share = names.count("DLRM(2)") / len(names)
        assert share == pytest.approx(0.7, abs=0.02)

    def test_name_stream_deterministic(self):
        mix = TrafficMix.of((DLRM2, 0.5), (DLRM4, 0.5))
        a = list(itertools.islice(mix.name_stream(seed=9), 100))
        b = list(itertools.islice(mix.name_stream(seed=9), 100))
        assert a == b

    def test_single_and_label(self):
        assert not TrafficMix.single(DLRM2).is_multi_model
        assert TrafficMix.single(DLRM2).label == "DLRM(2)"
        assert "%" in TrafficMix.of((DLRM2, 0.7), (DLRM4, 0.3)).label

    def test_validation(self):
        with pytest.raises(SimulationError):
            TrafficMix([])
        with pytest.raises(SimulationError):
            TrafficMix.of((DLRM2, 0.0))
        with pytest.raises(SimulationError):
            TrafficMix.of((DLRM2, 0.5), (DLRM2, 0.5))
        with pytest.raises(SimulationError):
            TrafficMix.single(DLRM2).probability_of("DLRM(4)")


class TestWorkload:
    def test_name_derived_from_parts(self):
        workload = Workload(arrivals=PoissonArrivals(10_000.0), trace=ZipfianTrace())
        assert "poisson" in workload.name and "zipf" in workload.name

    def test_bare_rate_coerced_to_poisson(self):
        workload = Workload(arrivals=25_000.0)
        assert isinstance(workload.arrivals, PoissonArrivals)
        assert workload.arrivals.rate_qps == 25_000.0

    def test_requests_deterministic_across_calls(self):
        mix = TrafficMix.of((DLRM2, 0.6), (DLRM4, 0.4))
        workload = Workload(arrivals=PoissonArrivals(5_000.0), mix=mix)
        a = workload.request_list(num_requests=100, seed=4)
        b = workload.request_list(num_requests=100, seed=4)
        assert [(r.arrival_time_s, r.model_name) for r in a] == [
            (r.arrival_time_s, r.model_name) for r in b
        ]

    def test_seed_splitting_isolates_dimensions(self):
        """Adding a mix must not perturb the arrival-time stream."""
        plain = Workload(arrivals=PoissonArrivals(5_000.0))
        mixed = Workload(
            arrivals=PoissonArrivals(5_000.0), mix=TrafficMix.of((DLRM2, 1.0), (DLRM4, 1.0))
        )
        times_plain = [r.arrival_time_s for r in plain.request_list(num_requests=50, seed=8)]
        times_mixed = [r.arrival_time_s for r in mixed.request_list(num_requests=50, seed=8)]
        assert times_plain == pytest.approx(times_mixed, abs=0.0)

    def test_batch_generation_uses_trace_model(self):
        workload = Workload(arrivals=PoissonArrivals(1_000.0), trace=UniformTrace())
        batch = workload.batch(DLRM2, batch_size=4, seed=0)
        assert batch.batch_size == 4
        assert batch.num_tables == len(DLRM2.tables)
        again = workload.batch(DLRM2, batch_size=4, seed=0)
        assert np.array_equal(batch.sparse_traces[0].indices, again.sparse_traces[0].indices)

    def test_batches_are_independent_draws(self):
        workload = Workload(arrivals=PoissonArrivals(1_000.0))
        first, second = list(workload.batches(DLRM2, batch_size=4, count=2, seed=0))
        assert not np.array_equal(
            first.sparse_traces[0].indices, second.sparse_traces[0].indices
        )

    def test_validation(self):
        with pytest.raises(SimulationError):
            Workload(arrivals=PoissonArrivals(1.0), trace="nope")
        with pytest.raises(SimulationError):
            Workload(arrivals=PoissonArrivals(1.0), mix="nope")

    def test_poisson_workload_shorthand(self):
        workload = poisson_workload(1_000.0, name="shorthand")
        assert workload.name == "shorthand"
        assert workload.arrivals.mean_rate_qps == 1_000.0


class TestCapabilityGating:
    def test_multi_model_gate(self):
        mixed = Workload(
            arrivals=PoissonArrivals(1_000.0),
            mix=TrafficMix.of((DLRM2, 0.5), (DLRM4, 0.5)),
        )
        open_backend = BackendCapabilities()
        closed_backend = BackendCapabilities(supports_multi_model=False)
        assert mixed.compatible_with(open_backend)
        assert not mixed.compatible_with(closed_backend)
        assert "multi-model" in mixed.incompatibility(closed_backend)

    def test_skewed_trace_gate(self):
        skewed = Workload(arrivals=PoissonArrivals(1_000.0), trace=ZipfianTrace())
        uniform_only = BackendCapabilities(supports_skewed_traces=False)
        assert not skewed.compatible_with(uniform_only)
        assert skewed.compatible_with(BackendCapabilities())
        plain = Workload(arrivals=PoissonArrivals(1_000.0))
        assert plain.compatible_with(uniform_only)

    def test_capabilities_helpers(self):
        mixed = Workload(
            arrivals=OnOffArrivals(on_rate_qps=1_000.0),
            mix=TrafficMix.of((DLRM2, 0.5), (DLRM4, 0.5)),
        )
        capabilities = BackendCapabilities(supports_multi_model=False)
        assert capabilities.supports_workload(mixed) is False
        assert capabilities.rejection_reason(mixed) is not None

    def test_registry_level_gate(self):
        from repro.backends import register_backend
        from repro.backends.registry import unregister_backend
        from repro.config import HARPV2_SYSTEM
        from repro.errors import ConfigurationError
        from repro.experiment import check_workload_support
        from repro.cpu.cpu_runner import CPUOnlyRunner

        register_backend(
            "uniform-only-test",
            CPUOnlyRunner,
            design_point="UniformOnly",
            capabilities=BackendCapabilities(supports_multi_model=False),
        )
        try:
            mixed = Workload(
                arrivals=PoissonArrivals(1_000.0),
                mix=TrafficMix.of((DLRM2, 0.5), (DLRM4, 0.5)),
            )
            with pytest.raises(ConfigurationError, match="multi-model"):
                check_workload_support("uniform-only-test", mixed)
            plain = Workload(arrivals=PoissonArrivals(1_000.0))
            check_workload_support("uniform-only-test", plain)  # no raise
        finally:
            unregister_backend("uniform-only-test")
