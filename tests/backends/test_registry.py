"""Tests for the backend protocol and string-keyed registry."""

import pytest

from repro.backends import (
    Backend,
    BackendCapabilities,
    available_backends,
    backend_registration,
    canonical_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.config import DLRM1, HARPV2_SYSTEM
from repro.core.centaur import CentaurRunner
from repro.cpu.cpu_runner import CPUOnlyRunner
from repro.errors import ConfigurationError
from repro.gpu.gpu_runner import CPUGPURunner
from repro.results import InferenceResult, LatencyBreakdown


class TestBuiltinRegistrations:
    def test_paper_design_points_are_registered(self):
        assert set(available_backends()) >= {"cpu", "cpu-gpu", "centaur"}

    def test_get_backend_builds_the_legacy_runners(self):
        assert isinstance(get_backend("cpu", HARPV2_SYSTEM), CPUOnlyRunner)
        assert isinstance(get_backend("cpu-gpu", HARPV2_SYSTEM), CPUGPURunner)
        assert isinstance(get_backend("centaur", HARPV2_SYSTEM), CentaurRunner)

    def test_design_point_labels_are_aliases(self):
        assert canonical_backend_name("CPU-only") == "cpu"
        assert canonical_backend_name("CPU-GPU") == "cpu-gpu"
        assert canonical_backend_name("Centaur") == "centaur"

    def test_lookup_is_case_insensitive(self):
        assert canonical_backend_name("CENTAUR") == "centaur"
        assert canonical_backend_name("  cpu ") == "cpu"

    def test_unknown_backend_raises_with_available_names(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            get_backend("tpu", HARPV2_SYSTEM)

    def test_registration_metadata(self):
        registration = backend_registration("centaur")
        assert registration.design_point == "Centaur"
        assert registration.capabilities.offloads_embeddings
        assert registration.description

    def test_runners_satisfy_the_protocol(self):
        for name in ("cpu", "cpu-gpu", "centaur"):
            backend = get_backend(name, HARPV2_SYSTEM)
            assert isinstance(backend, Backend)
            assert backend.name == name
            assert isinstance(backend.capabilities, BackendCapabilities)
            assert backend.capabilities.stages

    def test_energy_matches_run(self):
        backend = get_backend("centaur", HARPV2_SYSTEM)
        assert backend.energy(DLRM1, 16) == backend.run(DLRM1, 16).energy_joules

    def test_breakdown_stages_match_declared_capabilities(self):
        for name in ("cpu", "cpu-gpu", "centaur"):
            backend = get_backend(name, HARPV2_SYSTEM)
            result = backend.run(DLRM1, 4)
            assert tuple(result.breakdown.stages) == backend.capabilities.stages


class FakeBackend:
    """Minimal structural Backend used to exercise custom registration."""

    def __init__(self, system):
        self.system = system

    @property
    def name(self):
        return "fake"

    @property
    def design_point(self):
        return "Fake"

    @property
    def capabilities(self):
        return BackendCapabilities(stages=("ALL",))

    def run(self, model, batch_size):
        return InferenceResult(
            design_point=self.design_point,
            model_name=model.name,
            batch_size=batch_size,
            breakdown=LatencyBreakdown({"ALL": 1e-3}),
            power_watts=1.0,
        )

    def energy(self, model, batch_size):
        return self.run(model, batch_size).energy_joules


class TestCustomRegistration:
    def test_register_resolve_unregister(self):
        register_backend(
            "fake", FakeBackend, design_point="Fake", aliases=("phony",)
        )
        try:
            assert "fake" in available_backends()
            assert canonical_backend_name("phony") == "fake"
            backend = get_backend("fake", HARPV2_SYSTEM)
            assert backend.run(DLRM1, 2).latency_seconds == pytest.approx(1e-3)
        finally:
            unregister_backend("fake")
        assert "fake" not in available_backends()
        with pytest.raises(ConfigurationError):
            canonical_backend_name("phony")

    def test_duplicate_registration_requires_overwrite(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend("cpu", FakeBackend)

    def test_overwrite_replaces_and_restores(self):
        original = backend_registration("cpu")
        register_backend("fake-cpu", FakeBackend, overwrite=True)
        try:
            register_backend(
                "cpu",
                FakeBackend,
                design_point="Fake",
                aliases=original.aliases,
                overwrite=True,
            )
            assert isinstance(get_backend("cpu", HARPV2_SYSTEM), FakeBackend)
        finally:
            unregister_backend("fake-cpu")
            register_backend(
                "cpu",
                original.factory,
                design_point=original.design_point,
                description=original.description,
                aliases=original.aliases,
                capabilities=original.capabilities,
                overwrite=True,
            )
        assert isinstance(get_backend("cpu", HARPV2_SYSTEM), CPUOnlyRunner)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_backend("  ", FakeBackend)

    def test_failed_registration_leaves_no_trace(self):
        # An alias collision must be detected before any state is mutated.
        with pytest.raises(ConfigurationError, match="collides"):
            register_backend("half-done", FakeBackend, aliases=("cpu",))
        assert "half-done" not in available_backends()
        with pytest.raises(ConfigurationError):
            canonical_backend_name("half-done")

    def test_registration_before_first_lookup_cannot_shadow_builtins(self):
        """A custom backend registered before any lookup still collides.

        register_backend loads the built-ins eagerly, so import order cannot
        let a user registration claim "cpu" and break the registry; this
        needs a fresh interpreter because the suite has long since loaded
        the built-ins.
        """
        import subprocess
        import sys

        code = (
            "from repro.backends import register_backend, available_backends\n"
            "from repro.errors import ConfigurationError\n"
            "try:\n"
            "    register_backend('half', lambda s: None, aliases=('cpu',))\n"
            "    raise SystemExit('collision not detected')\n"
            "except ConfigurationError:\n"
            "    pass\n"
            "assert available_backends() == ('centaur', 'cpu', 'cpu-gpu')\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert completed.returncode == 0, completed.stderr or completed.stdout

    def test_alias_cannot_be_stolen_without_overwrite(self):
        register_backend("first", FakeBackend, aliases=("shared-alias",))
        try:
            with pytest.raises(ConfigurationError, match="collides"):
                register_backend("second", FakeBackend, aliases=("shared-alias",))
            # overwrite=True replaces a registration by name; it still may
            # not steal an alias owned by a different backend.
            with pytest.raises(ConfigurationError, match="collides"):
                register_backend(
                    "second", FakeBackend, aliases=("shared-alias",), overwrite=True
                )
            assert canonical_backend_name("shared-alias") == "first"
            assert "second" not in available_backends()
        finally:
            unregister_backend("first")


class TestResolveBackend:
    def test_resolves_names_and_passes_instances_through(self):
        runner = CPUOnlyRunner(HARPV2_SYSTEM)
        assert resolve_backend(runner, HARPV2_SYSTEM) is runner
        assert isinstance(resolve_backend("centaur", HARPV2_SYSTEM), CentaurRunner)

    def test_rejects_non_backends(self):
        with pytest.raises(ConfigurationError):
            resolve_backend(42, HARPV2_SYSTEM)
