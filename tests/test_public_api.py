"""Tests for the top-level public API surface."""

import pytest

import repro


class TestPublicAPI:
    def test_version_and_paper_metadata(self):
        assert repro.__version__
        assert "Centaur" in repro.PAPER_TITLE
        assert repro.PAPER_VENUE == "ISCA 2020"
        assert len(repro.PAPER_AUTHORS) == 4

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} listed in __all__ but missing"

    def test_quickstart_flow(self):
        """The README quickstart must work exactly as written."""
        from repro import DLRM, UniformTraceGenerator, CentaurDevice
        from repro import CPUOnlyRunner, CentaurRunner
        from repro.config import DLRM1, HARPV2_SYSTEM
        from repro.config.models import homogeneous_dlrm

        # A scaled-down model keeps the functional path fast in CI.
        config = homogeneous_dlrm(
            "quickstart", num_tables=4, rows_per_table=1_000, gathers_per_table=5
        )
        model = DLRM.from_config(config, seed=0)
        batch = UniformTraceGenerator(seed=1).model_batch(config, batch_size=4)
        probabilities = CentaurDevice(model, HARPV2_SYSTEM).predict(batch)
        assert probabilities.shape == (4,)

        cpu = CPUOnlyRunner(HARPV2_SYSTEM).run(DLRM1, 16)
        fpga = CentaurRunner(HARPV2_SYSTEM).run(DLRM1, 16)
        assert fpga.speedup_over(cpu) > 1.0

    def test_paper_models_accessible_from_top_level(self):
        assert len(repro.PAPER_MODELS) == 6
        assert repro.dlrm_preset(2).name == "DLRM(2)"

    def test_headline_summary_callable_from_top_level(self):
        summary = repro.headline_summary(
            repro.HARPV2_SYSTEM, models=[repro.DLRM1], batch_sizes=[1, 16]
        )
        assert summary["centaur_speedup_max"] > 1.0
