"""Tests for the CPU-GPU design-point runner."""

import pytest

from repro.config import DLRM1, DLRM4, DLRM6, HARPV2_SYSTEM
from repro.cpu import CPUOnlyRunner
from repro.errors import SimulationError
from repro.gpu import CPUGPURunner


@pytest.fixture(scope="module")
def runner():
    return CPUGPURunner(HARPV2_SYSTEM)


@pytest.fixture(scope="module")
def cpu_runner():
    return CPUOnlyRunner(HARPV2_SYSTEM)


class TestRunnerOutputs:
    def test_breakdown_includes_pcie_stage(self, runner):
        result = runner.run(DLRM1, 16)
        assert set(result.breakdown.stages) == {"EMB", "PCIe", "MLP", "Other"}
        assert result.design_point == "CPU-GPU"

    def test_power_is_cpu_plus_gpu(self, runner):
        result = runner.run(DLRM1, 1)
        assert result.power_watts == pytest.approx(91.0 + 56.0)

    def test_pcie_bytes_scale_with_tables_and_batch(self, runner):
        small = runner.run(DLRM1, 1).extra["pcie_bytes"]
        large = runner.run(DLRM4, 64).extra["pcie_bytes"]
        assert large > small

    def test_rejects_bad_batch(self, runner):
        with pytest.raises(SimulationError):
            runner.run(DLRM1, 0)


class TestPaperShapes:
    def test_embedding_stage_identical_to_cpu_only(self, runner, cpu_runner):
        """The CPU-GPU design gathers embeddings on the CPU exactly like CPU-only."""
        for batch in (1, 32, 128):
            gpu_emb = runner.run(DLRM4, batch).breakdown.get("EMB")
            cpu_emb = cpu_runner.run(DLRM4, batch).breakdown.get("EMB")
            assert gpu_emb == pytest.approx(cpu_emb, rel=1e-9)

    def test_offload_overhead_hurts_small_batches(self, runner, cpu_runner):
        """At batch 1 the PCIe/driver overhead outweighs the GPU's GEMM advantage."""
        for model in (DLRM1, DLRM4, DLRM6):
            cpu = cpu_runner.run(model, 1)
            gpu = runner.run(model, 1)
            assert gpu.latency_seconds > cpu.latency_seconds

    def test_gpu_wins_only_for_mlp_heavy_large_batches(self, runner, cpu_runner):
        """DLRM(6) at large batch is the one regime where the GPU design can win."""
        cpu = cpu_runner.run(DLRM6, 128)
        gpu = runner.run(DLRM6, 128)
        assert gpu.latency_seconds < cpu.latency_seconds

    def test_cpu_only_more_energy_efficient_on_embedding_heavy_models(
        self, runner, cpu_runner
    ):
        """Figure 15(b): CPU-only beats CPU-GPU on energy for embedding-bound models."""
        for batch in (1, 16, 64):
            cpu = cpu_runner.run(DLRM4, batch)
            gpu = runner.run(DLRM4, batch)
            assert cpu.energy_efficiency_over(gpu) > 1.0
