"""Tests for the PCIe transfer model."""

import pytest

from repro.config.system import GPUConfig
from repro.errors import SimulationError
from repro.gpu.pcie import PCIeLink


@pytest.fixture()
def link():
    return PCIeLink(gpu=GPUConfig())


class TestTransfer:
    def test_zero_bytes_is_free(self, link):
        estimate = link.transfer(0)
        assert estimate.latency_s == 0.0
        assert estimate.achieved_bandwidth == 0.0

    def test_small_transfer_dominated_by_fixed_latency(self, link):
        estimate = link.transfer(128)
        assert estimate.fixed_s > estimate.streaming_s
        assert estimate.latency_s == pytest.approx(estimate.fixed_s + estimate.streaming_s)

    def test_large_transfer_approaches_link_bandwidth(self, link):
        estimate = link.transfer(1_000_000_000)
        assert estimate.achieved_bandwidth == pytest.approx(
            link.gpu.pcie_bandwidth, rel=0.01
        )

    def test_achieved_bandwidth_never_exceeds_link(self, link):
        for size in (64, 4096, 1_000_000, 100_000_000):
            assert link.transfer(size).achieved_bandwidth <= link.gpu.pcie_bandwidth

    def test_negative_bytes_rejected(self, link):
        with pytest.raises(SimulationError):
            link.transfer(-1)


class TestRoundTrip:
    def test_round_trip_sums_both_directions(self, link):
        total = link.round_trip(1_000_000, 4_000)
        assert total == pytest.approx(
            link.transfer(1_000_000).latency_s + link.transfer(4_000).latency_s
        )

    def test_round_trip_pays_two_fixed_latencies(self, link):
        total = link.round_trip(64, 64)
        assert total >= 2 * link.gpu.pcie_latency_s
