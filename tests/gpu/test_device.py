"""Tests for the GPU GEMM throughput model."""

import pytest

from repro.config import DLRM1, DLRM6
from repro.config.system import GPUConfig
from repro.errors import SimulationError
from repro.gpu.device import GPUDevice


@pytest.fixture()
def device():
    return GPUDevice(gpu=GPUConfig())


class TestEfficiency:
    def test_grows_with_batch(self, device):
        efficiencies = [device.efficiency(batch) for batch in (1, 16, 64, 128)]
        assert efficiencies == sorted(efficiencies)

    def test_bounded_by_config(self, device):
        assert device.efficiency(1) == pytest.approx(device.gpu.gemm_efficiency_small)
        assert device.efficiency(100_000) < device.gpu.gemm_efficiency_large

    def test_rejects_bad_inputs(self, device):
        with pytest.raises(SimulationError):
            device.efficiency(0)
        with pytest.raises(SimulationError):
            GPUDevice(gpu=GPUConfig(), batch_half_point=0)


class TestEstimates:
    def test_launch_overhead_dominates_tiny_work(self, device):
        estimate = device.estimate(1_000, batch_size=1, num_kernels=8)
        assert estimate.launch_s > estimate.compute_s

    def test_estimate_model_flops(self, device):
        estimate = device.estimate_model(DLRM1, 32)
        assert estimate.flops == DLRM1.total_dense_flops_per_sample() * 32

    def test_gpu_mlp_amortizes_with_batch(self, device):
        per_sample_1 = device.estimate_model(DLRM6, 1).latency_s
        per_sample_128 = device.estimate_model(DLRM6, 128).latency_s / 128
        assert per_sample_128 < per_sample_1

    def test_negative_inputs_rejected(self, device):
        with pytest.raises(SimulationError):
            device.estimate(-1, 1, 1)
        with pytest.raises(SimulationError):
            device.estimate(1, 1, -1)

    def test_sustained_flops_property(self, device):
        estimate = device.estimate(1e9, batch_size=128, num_kernels=0)
        assert estimate.sustained_flops == pytest.approx(
            device.gpu.peak_flops * device.efficiency(128), rel=1e-6
        )
