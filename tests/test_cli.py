"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main, parse_model
from repro.config import DLRM3


class TestParseModel:
    def test_accepts_shorthand_and_paper_names(self):
        assert parse_model("DLRM3") is DLRM3
        assert parse_model("DLRM(3)") is DLRM3
        assert parse_model("3") is DLRM3
        assert parse_model("dlrm3") is DLRM3

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            parse_model("DLRM9")


class TestListBackends:
    def test_lists_the_builtin_backends(self, capsys):
        assert main(["list-backends"]) == 0
        out = capsys.readouterr().out
        for name in ("cpu", "cpu-gpu", "centaur"):
            assert name in out
        assert "CPU-only" in out and "Centaur" in out


class TestRun:
    def test_prints_latency_and_energy_summary(self, capsys):
        assert main(["run", "--backend", "centaur", "--model", "DLRM3", "--batch", "64"]) == 0
        out = capsys.readouterr().out
        assert "Centaur | DLRM(3) | batch 64" in out
        assert "end-to-end latency" in out
        assert "energy / batch" in out
        for stage in ("IDX", "EMB", "DNF", "MLP", "Other"):
            assert stage in out
        assert "vs CPU-only" in out

    def test_baseline_can_be_disabled(self, capsys):
        assert main(
            ["run", "--backend", "cpu", "--model", "1", "--batch", "4", "--baseline", ""]
        ) == 0
        out = capsys.readouterr().out
        assert "CPU-only | DLRM(1) | batch 4" in out
        assert "vs " not in out

    def test_unknown_backend_fails_cleanly(self, capsys):
        assert main(["run", "--backend", "tpu", "--model", "DLRM1"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_unknown_model_fails_cleanly(self, capsys):
        assert main(["run", "--backend", "cpu", "--model", "DLRM9"]) == 2
        assert "error" in capsys.readouterr().err


class TestSweep:
    def test_prints_a_grid(self, capsys):
        assert main(
            [
                "sweep",
                "--backends", "cpu", "centaur",
                "--models", "DLRM1",
                "--batches", "1", "16",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Experiment grid" in out
        assert out.count("DLRM(1)") == 4  # 2 backends x 2 batches

    def test_writes_csv(self, tmp_path, capsys):
        target = tmp_path / "grid.csv"
        assert main(
            [
                "sweep",
                "--backends", "centaur",
                "--models", "DLRM1",
                "--batches", "4",
                "--csv", str(target),
            ]
        ) == 0
        assert "wrote 1 design points" in capsys.readouterr().out
        lines = target.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == 2
        assert lines[1].startswith("centaur,Centaur,DLRM(1),4")


class TestServe:
    def test_single_device_report(self, capsys):
        assert main(
            [
                "serve",
                "--backend", "cpu",
                "--model", "DLRM2",
                "--workload", "poisson:20000",
                "--requests", "2000",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "workload: poisson @ 20,000 QPS" in out
        assert "CPU-only x1" in out
        assert "p99 (ms)" in out

    def test_requires_exactly_one_bound(self, capsys):
        assert main(
            [
                "serve",
                "--backend", "cpu",
                "--model", "DLRM2",
            ]
        ) == 2
        assert "exactly one of --duration / --requests" in capsys.readouterr().err

    def test_autoscaled_serving_prints_timeline(self, capsys):
        assert main(
            [
                "serve",
                "--backend", "cpu",
                "--model", "DLRM2",
                "--workload", "diurnal:trough=4000,peak=40000,period=0.2",
                "--duration", "0.2",
                "--autoscale", "util:target=0.7,cooldown=0.02",
                "--max-replicas", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "CPU-only autoscaled (target-utilization)" in out
        assert "Autoscale timeline" in out
        assert "replica-seconds=" in out
        assert "completions" in out

    def test_autoscale_honours_initial_replicas(self, capsys):
        # --replicas seeds the elastic fleet at time zero instead of being
        # silently ignored.
        assert main(
            [
                "serve",
                "--backend", "cpu",
                "--model", "DLRM2",
                "--workload", "poisson:20000",
                "--requests", "1000",
                "--autoscale", "schedule:0=3",
                "--replicas", "3",
                "--max-replicas", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Autoscale timeline" in out

    def test_sharded_serving_report(self, capsys):
        assert main(
            [
                "serve",
                "--backend", "centaur",
                "--model", "DLRM2",
                "--workload", "poisson:20000",
                "--trace", "zipf:1.05",
                "--requests", "1500",
                "--shards", "4",
                "--shard-strategy", "row",
                "--cache", "lru:rows=4096",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Sharded serving of DLRM(2)" in out
        assert "hit rate %" in out
        assert "x-shard MB" in out
        assert "Centaur x4 row shards, cache lru:rows=4096" in out

    def test_shards_spec_carries_the_strategy(self, capsys):
        assert main(
            [
                "serve",
                "--backend", "centaur",
                "--model", "DLRM2",
                "--requests", "800",
                "--shards", "2:greedy",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Centaur x2 greedy shards, cache off" in out

    def test_bad_shards_spec_fails_cleanly(self, capsys):
        assert main(
            [
                "serve",
                "--backend", "centaur",
                "--model", "DLRM2",
                "--requests", "800",
                "--shards", "2:warp",
            ]
        ) == 2
        assert "unknown sharding strategy" in capsys.readouterr().err

    def test_cache_alone_enables_the_sharded_path(self, capsys):
        assert main(
            [
                "serve",
                "--backend", "cpu",
                "--model", "DLRM2",
                "--trace", "hotcold:frac=0.05,weight=0.9",
                "--requests", "1000",
                "--cache", "lfu:rows=2048",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Sharded serving" in out

    def test_shards_conflict_with_autoscale(self, capsys):
        assert main(
            [
                "serve",
                "--backend", "cpu",
                "--model", "DLRM2",
                "--requests", "500",
                "--shards", "2",
                "--autoscale", "schedule:0=2",
            ]
        ) == 2
        assert "--shards/--cache" in capsys.readouterr().err

    def test_cache_off_spelling_stays_on_the_plain_path(self, capsys):
        # 'off' is a documented no-cache spelling: it must neither reroute
        # a plain serve through the sharded path nor conflict with
        # --autoscale.
        assert main(
            [
                "serve",
                "--backend", "cpu",
                "--model", "DLRM2",
                "--requests", "800",
                "--cache", "off",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "CPU-only x1" in out
        assert "Sharded serving" not in out
        assert main(
            [
                "serve",
                "--backend", "cpu",
                "--model", "DLRM2",
                "--requests", "800",
                "--cache", "off",
                "--autoscale", "schedule:0=2",
                "--max-replicas", "2",
            ]
        ) == 0

    def test_bad_cache_spec_fails_cleanly(self, capsys):
        assert main(
            [
                "serve",
                "--backend", "cpu",
                "--model", "DLRM2",
                "--requests", "500",
                "--cache", "mru:rows=4",
            ]
        ) == 2

    def test_updates_scenario_prints_the_freshness_report(self, capsys):
        assert main(
            [
                "serve",
                "--backend", "centaur",
                "--model", "DLRM2",
                "--workload", "poisson:20000",
                "--trace", "zipf:1.05",
                "--requests", "800",
                "--shards", "2",
                "--cache", "lru:rows=4096",
                "--updates", "model-push-storm",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "update scenario 'model-push-storm'" in out
        assert "Cache freshness of DLRM(2)" in out
        assert "invalidate" in out
        assert "invalidated" in out

    def test_updates_spec_with_shared_cache_tier(self, capsys):
        assert main(
            [
                "serve",
                "--backend", "centaur",
                "--model", "DLRM2",
                "--trace", "zipf:1.05",
                "--requests", "600",
                "--cache", "lru:rows=2048",
                "--shared-cache", "lru:rows=8192",
                "--updates", "write-through:rate=8000,rows=16",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Cache freshness" in out
        assert "write-through" in out

    def test_updates_alone_enable_the_sharded_path(self, capsys):
        # --updates without --shards/--cache still routes through the
        # sharded group (cache off: pushes are counted, nothing to drop).
        assert main(
            [
                "serve",
                "--backend", "cpu",
                "--model", "DLRM2",
                "--trace", "zipf:1.05",
                "--requests", "400",
                "--updates", "invalidate:rate=8000,rows=16",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Sharded serving" in out
        assert "Cache freshness" in out

    def test_bad_update_spec_fails_cleanly(self, capsys):
        assert main(
            [
                "serve",
                "--backend", "cpu",
                "--model", "DLRM2",
                "--requests", "100",
                "--updates", "drop:rate=5",
            ]
        ) == 2
        assert "unknown update mode" in capsys.readouterr().err

    def test_updates_conflict_with_autoscale(self, capsys):
        assert main(
            [
                "serve",
                "--backend", "cpu",
                "--model", "DLRM2",
                "--requests", "100",
                "--updates", "invalidate:rate=100",
                "--autoscale", "schedule:0=2",
            ]
        ) == 2
        assert "--shards/--cache" in capsys.readouterr().err

    def test_autoscale_rejects_bad_spec(self, capsys):
        assert main(
            [
                "serve",
                "--backend", "cpu",
                "--model", "DLRM2",
                "--requests", "500",
                "--autoscale", "warp-speed",
            ]
        ) == 2
        assert "unknown autoscaler kind" in capsys.readouterr().err


class TestPlan:
    def test_plans_the_minimal_fleet(self, capsys):
        assert main(
            [
                "plan",
                "--backends", "cpu", "centaur",
                "--model", "DLRM2",
                "--workload", "poisson:60000",
                "--requests", "4000",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Capacity plan" in out
        assert "recommended:" in out
        assert "cpu" in out and "centaur" in out

    def test_infeasible_plan_exits_nonzero(self, capsys):
        assert main(
            [
                "plan",
                "--backends", "cpu",
                "--model", "DLRM2",
                "--workload", "poisson:500000",
                "--requests", "2000",
                "--sla", "0.0001",
                "--max-replicas", "2",
            ]
        ) == 1
        out = capsys.readouterr().out
        assert "infeasible" in out
        assert "recommended: none" in out

    def test_requires_exactly_one_bound(self, capsys):
        assert main(["plan", "--model", "DLRM2"]) == 2
        assert "exactly one of --duration / --requests" in capsys.readouterr().err
