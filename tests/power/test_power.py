"""Tests for the power and energy models (Table IV / Figure 15b)."""

import pytest

from repro.config import DLRM1, HARPV2_SYSTEM
from repro.config.system import PowerConfig
from repro.core import CentaurRunner
from repro.cpu import CPUOnlyRunner
from repro.errors import ConfigurationError, SimulationError
from repro.power import PowerModel, energy_efficiency_ratio, energy_of
from repro.power.models import DESIGN_POINTS


@pytest.fixture(scope="module")
def power_model():
    return PowerModel(PowerConfig())


class TestPowerModel:
    def test_table4_values(self, power_model):
        table = power_model.table4()
        assert table["CPU-only"] == 80.0
        assert table["CPU-GPU"] == 147.0
        assert table["Centaur"] == 74.0

    def test_centaur_draws_least_power(self, power_model):
        values = power_model.table4()
        assert values["Centaur"] < values["CPU-only"] < values["CPU-GPU"]

    def test_unknown_design_point_rejected(self, power_model):
        with pytest.raises(ConfigurationError):
            power_model.power_watts("TPU")
        with pytest.raises(ConfigurationError):
            power_model.breakdown("TPU")

    def test_breakdowns_sum_to_totals(self, power_model):
        for design_point in DESIGN_POINTS:
            breakdown = power_model.breakdown(design_point)
            assert sum(breakdown.components.values()) == pytest.approx(
                breakdown.total_watts
            )

    def test_centaur_cpu_cores_mostly_idle(self, power_model):
        """The FPGA does the work, so the core share shrinks versus CPU-only."""
        cpu_only = power_model.breakdown("CPU-only").components["cpu_cores"]
        centaur = power_model.breakdown("Centaur").components["cpu_cores"]
        assert centaur < cpu_only

    def test_cpu_gpu_breakdown_includes_gpu(self, power_model):
        assert power_model.breakdown("CPU-GPU").components["gpu"] == 56.0


class TestEnergyAccounting:
    def test_energy_of_result(self):
        result = CPUOnlyRunner(HARPV2_SYSTEM).run(DLRM1, 16)
        report = energy_of(result)
        assert report.energy_joules == pytest.approx(80.0 * result.latency_seconds)
        assert report.energy_per_sample_joules == pytest.approx(report.energy_joules / 16)
        assert report.design_point == "CPU-only"

    def test_energy_requires_power(self):
        result = CPUOnlyRunner(HARPV2_SYSTEM).run(DLRM1, 16)
        result.power_watts = 0.0
        with pytest.raises(SimulationError):
            energy_of(result)

    def test_efficiency_ratio_matches_result_method(self):
        cpu = CPUOnlyRunner(HARPV2_SYSTEM).run(DLRM1, 16)
        centaur = CentaurRunner(HARPV2_SYSTEM).run(DLRM1, 16)
        assert energy_efficiency_ratio(centaur, cpu) == pytest.approx(
            centaur.energy_efficiency_over(cpu)
        )

    def test_efficiency_combines_speedup_and_power_ratio(self):
        cpu = CPUOnlyRunner(HARPV2_SYSTEM).run(DLRM1, 16)
        centaur = CentaurRunner(HARPV2_SYSTEM).run(DLRM1, 16)
        expected = centaur.speedup_over(cpu) * (80.0 / 74.0)
        assert centaur.energy_efficiency_over(cpu) == pytest.approx(expected)
