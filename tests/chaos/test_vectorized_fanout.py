"""The vectorized shard fan-out is elementwise-identical to the scalar path.

``ShardedReplicaServer._priced_sharded`` replaced its per-shard boolean
masking loop with one ``bincount`` + stable ``argsort`` + ``cumsum``
slicing pass.  These tests pin the refactor to the scalar reference: for
arbitrary owner assignments the vectorized grouping must hand every shard
*exactly* the rows the masking loop produced, in the same order (caches
are reference-stream sensitive), and the failover remap must equal its
scalar definition element by element.
"""

import numpy as np
import pytest

from repro.serving.sharded import ShardedReplicaServer


def scalar_group(owners, rows, num_shards):
    """The pre-vectorization reference: boolean mask per shard."""
    return {
        shard: rows[owners == shard]
        for shard in range(num_shards)
        if np.count_nonzero(owners == shard)
    }


def vectorized_group(owners, rows, num_shards):
    """The production grouping: bincount + stable argsort + cumsum slices."""
    counts = np.bincount(owners, minlength=num_shards)
    order = np.argsort(owners, kind="stable")
    sorted_rows = rows[order]
    ends = np.cumsum(counts)
    return {
        int(shard): sorted_rows[ends[shard] - counts[shard] : ends[shard]]
        for shard in np.nonzero(counts)[0]
    }


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("num_shards", [2, 3, 8])
def test_grouping_matches_the_scalar_reference_elementwise(seed, num_shards):
    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, 4_000))
    owners = rng.integers(0, num_shards, size=size)
    rows = rng.integers(0, 1_000_000, size=size)
    scalar = scalar_group(owners, rows, num_shards)
    vector = vectorized_group(owners, rows, num_shards)
    assert scalar.keys() == vector.keys()
    for shard, expected in scalar.items():
        np.testing.assert_array_equal(vector[shard], expected)


def test_counts_match_the_scalar_tally():
    rng = np.random.default_rng(3)
    owners = rng.integers(0, 5, size=2_500)
    counts = np.bincount(owners, minlength=5)
    for shard in range(5):
        assert counts[shard] == int(np.count_nonzero(owners == shard))
    # contributed_tables increments exactly where the scalar loop found work
    np.testing.assert_array_equal(
        counts > 0, [bool(np.count_nonzero(owners == s)) for s in range(5)]
    )


def test_empty_shard_gets_no_slice():
    owners = np.array([1, 1, 3, 3, 3])
    rows = np.array([10, 20, 30, 40, 50])
    vector = vectorized_group(owners, rows, 4)
    assert set(vector) == {1, 3}
    np.testing.assert_array_equal(vector[1], [10, 20])
    np.testing.assert_array_equal(vector[3], [30, 40, 50])


class _FakePlan:
    def __init__(self, num_shards):
        self.num_shards = num_shards


def make_server(num_shards, lost):
    """A bare server exposing only the remap state (no sim machinery)."""
    server = object.__new__(ShardedReplicaServer)
    server.plan = _FakePlan(num_shards)
    server._lost_shards = dict(lost)
    server.degraded_lookups = 0
    server.promoted_lookups = 0
    return server


class TestFailoverRemap:
    def test_promote_moves_the_whole_slice_to_the_next_survivor(self):
        server = make_server(4, {1: "promote"})
        owners = np.array([0, 1, 2, 1, 3, 1])
        rows = np.arange(6)
        remapped = server._remap_owners(owners, rows)
        np.testing.assert_array_equal(remapped, [0, 2, 2, 2, 3, 2])
        assert server.promoted_lookups == 3
        assert server.degraded_lookups == 0

    def test_promote_wraps_past_the_last_shard(self):
        server = make_server(3, {2: "promote"})
        owners = np.array([2, 2, 0])
        remapped = server._remap_owners(owners, np.arange(3))
        np.testing.assert_array_equal(remapped, [0, 0, 0])

    def test_rehash_matches_the_scalar_definition(self):
        server = make_server(4, {2: "rehash"})
        rng = np.random.default_rng(7)
        owners = rng.integers(0, 4, size=1_000)
        rows = rng.integers(0, 100_000, size=1_000)
        remapped = server._remap_owners(owners, rows)
        survivors = np.array([0, 1, 3])
        for i in range(1_000):
            if owners[i] == 2:
                assert remapped[i] == survivors[rows[i] % 3]
            else:
                assert remapped[i] == owners[i]
        assert server.degraded_lookups == int(np.count_nonzero(owners == 2))

    def test_remap_leaves_the_input_untouched(self):
        server = make_server(4, {0: "promote"})
        owners = np.array([0, 1, 0])
        original = owners.copy()
        server._remap_owners(owners, np.arange(3))
        np.testing.assert_array_equal(owners, original)

    def test_two_lost_shards_compose(self):
        server = make_server(4, {0: "promote", 2: "rehash"})
        owners = np.array([0, 1, 2, 3])
        rows = np.array([5, 6, 7, 8])
        remapped = server._remap_owners(owners, rows)
        survivors = np.array([1, 3])
        assert remapped[0] == 1  # next survivor after 0
        assert remapped[1] == 1
        assert remapped[2] == survivors[7 % 2]
        assert remapped[3] == 3
