"""Fault-spec construction, text parsing and deterministic materialization."""

import pytest

from repro.chaos import (
    Brownout,
    FaultSchedule,
    LinkDegradation,
    PoissonFaults,
    ReplicaCrash,
    ShardLoss,
    parse_fault_schedule,
)
from repro.errors import ConfigurationError


class TestSpecValidation:
    def test_negative_fault_time_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicaCrash(at_s=-0.1)

    def test_crash_rejects_bad_inflight_mode(self):
        with pytest.raises(ConfigurationError):
            ReplicaCrash(at_s=0.1, on_inflight="retry")

    def test_crash_rejects_negative_indices_and_delays(self):
        with pytest.raises(ConfigurationError):
            ReplicaCrash(at_s=0.1, replica=-1)
        with pytest.raises(ConfigurationError):
            ReplicaCrash(at_s=0.1, restart_after_s=-1.0)
        with pytest.raises(ConfigurationError):
            ReplicaCrash(at_s=0.1, warmup_s=-1.0)

    def test_shard_loss_rejects_bad_failover(self):
        with pytest.raises(ConfigurationError):
            ShardLoss(at_s=0.1, shard=0, failover="replicate")

    def test_link_degradation_must_degrade_something(self):
        with pytest.raises(ConfigurationError):
            LinkDegradation(at_s=0.1, duration_s=0.01)
        with pytest.raises(ConfigurationError):
            LinkDegradation(at_s=0.1, duration_s=0.01, bandwidth_factor=1.5)
        with pytest.raises(ConfigurationError):
            LinkDegradation(at_s=0.1, duration_s=0.0, bandwidth_factor=0.5)

    def test_link_slowdown_compounds_latency_and_bandwidth(self):
        fault = LinkDegradation(
            at_s=0.1, duration_s=0.01, bandwidth_factor=0.5, latency_factor=2.0
        )
        assert fault.slowdown == pytest.approx(4.0)

    def test_brownout_needs_inflation_and_a_window(self):
        with pytest.raises(ConfigurationError):
            Brownout(at_s=0.1, duration_s=0.01, latency_factor=1.0)
        with pytest.raises(ConfigurationError):
            Brownout(at_s=0.1, duration_s=0.0, latency_factor=2.0)

    def test_poisson_validation(self):
        template = ReplicaCrash(at_s=0.0)
        with pytest.raises(ConfigurationError):
            PoissonFaults(template="crash", rate_hz=1.0, end_s=1.0)
        with pytest.raises(ConfigurationError):
            PoissonFaults(template=template, rate_hz=0.0, end_s=1.0)
        with pytest.raises(ConfigurationError):
            PoissonFaults(template=template, rate_hz=1.0, end_s=0.5, start_s=0.5)

    def test_schedule_rejects_non_fault_entries(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(["crash"])
        with pytest.raises(ConfigurationError):
            FaultSchedule([], sla_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultSchedule([], window_s=0.0)


class TestScheduleMaterialization:
    def test_empty_schedule_is_the_identity(self):
        schedule = FaultSchedule([])
        assert schedule.empty
        assert len(schedule) == 0
        assert schedule.materialize() == ()
        assert schedule.describe() == "off"

    def test_materialize_sorts_by_time(self):
        schedule = FaultSchedule(
            [
                Brownout(at_s=0.3, duration_s=0.01),
                ReplicaCrash(at_s=0.1),
                ReplicaCrash(at_s=0.2),
            ]
        )
        assert [event.at_s for event in schedule.materialize()] == [0.1, 0.2, 0.3]

    def test_poisson_is_seed_deterministic(self):
        def times(seed):
            generator = PoissonFaults(
                template=ReplicaCrash(at_s=0.0, on_inflight="shed"),
                rate_hz=200.0,
                end_s=0.2,
                seed=seed,
            )
            return [event.at_s for event in generator.materialize()]

        assert times(3) == times(3)
        assert times(3) != times(4)
        for clock in times(3):
            assert 0.0 < clock < 0.2

    def test_poisson_stamps_the_template(self):
        generator = PoissonFaults(
            template=ReplicaCrash(at_s=0.0, restart_after_s=0.01, on_inflight="shed"),
            rate_hz=500.0,
            end_s=0.1,
            seed=0,
        )
        events = generator.materialize()
        assert events, "a 500 Hz process over 100 ms should fire"
        for event in events:
            assert isinstance(event, ReplicaCrash)
            assert event.restart_after_s == 0.01
            assert event.on_inflight == "shed"

    def test_schedule_materializes_poisson_inline_and_sorted(self):
        schedule = FaultSchedule(
            [
                ReplicaCrash(at_s=0.15),
                PoissonFaults(
                    template=Brownout(at_s=0.0, duration_s=0.01),
                    rate_hz=100.0,
                    end_s=0.3,
                    seed=1,
                ),
            ]
        )
        events = schedule.materialize()
        assert [event.at_s for event in events] == sorted(
            event.at_s for event in events
        )
        assert any(isinstance(event, ReplicaCrash) for event in events)
        assert any(isinstance(event, Brownout) for event in events)


class TestSpecParsing:
    @pytest.mark.parametrize("text", [None, "", "off", "none", "OFF", "  "])
    def test_disabled_spellings_mean_no_schedule(self, text):
        assert parse_fault_schedule(text) is None

    def test_parse_full_grammar(self):
        schedule = parse_fault_schedule(
            "crash:at=0.05,replica=1,restart=0.02,warmup=0.01,inflight=shed;"
            "shard-loss:at=0.06,shard=2,restore=0.03,failover=rehash;"
            "link:at=0.07,for=0.02,bw=0.5,lat=2;"
            "brownout:at=0.08,for=0.02,replica=0,slow=3;"
            "report:sla=0.004,window=0.002"
        )
        crash, shard_loss, link, brownout = schedule.faults
        assert crash == ReplicaCrash(
            at_s=0.05, replica=1, restart_after_s=0.02, warmup_s=0.01, on_inflight="shed"
        )
        assert shard_loss == ShardLoss(
            at_s=0.06, shard=2, restore_after_s=0.03, failover="rehash"
        )
        assert link == LinkDegradation(
            at_s=0.07, duration_s=0.02, bandwidth_factor=0.5, latency_factor=2.0
        )
        assert brownout == Brownout(
            at_s=0.08, duration_s=0.02, replica=0, latency_factor=3.0
        )
        assert schedule.sla_s == pytest.approx(0.004)
        assert schedule.window_s == pytest.approx(0.002)

    def test_parse_poisson_segment(self):
        schedule = parse_fault_schedule(
            "poisson:kind=crash,rate=50,until=0.2,start=0.05,seed=7,restart=0.01"
        )
        (generator,) = schedule.faults
        assert isinstance(generator, PoissonFaults)
        assert generator.rate_hz == 50.0
        assert generator.end_s == 0.2
        assert generator.start_s == 0.05
        assert generator.seed == 7
        assert isinstance(generator.template, ReplicaCrash)
        assert generator.template.restart_after_s == 0.01

    def test_describe_round_trips_through_the_parser(self):
        original = parse_fault_schedule(
            "crash:at=0.05,replica=1,restart=0.02;"
            "shard-loss:at=0.06,restore=0.03,failover=rehash;"
            "link:at=0.07,for=0.02,bw=0.25;"
            "brownout:at=0.08,for=0.02,slow=2.5"
        )
        reparsed = parse_fault_schedule(original.describe())
        assert reparsed.faults == original.faults

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:at=0.1",
            "crash:restart=0.1",  # missing at=
            "crash:at=0.1,turbo=2",  # unknown key
            "crash:at=nope",
            "crash:0.1",  # bare value, not key=value
            "link:at=0.1",  # missing for=
            "brownout:at=0.1",  # missing for=
            "poisson:rate=10,until=0.5",  # missing kind=
            "poisson:kind=crash,until=0.5",  # missing rate=
            "report:sla=0.01,shape=tail",  # unknown report key
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ConfigurationError):
            parse_fault_schedule(bad)

    def test_only_report_segment_means_no_schedule(self):
        assert parse_fault_schedule("report:sla=0.01") is None
