"""Fault injection on replica fleets: crashes, restarts, brownouts, shedding."""

import pytest

from repro.backends import get_backend
from repro.chaos import (
    Brownout,
    FaultSchedule,
    LinkDegradation,
    PoissonFaults,
    ReplicaCrash,
    ShardLoss,
)
from repro.config import DLRM1, HARPV2_SYSTEM
from repro.errors import ConfigurationError
from repro.serving import AutoscalingCluster, QueueDepthPolicy, TimeoutBatching
from repro.workloads import PoissonArrivals, Workload

BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=32)
WORKLOAD = Workload(arrivals=PoissonArrivals(rate_qps=20_000.0), name="steady")
NUM_REQUESTS = 1_000
SEED = 4


def serve(faults, *, replicas=3, policy=None, max_replicas=None, **kwargs):
    cluster = AutoscalingCluster(
        get_backend("cpu", HARPV2_SYSTEM),
        DLRM1,
        policy=policy,
        min_replicas=1,
        max_replicas=max_replicas if max_replicas is not None else replicas,
        initial_replicas=replicas,
        control_interval_s=5e-3,
        warmup_s=2e-3,
        batching=BATCHING,
        **kwargs,
    )
    report = cluster.serve_workload(
        WORKLOAD, num_requests=NUM_REQUESTS, seed=SEED, faults=faults
    )
    return cluster, report


class TestCrashIncidents:
    def test_crash_with_restart_clears_and_redispatches(self):
        cluster, report = serve(
            FaultSchedule([ReplicaCrash(at_s=0.01, restart_after_s=0.005)], sla_s=5e-3)
        )
        incidents = report.incidents
        assert incidents is not None
        (incident,) = incidents.incidents
        assert incident.kind == "crash"
        assert incident.target == "replica:2"  # highest active index by default
        assert incident.cleared
        assert incident.end_s > incident.start_s
        assert incident.shed_requests == 0
        assert report.autoscale.crashes == 1
        assert report.autoscale.restarts == 1
        # Conservation: nothing lost on a redispatching crash.
        outcome = cluster.last_outcome
        assert outcome.scheduled == outcome.completed == NUM_REQUESTS
        assert outcome.shed == 0
        # Recovery is priced: the restarted slot billed replica-seconds.
        assert incident.recovery_replica_seconds > 0.0
        assert incident.recovery_energy_joules >= 0.0

    def test_crash_shedding_inflight_accounts_for_the_loss(self):
        cluster, report = serve(
            FaultSchedule(
                [ReplicaCrash(at_s=0.01, on_inflight="shed", restart_after_s=0.005)]
            )
        )
        outcome = cluster.last_outcome
        (incident,) = report.incidents.incidents
        assert outcome.scheduled == NUM_REQUESTS
        assert outcome.completed + outcome.shed == NUM_REQUESTS
        assert outcome.shed == incident.shed_requests
        assert incidents_total(report) == outcome.shed

    def test_unrecovered_crash_is_reported_uncleared(self):
        _, report = serve(FaultSchedule([ReplicaCrash(at_s=0.01, replica=2)]))
        (incident,) = report.incidents.incidents
        assert not incident.cleared
        assert incident.end_s == pytest.approx(report.incidents.horizon_s)
        assert report.autoscale.crashes == 1
        assert report.autoscale.restarts == 0

    def test_total_outage_sheds_arrivals_until_restart(self):
        cluster, report = serve(
            FaultSchedule([ReplicaCrash(at_s=0.01, restart_after_s=0.01)]),
            replicas=1,
        )
        outcome = cluster.last_outcome
        (incident,) = report.incidents.incidents
        assert outcome.shed > 0, "arrivals during a zero-replica outage must shed"
        assert outcome.completed + outcome.shed == NUM_REQUESTS
        assert incident.shed_requests == outcome.shed
        assert incident.cleared

    def test_permanent_total_outage_still_builds_a_report(self):
        # Every replica dies before anything completes and nothing ever
        # restarts: the whole stream sheds and the report must still
        # build (an all-shed run is a measured outcome, not a crash).
        cluster, report = serve(
            FaultSchedule(
                [
                    ReplicaCrash(at_s=0.001),
                    ReplicaCrash(at_s=0.001),
                ]
            ),
            replicas=2,
        )
        outcome = cluster.last_outcome
        assert outcome.completed == 0
        assert outcome.shed == NUM_REQUESTS
        assert report.completed_requests == 0
        assert len(report.latency.samples_s) == 0
        assert len(report.per_replica) == 0
        assert report.incidents.total_shed == NUM_REQUESTS

    def test_crashing_a_stopped_slot_is_a_noop_incident(self):
        _, report = serve(
            FaultSchedule([ReplicaCrash(at_s=0.01, replica=3)]),
            replicas=2,
            max_replicas=4,
        )
        (incident,) = report.incidents.incidents
        assert "no-op" in incident.note
        assert report.autoscale.crashes == 0

    def test_two_simultaneous_crashes_take_distinct_replicas(self):
        _, report = serve(
            FaultSchedule(
                [
                    ReplicaCrash(at_s=0.01, restart_after_s=0.02),
                    ReplicaCrash(at_s=0.01, restart_after_s=0.02),
                ]
            )
        )
        targets = {incident.target for incident in report.incidents.incidents}
        assert targets == {"replica:2", "replica:1"}
        assert report.autoscale.crashes == 2
        assert report.autoscale.restarts == 2


class TestBrownoutIncidents:
    def test_brownout_inflates_latency_inside_the_window(self):
        slow = FaultSchedule(
            [Brownout(at_s=0.0, duration_s=10.0, replica=0, latency_factor=8.0)]
        )
        _, degraded = serve(slow, replicas=1)
        _, healthy = serve(None, replicas=1)
        assert degraded.latency.percentiles((99.0,))[0] > (
            healthy.latency.percentiles((99.0,))[0]
        )
        (incident,) = degraded.incidents.incidents
        assert incident.kind == "brownout"
        assert incident.sla_during < 1.0

    def test_brownout_window_clears(self):
        _, report = serve(
            FaultSchedule(
                [Brownout(at_s=0.01, duration_s=0.01, replica=0, latency_factor=4.0)]
            )
        )
        (incident,) = report.incidents.incidents
        assert incident.cleared
        assert incident.end_s == pytest.approx(0.02)


class TestPoissonDrivenFaults:
    def test_rate_driven_crashes_stay_deterministic_and_conservative(self):
        def run():
            schedule = FaultSchedule(
                [
                    PoissonFaults(
                        template=ReplicaCrash(
                            at_s=0.0, restart_after_s=0.004, on_inflight="shed"
                        ),
                        rate_hz=60.0,
                        end_s=0.04,
                        seed=9,
                    )
                ]
            )
            cluster, report = serve(schedule)
            return cluster.last_outcome, report

        first_outcome, first_report = run()
        second_outcome, second_report = run()
        assert first_outcome == second_outcome
        assert first_outcome.completed + first_outcome.shed == NUM_REQUESTS
        assert len(first_report.incidents.incidents) == len(
            second_report.incidents.incidents
        )


class TestAutoscalerComposition:
    def test_crash_composes_with_an_active_policy(self):
        policy = QueueDepthPolicy(high_watermark=16.0, low_watermark=2.0, cooldown_s=0.01)
        cluster, report = serve(
            FaultSchedule([ReplicaCrash(at_s=0.015, restart_after_s=0.01)]),
            replicas=2,
            max_replicas=4,
            policy=policy,
        )
        outcome = cluster.last_outcome
        assert outcome.completed + outcome.shed == NUM_REQUESTS
        assert report.autoscale.crashes == 1
        (incident,) = report.incidents.incidents
        # Either the chaos restart won the slot back, or the autoscaler
        # reclaimed it first — both are legal, and the report says which.
        assert incident.cleared or "reclaimed" in incident.note


class TestFleetValidation:
    @pytest.mark.parametrize(
        "spec",
        [
            ShardLoss(at_s=0.01, shard=0),
            LinkDegradation(at_s=0.01, duration_s=0.01, bandwidth_factor=0.5),
        ],
    )
    def test_sharded_only_faults_rejected_on_fleets(self, spec):
        with pytest.raises(ConfigurationError):
            serve(FaultSchedule([spec]))

    def test_crash_target_outside_the_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            serve(FaultSchedule([ReplicaCrash(at_s=0.01, replica=7)]))


def incidents_total(report):
    return report.incidents.total_shed
