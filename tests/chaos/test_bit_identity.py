"""The identity contracts of the chaos subsystem.

Two guarantees pin the subsystem's cost to zero when unused and its output
to a pure function of its inputs:

* **Empty schedule is the identity** — serving with ``faults=None`` or an
  empty :class:`FaultSchedule` is *bit-identical* to the pre-chaos code
  path on every serving flavour (elastic fleet, static fleet, sharded
  group).  Reports hold numpy arrays, so the comparison uses exhaustive
  fingerprints, never dataclass ``==``.
* **Equal seeds, byte-identical incident reports** — two runs built from
  fresh objects with the same schedule and stream seed must pickle to the
  same bytes.
"""

import hashlib
import pickle

from repro.backends import get_backend
from repro.chaos import FaultSchedule, ReplicaCrash, ShardLoss
from repro.config import DLRM1, DLRM2, HARPV2_SYSTEM
from repro.serving import (
    AutoscalingCluster,
    ClusterSimulator,
    QueueDepthPolicy,
    TimeoutBatching,
)
from repro.serving.sharded import ShardedReplicaGroup
from repro.sharding import parse_cache_spec
from repro.workloads import OnOffArrivals, PoissonArrivals, Workload

NUM_REQUESTS = 800
SEED = 13


def make_workload():
    return Workload(
        arrivals=OnOffArrivals(
            on_rate_qps=40_000.0, off_rate_qps=8_000.0, mean_on_s=0.01, mean_off_s=0.01
        ),
        name="bursty",
    )


def fingerprint(report, outcome=None):
    """Everything observable about a serving run, hashable-compact."""
    autoscale = report.autoscale
    return (
        (outcome.scheduled, outcome.completed, outcome.shed) if outcome else None,
        report.completed_requests,
        report.num_replicas,
        tuple(
            (
                replica.completed_requests,
                replica.device_busy_s,
                replica.energy_joules,
                replica.executed_batches,
            )
            for replica in report.per_replica
        ),
        report.latency.samples_s.tobytes(),
        report.total_energy_joules,
        report.replica_seconds,
        autoscale.timeline if autoscale is not None else None,
        report.sharding,
        report.incidents,
    )


class TestEmptyScheduleIsTheIdentity:
    def test_elastic_fleet_with_empty_schedule_matches_no_faults(self):
        def run(faults):
            cluster = AutoscalingCluster(
                get_backend("cpu", HARPV2_SYSTEM),
                DLRM1,
                policy=QueueDepthPolicy(
                    high_watermark=24.0, low_watermark=2.0, cooldown_s=0.01
                ),
                min_replicas=1,
                max_replicas=4,
                control_interval_s=5e-3,
                warmup_s=2e-3,
                batching=TimeoutBatching(window_s=1e-3, max_batch_size=64),
            )
            report = cluster.serve_workload(
                make_workload(), num_requests=NUM_REQUESTS, seed=SEED, faults=faults
            )
            return fingerprint(report, cluster.last_outcome)

        baseline = run(None)
        assert run(FaultSchedule([])) == baseline
        # And the kwarg default is the same path as an explicit None.
        assert run(None) == baseline

    def test_static_fleet_with_empty_schedule_matches_cluster_simulator(self):
        batching = TimeoutBatching(window_s=1e-3, max_batch_size=64)
        backend = get_backend("cpu", HARPV2_SYSTEM)
        static = ClusterSimulator(
            backend, DLRM1, num_replicas=3, batching=batching
        ).serve_workload(make_workload(), num_requests=NUM_REQUESTS, seed=SEED)
        chaosless = AutoscalingCluster(
            backend,
            DLRM1,
            policy=None,
            min_replicas=1,
            max_replicas=3,
            initial_replicas=3,
            batching=batching,
        ).serve_workload(
            make_workload(),
            num_requests=NUM_REQUESTS,
            seed=SEED,
            faults=FaultSchedule([]),
        )
        assert fingerprint(chaosless) == fingerprint(static)

    def test_sharded_group_with_empty_schedule_is_bit_identical(self):
        def run(faults):
            group = ShardedReplicaGroup(
                get_backend("centaur", HARPV2_SYSTEM),
                DLRM2,
                num_shards=4,
                cache=parse_cache_spec("lru:rows=2048"),
                batching=TimeoutBatching(window_s=1e-3, max_batch_size=64),
                system=HARPV2_SYSTEM,
            )
            report = group.serve_workload(
                make_workload(), num_requests=NUM_REQUESTS, seed=SEED, faults=faults
            )
            return fingerprint(report)

        assert run(FaultSchedule([])) == run(None)


class TestByteIdenticalIncidentReports:
    @staticmethod
    def digest(report):
        return hashlib.sha256(
            pickle.dumps(report.incidents, protocol=4)
        ).hexdigest()

    def test_fleet_incident_reports_reproduce_byte_for_byte(self):
        def run():
            cluster = AutoscalingCluster(
                get_backend("cpu", HARPV2_SYSTEM),
                DLRM1,
                policy=None,
                min_replicas=1,
                max_replicas=3,
                initial_replicas=3,
                warmup_s=2e-3,
                batching=TimeoutBatching(window_s=1e-3, max_batch_size=64),
            )
            return cluster.serve_workload(
                make_workload(),
                num_requests=NUM_REQUESTS,
                seed=SEED,
                faults=FaultSchedule(
                    [
                        ReplicaCrash(at_s=0.01, restart_after_s=0.01),
                        ReplicaCrash(at_s=0.03, on_inflight="shed"),
                    ],
                    sla_s=5e-3,
                ),
            )

        first, second = run(), run()
        assert first.incidents.incidents, "the drill must record incidents"
        assert self.digest(first) == self.digest(second)
        assert fingerprint(first) == fingerprint(second)

    def test_sharded_incident_reports_reproduce_byte_for_byte(self):
        def run():
            group = ShardedReplicaGroup(
                get_backend("centaur", HARPV2_SYSTEM),
                DLRM2,
                num_shards=4,
                cache=parse_cache_spec("lru:rows=2048"),
                batching=TimeoutBatching(window_s=1e-3, max_batch_size=64),
                system=HARPV2_SYSTEM,
            )
            return group.serve_workload(
                Workload(
                    arrivals=PoissonArrivals(rate_qps=20_000.0), name="steady"
                ),
                num_requests=NUM_REQUESTS,
                seed=SEED,
                faults=FaultSchedule(
                    [ShardLoss(at_s=0.005, shard=0, restore_after_s=0.01, failover="rehash")],
                    window_s=5e-3,
                ),
            )

        first, second = run(), run()
        assert first.incidents.total_degraded_lookups > 0
        assert self.digest(first) == self.digest(second)
        assert fingerprint(first) == fingerprint(second)
