"""Fault injection on sharded groups: shard loss, failover, link windows."""

import pytest

from repro.backends import get_backend
from repro.chaos import (
    Brownout,
    FaultSchedule,
    LinkDegradation,
    ReplicaCrash,
    ShardLoss,
)
from repro.config import DLRM2, HARPV2_SYSTEM
from repro.errors import ConfigurationError, SimulationError
from repro.serving import TimeoutBatching
from repro.serving.sharded import ShardedReplicaGroup
from repro.sharding import parse_cache_spec
from repro.workloads import PoissonArrivals, Workload

BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=32)
WORKLOAD = Workload(arrivals=PoissonArrivals(rate_qps=20_000.0), name="steady")
NUM_REQUESTS = 800
SEED = 4


def serve(faults, *, num_shards=4, cache=None):
    group = ShardedReplicaGroup(
        get_backend("centaur", HARPV2_SYSTEM),
        DLRM2,
        num_shards=num_shards,
        cache=parse_cache_spec(cache) if cache else None,
        batching=BATCHING,
        system=HARPV2_SYSTEM,
    )
    report = group.serve_workload(
        WORKLOAD, num_requests=NUM_REQUESTS, seed=SEED, faults=faults
    )
    return group, report


class TestShardLoss:
    def test_promote_failover_concentrates_without_correctness_loss(self):
        _, report = serve(
            FaultSchedule(
                [ShardLoss(at_s=0.005, shard=1, restore_after_s=0.01)],
                window_s=5e-3,
            )
        )
        (incident,) = report.incidents.incidents
        assert incident.kind == "shard-loss"
        assert incident.target == "shard:1"
        assert incident.cleared
        assert incident.degraded_lookups == 0
        assert report.sharding.promoted_lookups > 0
        assert report.sharding.degraded_lookups == 0

    def test_rehash_failover_counts_correctness_loss(self):
        _, report = serve(
            FaultSchedule(
                [ShardLoss(at_s=0.005, shard=0, restore_after_s=0.01, failover="rehash")],
                window_s=5e-3,
            )
        )
        (incident,) = report.incidents.incidents
        assert incident.degraded_lookups > 0
        assert report.sharding.degraded_lookups == incident.degraded_lookups
        assert report.incidents.correctness_loss(report.sharding.total_lookups) > 0.0
        assert "rehash" in incident.note

    def test_unrestored_shard_loss_stays_open(self):
        _, report = serve(FaultSchedule([ShardLoss(at_s=0.005, shard=2)]))
        (incident,) = report.incidents.incidents
        assert not incident.cleared
        assert report.sharding.promoted_lookups > 0

    def test_restore_brings_a_cold_cache(self):
        group, report = serve(
            FaultSchedule([ShardLoss(at_s=0.005, shard=0, restore_after_s=0.005)]),
            cache="lru:rows=2048",
        )
        (incident,) = report.incidents.incidents
        assert incident.cleared
        # The run finished with cache statistics still continuous (the cold
        # swap inherits counters) and the cache stack still serving.
        assert report.sharding.cache.accesses > 0

    def test_cold_restore_prices_the_cache_refill(self):
        _, report = serve(
            FaultSchedule([ShardLoss(at_s=0.005, shard=0, restore_after_s=0.005)]),
            cache="lru:rows=2048",
        )
        (incident,) = report.incidents.incidents
        # Every row resident in the outgoing cache must be re-gathered
        # before the restored shard is warm again; that traffic is priced
        # through the backend's EMB cost model.
        assert 0 < incident.refill_rows <= 2_048
        assert incident.refill_s > 0.0
        assert incident.refill_energy_joules > incident.refill_s  # power > 1 W
        assert report.incidents.total_refill_rows == incident.refill_rows
        assert report.incidents.total_refill_s == incident.refill_s
        assert (
            report.incidents.total_refill_energy_joules
            == incident.refill_energy_joules
        )

    def test_restore_without_a_cache_has_nothing_to_refill(self):
        _, report = serve(
            FaultSchedule([ShardLoss(at_s=0.005, shard=0, restore_after_s=0.005)])
        )
        (incident,) = report.incidents.incidents
        assert incident.refill_rows == 0
        assert incident.refill_s == 0.0
        assert report.incidents.total_refill_rows == 0

    def test_price_refill_scales_with_resident_rows(self):
        import numpy as np

        from repro.serving.replica import ServiceModel
        from repro.serving.sharded import ShardedReplicaServer
        from repro.sharding.plan import make_plan
        from repro.sim.engine import Simulator

        backend = get_backend("centaur", HARPV2_SYSTEM)
        server = ShardedReplicaServer(
            Simulator(),
            ServiceModel(backend, DLRM2),
            BATCHING,
            plan=make_plan(DLRM2, 4, "table"),
            link=None,
            trace_model=None,
            trace_rng=np.random.default_rng(0),
        )
        assert server.price_refill(0) == (0.0, 0.0)
        one_s, one_j = server.price_refill(1)
        many_s, many_j = server.price_refill(1_000)
        assert one_s > 0.0 and one_j > 0.0
        assert many_s == pytest.approx(1_000 * one_s)
        assert many_j == pytest.approx(1_000 * one_j)

    def test_losing_every_shard_is_rejected_mid_run(self):
        schedule = FaultSchedule(
            [ShardLoss(at_s=0.004, shard=0), ShardLoss(at_s=0.006, shard=1)]
        )
        with pytest.raises(SimulationError):
            serve(schedule, num_shards=2)


class TestLinkDegradation:
    def test_link_window_slows_transfers_and_clears(self):
        _, degraded = serve(
            FaultSchedule(
                [
                    LinkDegradation(
                        at_s=0.0,
                        duration_s=10.0,
                        bandwidth_factor=0.1,
                        latency_factor=4.0,
                    )
                ]
            )
        )
        _, healthy = serve(None)
        assert (
            degraded.sharding.cross_shard_transfer_s
            > healthy.sharding.cross_shard_transfer_s
        )
        (incident,) = degraded.incidents.incidents
        assert incident.kind == "link"
        assert "slowdown=40" in incident.note

    def test_brownout_applies_to_the_single_logical_replica(self):
        _, degraded = serve(
            FaultSchedule(
                [Brownout(at_s=0.0, duration_s=10.0, latency_factor=6.0)]
            )
        )
        _, healthy = serve(None)
        assert degraded.latency.percentiles((99.0,))[0] > (
            healthy.latency.percentiles((99.0,))[0]
        )


class TestShardedValidation:
    def test_replica_crash_rejected_on_sharded_groups(self):
        with pytest.raises(ConfigurationError):
            serve(FaultSchedule([ReplicaCrash(at_s=0.01)]))

    def test_shard_loss_needs_multiple_shards(self):
        with pytest.raises(ConfigurationError):
            serve(FaultSchedule([ShardLoss(at_s=0.01, shard=0)]), num_shards=1)

    def test_shard_target_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            serve(FaultSchedule([ShardLoss(at_s=0.01, shard=9)]))

    def test_link_degradation_needs_multiple_shards(self):
        with pytest.raises(ConfigurationError):
            serve(
                FaultSchedule(
                    [LinkDegradation(at_s=0.01, duration_s=0.01, bandwidth_factor=0.5)]
                ),
                num_shards=1,
            )

    def test_brownout_replica_index_must_be_zero(self):
        with pytest.raises(ConfigurationError):
            serve(
                FaultSchedule(
                    [Brownout(at_s=0.01, duration_s=0.01, replica=2)]
                )
            )
