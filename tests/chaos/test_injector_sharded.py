"""Fault injection on sharded groups: shard loss, failover, link windows."""

import pytest

from repro.backends import get_backend
from repro.chaos import (
    Brownout,
    FaultSchedule,
    LinkDegradation,
    ReplicaCrash,
    ShardLoss,
)
from repro.config import DLRM2, HARPV2_SYSTEM
from repro.errors import ConfigurationError, SimulationError
from repro.serving import TimeoutBatching
from repro.serving.sharded import ShardedReplicaGroup
from repro.sharding import parse_cache_spec
from repro.workloads import PoissonArrivals, Workload

BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=32)
WORKLOAD = Workload(arrivals=PoissonArrivals(rate_qps=20_000.0), name="steady")
NUM_REQUESTS = 800
SEED = 4


def serve(faults, *, num_shards=4, cache=None):
    group = ShardedReplicaGroup(
        get_backend("centaur", HARPV2_SYSTEM),
        DLRM2,
        num_shards=num_shards,
        cache=parse_cache_spec(cache) if cache else None,
        batching=BATCHING,
        system=HARPV2_SYSTEM,
    )
    report = group.serve_workload(
        WORKLOAD, num_requests=NUM_REQUESTS, seed=SEED, faults=faults
    )
    return group, report


class TestShardLoss:
    def test_promote_failover_concentrates_without_correctness_loss(self):
        _, report = serve(
            FaultSchedule(
                [ShardLoss(at_s=0.005, shard=1, restore_after_s=0.01)],
                window_s=5e-3,
            )
        )
        (incident,) = report.incidents.incidents
        assert incident.kind == "shard-loss"
        assert incident.target == "shard:1"
        assert incident.cleared
        assert incident.degraded_lookups == 0
        assert report.sharding.promoted_lookups > 0
        assert report.sharding.degraded_lookups == 0

    def test_rehash_failover_counts_correctness_loss(self):
        _, report = serve(
            FaultSchedule(
                [ShardLoss(at_s=0.005, shard=0, restore_after_s=0.01, failover="rehash")],
                window_s=5e-3,
            )
        )
        (incident,) = report.incidents.incidents
        assert incident.degraded_lookups > 0
        assert report.sharding.degraded_lookups == incident.degraded_lookups
        assert report.incidents.correctness_loss(report.sharding.total_lookups) > 0.0
        assert "rehash" in incident.note

    def test_unrestored_shard_loss_stays_open(self):
        _, report = serve(FaultSchedule([ShardLoss(at_s=0.005, shard=2)]))
        (incident,) = report.incidents.incidents
        assert not incident.cleared
        assert report.sharding.promoted_lookups > 0

    def test_restore_brings_a_cold_cache(self):
        group, report = serve(
            FaultSchedule([ShardLoss(at_s=0.005, shard=0, restore_after_s=0.005)]),
            cache="lru:rows=2048",
        )
        (incident,) = report.incidents.incidents
        assert incident.cleared
        # The run finished with cache statistics still continuous (the cold
        # swap inherits counters) and the cache stack still serving.
        assert report.sharding.cache.accesses > 0

    def test_losing_every_shard_is_rejected_mid_run(self):
        schedule = FaultSchedule(
            [ShardLoss(at_s=0.004, shard=0), ShardLoss(at_s=0.006, shard=1)]
        )
        with pytest.raises(SimulationError):
            serve(schedule, num_shards=2)


class TestLinkDegradation:
    def test_link_window_slows_transfers_and_clears(self):
        _, degraded = serve(
            FaultSchedule(
                [
                    LinkDegradation(
                        at_s=0.0,
                        duration_s=10.0,
                        bandwidth_factor=0.1,
                        latency_factor=4.0,
                    )
                ]
            )
        )
        _, healthy = serve(None)
        assert (
            degraded.sharding.cross_shard_transfer_s
            > healthy.sharding.cross_shard_transfer_s
        )
        (incident,) = degraded.incidents.incidents
        assert incident.kind == "link"
        assert "slowdown=40" in incident.note

    def test_brownout_applies_to_the_single_logical_replica(self):
        _, degraded = serve(
            FaultSchedule(
                [Brownout(at_s=0.0, duration_s=10.0, latency_factor=6.0)]
            )
        )
        _, healthy = serve(None)
        assert degraded.latency.percentiles((99.0,))[0] > (
            healthy.latency.percentiles((99.0,))[0]
        )


class TestShardedValidation:
    def test_replica_crash_rejected_on_sharded_groups(self):
        with pytest.raises(ConfigurationError):
            serve(FaultSchedule([ReplicaCrash(at_s=0.01)]))

    def test_shard_loss_needs_multiple_shards(self):
        with pytest.raises(ConfigurationError):
            serve(FaultSchedule([ShardLoss(at_s=0.01, shard=0)]), num_shards=1)

    def test_shard_target_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            serve(FaultSchedule([ShardLoss(at_s=0.01, shard=9)]))

    def test_link_degradation_needs_multiple_shards(self):
        with pytest.raises(ConfigurationError):
            serve(
                FaultSchedule(
                    [LinkDegradation(at_s=0.01, duration_s=0.01, bandwidth_factor=0.5)]
                ),
                num_shards=1,
            )

    def test_brownout_replica_index_must_be_zero(self):
        with pytest.raises(ConfigurationError):
            serve(
                FaultSchedule(
                    [Brownout(at_s=0.01, duration_s=0.01, replica=2)]
                )
            )
