"""Chaos wiring: CLI ``--faults``, catalog scenarios, grids, rendering."""

import pytest

from repro.chaos import FaultSchedule
from repro.analysis import render_incident_timeline
from repro.cli import main
from repro.config import DLRM1, HARPV2_SYSTEM
from repro.errors import ConfigurationError, SimulationError
from repro.experiment import Experiment, chaos_grid
from repro.workloads import (
    SCENARIO_CATALOG,
    PoissonArrivals,
    Workload,
    resolve_fault_spec,
)

WORKLOAD = Workload(arrivals=PoissonArrivals(rate_qps=20_000.0), name="steady")


class TestScenarioCatalog:
    def test_the_two_named_scenarios_exist(self):
        assert set(SCENARIO_CATALOG) >= {"region-failover", "cascading-brownout"}

    @pytest.mark.parametrize("name", sorted(SCENARIO_CATALOG))
    def test_every_scenario_parses_and_builds(self, name):
        scenario = SCENARIO_CATALOG[name]
        schedule = scenario.schedule()
        assert isinstance(schedule, FaultSchedule)
        assert not schedule.empty
        workload = scenario.workload()
        assert workload.arrivals is not None

    def test_resolve_accepts_scenario_names_and_raw_specs(self):
        named = resolve_fault_spec("region-failover")
        assert isinstance(named, FaultSchedule)
        raw = resolve_fault_spec("crash:at=0.05,restart=0.01")
        assert isinstance(raw, FaultSchedule)
        assert resolve_fault_spec("off") is None
        assert resolve_fault_spec(None) is None

    def test_unknown_spec_still_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_fault_spec("rack-fire")


class TestChaosGrid:
    def test_experiment_chaos_populates_incidents(self):
        result = (
            Experiment(HARPV2_SYSTEM)
            .backends("cpu")
            .models([DLRM1])
            .workloads(WORKLOAD)
            .chaos("crash:at=0.01,restart=0.01", num_requests=400, seed=3)
        )
        ((key, report),) = list(result)
        assert report.incidents is not None
        assert len(report.incidents.incidents) == 1
        assert report.autoscale.crashes == 1

    def test_chaos_grid_accepts_schedule_objects_and_strings(self):
        parsed = chaos_grid(
            HARPV2_SYSTEM,
            ["cpu"],
            [WORKLOAD],
            [DLRM1],
            faults="crash:at=0.01",
            num_requests=300,
        )
        from repro.chaos import ReplicaCrash

        direct = chaos_grid(
            HARPV2_SYSTEM,
            ["cpu"],
            [WORKLOAD],
            [DLRM1],
            faults=FaultSchedule([ReplicaCrash(at_s=0.01)]),
            num_requests=300,
        )
        assert len(parsed) == len(direct) == 1

    def test_chaos_grid_rejects_non_schedules(self):
        with pytest.raises(ConfigurationError):
            chaos_grid(
                HARPV2_SYSTEM,
                ["cpu"],
                [WORKLOAD],
                [DLRM1],
                faults=42,
                num_requests=300,
            )

    def test_experiment_chaos_requires_workloads(self):
        with pytest.raises(SimulationError):
            Experiment(HARPV2_SYSTEM).backends("cpu").models([DLRM1]).chaos(
                "crash:at=0.01", num_requests=300
            )


class TestRenderIncidentTimeline:
    def test_renders_rows_totals_and_notes(self):
        result = chaos_grid(
            HARPV2_SYSTEM,
            ["cpu"],
            [WORKLOAD],
            [DLRM1],
            faults="crash:at=0.01,inflight=shed;brownout:at=0.03,for=0.01,slow=3",
            num_requests=600,
        )
        ((_, report),) = list(result)
        rendered = render_incident_timeline(report)
        assert "Incident timeline" in rendered
        assert "crash replica:" in rendered
        assert "brownout replica:" in rendered
        assert "totals:" in rendered
        assert "worst time-to-recover" in rendered

    def test_accepts_a_bare_incident_report(self):
        result = chaos_grid(
            HARPV2_SYSTEM,
            ["cpu"],
            [WORKLOAD],
            [DLRM1],
            faults="crash:at=0.01",
            num_requests=300,
        )
        ((_, report),) = list(result)
        assert "crash" in render_incident_timeline(report.incidents)

    def test_faultless_report_raises(self):
        with pytest.raises(ValueError):
            render_incident_timeline(None)


class TestServeFaultsCLI:
    def test_raw_spec_prints_the_incident_timeline(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--backend",
                    "cpu",
                    "--model",
                    "DLRM1",
                    "--requests",
                    "500",
                    "--replicas",
                    "2",
                    "--faults",
                    "crash:at=0.01,restart=0.01",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "(chaos)" in out
        assert "Incident timeline" in out
        assert "crash replica:1" in out

    def test_scenario_name_resolves_and_announces_itself(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--backend",
                    "cpu",
                    "--model",
                    "DLRM1",
                    "--requests",
                    "500",
                    "--replicas",
                    "3",
                    "--faults",
                    "region-failover",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "chaos scenario 'region-failover'" in out
        assert "Incident timeline" in out

    def test_autoscaled_serving_with_faults(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--backend",
                    "cpu",
                    "--model",
                    "DLRM1",
                    "--requests",
                    "500",
                    "--autoscale",
                    "queue:high=8,low=1",
                    "--max-replicas",
                    "3",
                    "--faults",
                    "crash:at=0.01,restart=0.01",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Autoscale timeline" in out
        assert "Incident timeline" in out

    def test_sharded_serving_with_shard_loss(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--backend",
                    "centaur",
                    "--model",
                    "DLRM2",
                    "--requests",
                    "500",
                    "--shards",
                    "4",
                    "--faults",
                    "shard-loss:at=0.005,restore=0.01,failover=rehash",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Incident timeline" in out
        assert "shard-loss shard:0" in out

    def test_faults_off_keeps_the_plain_path(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--backend",
                    "cpu",
                    "--model",
                    "DLRM1",
                    "--requests",
                    "400",
                    "--faults",
                    "off",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Incident timeline" not in out
        assert "(chaos)" not in out

    def test_bad_fault_spec_fails_cleanly(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--backend",
                    "cpu",
                    "--model",
                    "DLRM1",
                    "--requests",
                    "400",
                    "--faults",
                    "meteor:at=0.1",
                ]
            )
            == 2
        )
        assert "unknown fault kind" in capsys.readouterr().err

    def test_fleet_fault_on_sharded_group_fails_cleanly(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--backend",
                    "centaur",
                    "--model",
                    "DLRM2",
                    "--requests",
                    "400",
                    "--shards",
                    "4",
                    "--faults",
                    "crash:at=0.01",
                ]
            )
            == 2
        )
        assert "sharded group" in capsys.readouterr().err

    def test_list_workloads_shows_the_scenarios(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "chaos scenarios" in out
        assert "region-failover" in out
        assert "cascading-brownout" in out
