"""Property-based conservation invariants under arbitrary fault schedules.

Whatever the schedule throws at the fleet — crashes with or without
restarts, shedding or re-dispatching in-flight work, rate-driven fault
storms — one identity must hold: every scheduled request is either
completed or counted as shed, and the incident report's ledger agrees
with the stream outcome's.
"""

from hypothesis import given, settings, strategies as st

from repro.backends import get_backend
from repro.chaos import Brownout, FaultSchedule, PoissonFaults, ReplicaCrash
from repro.config import DLRM1, HARPV2_SYSTEM
from repro.serving import AutoscalingCluster, QueueDepthPolicy, TimeoutBatching
from repro.workloads import PoissonArrivals, Workload

BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=64)
NUM_REQUESTS = 500


@st.composite
def crash_specs(draw):
    return ReplicaCrash(
        at_s=draw(st.floats(min_value=0.001, max_value=0.03)),
        restart_after_s=draw(
            st.one_of(st.none(), st.floats(min_value=0.001, max_value=0.02))
        ),
        on_inflight=draw(st.sampled_from(["redispatch", "shed"])),
    )


@st.composite
def brownout_specs(draw):
    return Brownout(
        at_s=draw(st.floats(min_value=0.001, max_value=0.03)),
        duration_s=draw(st.floats(min_value=0.002, max_value=0.02)),
        replica=0,
        latency_factor=draw(st.floats(min_value=1.5, max_value=6.0)),
    )


@st.composite
def poisson_storms(draw):
    return PoissonFaults(
        template=ReplicaCrash(
            at_s=0.0,
            restart_after_s=draw(st.floats(min_value=0.002, max_value=0.01)),
            on_inflight=draw(st.sampled_from(["redispatch", "shed"])),
        ),
        rate_hz=draw(st.floats(min_value=10.0, max_value=80.0)),
        end_s=draw(st.floats(min_value=0.01, max_value=0.05)),
        seed=draw(st.integers(min_value=0, max_value=1_000)),
    )


SCHEDULES = st.lists(
    st.one_of(crash_specs(), brownout_specs(), poisson_storms()),
    min_size=1,
    max_size=3,
).map(lambda faults: FaultSchedule(faults, sla_s=5e-3))


def run(schedule, seed, elastic):
    cluster = AutoscalingCluster(
        get_backend("cpu", HARPV2_SYSTEM),
        DLRM1,
        policy=(
            QueueDepthPolicy(high_watermark=24.0, low_watermark=2.0, cooldown_s=0.01)
            if elastic
            else None
        ),
        min_replicas=1,
        max_replicas=3,
        initial_replicas=2,
        control_interval_s=5e-3,
        warmup_s=2e-3,
        batching=BATCHING,
    )
    report = cluster.serve_workload(
        Workload(arrivals=PoissonArrivals(rate_qps=20_000.0), name="steady"),
        num_requests=NUM_REQUESTS,
        seed=seed,
        faults=schedule,
    )
    return cluster, report


class TestConservation:
    @given(
        schedule=SCHEDULES,
        seed=st.integers(min_value=0, max_value=2**16),
        elastic=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_arrivals_equal_completed_plus_shed(self, schedule, seed, elastic):
        cluster, report = run(schedule, seed, elastic)
        outcome = cluster.last_outcome
        # The conservation identity, relaxed only by explicit shedding.
        assert outcome.scheduled == NUM_REQUESTS
        assert outcome.completed + outcome.shed == NUM_REQUESTS
        assert report.completed_requests == outcome.completed
        assert (
            sum(replica.completed_requests for replica in report.per_replica)
            == outcome.completed
        )
        # The incident ledger agrees with the stream's shed counter.
        incidents = report.incidents
        assert incidents is not None
        assert incidents.total_shed == outcome.shed
        assert incidents.total_shed >= 0
        assert incidents.total_redispatched >= 0
        # Latency samples exist for exactly the completed requests.
        assert len(report.latency.samples_s) == outcome.completed
        # Every incident window is well-formed.
        for incident in incidents.incidents:
            assert incident.start_s >= 0.0
            assert incident.end_s >= incident.start_s
            assert 0.0 <= incident.sla_during <= 1.0
            assert incident.recovery_replica_seconds >= 0.0

    @given(
        schedule=SCHEDULES,
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_equal_seeds_equal_outcomes(self, schedule, seed):
        first_cluster, first = run(schedule, seed, elastic=True)
        second_cluster, second = run(schedule, seed, elastic=True)
        assert first_cluster.last_outcome == second_cluster.last_outcome
        assert first.latency.samples_s.tolist() == second.latency.samples_s.tolist()
        assert first.incidents == second.incidents
