"""Heap vs calendar queue: interface, pooling, cancellation, equivalence.

The contract under test: :class:`CalendarQueue` is observationally
identical to the binary-heap :class:`EventQueue` — same ``(time,
sequence)`` pop order (ties included), same validation errors, same
pooling and compaction behaviour — so a simulation's outcome can never
depend on which queue backs it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.calendar import CalendarQueue
from repro.sim.engine import (
    BaseEventQueue,
    EventQueue,
    Simulator,
    make_event_queue,
)

QUEUE_FACTORIES = {
    "heap": EventQueue,
    "calendar": CalendarQueue,
}


@pytest.fixture(params=sorted(QUEUE_FACTORIES))
def queue(request):
    return QUEUE_FACTORIES[request.param]()


# ---------------------------------------------------------------------------
# Shared interface contract, run against both implementations.
# ---------------------------------------------------------------------------
class TestQueueContract:
    def test_orders_by_time(self, queue):
        queue.push(3e-3, lambda: None, label="late")
        queue.push(1e-3, lambda: None, label="early")
        queue.push(2e-3, lambda: None, label="middle")
        assert queue.peek_time() == 1e-3
        assert [queue.pop().label for _ in range(3)] == ["early", "middle", "late"]

    def test_ties_break_by_insertion_order(self, queue):
        labels = [f"tie{i}" for i in range(8)]
        for label in labels:
            queue.push(5e-4, lambda: None, label=label)
        assert [queue.pop().label for _ in range(len(labels))] == labels

    def test_push_before_current_time_raises_with_label(self, queue):
        queue.push(1e-3, lambda: None)
        queue.pop()
        with pytest.raises(SimulationError, match=r"autoscale:control.*causality"):
            queue.push(5e-4, lambda: None, label="autoscale:control")

    def test_negative_time_rejected(self, queue):
        with pytest.raises(SimulationError, match="non-negative"):
            queue.push(-1e-6, lambda: None)

    def test_pop_empty_raises_and_take_returns_none(self, queue):
        assert queue.take() is None
        with pytest.raises(SimulationError, match="empty"):
            queue.pop()

    def test_push_at_exactly_the_floor_is_allowed(self, queue):
        queue.push(1e-3, lambda: None)
        queue.pop()
        event = queue.push(1e-3, lambda: None, label="same-time")
        assert queue.pop() is event


class TestEventPooling:
    def test_fired_events_are_recycled(self, queue):
        first = queue.push(1e-3, lambda: None)
        queue.pop()
        queue.release(first)
        second = queue.push(2e-3, lambda: None)
        assert second is first  # same object, re-initialized
        assert second.time == 2e-3
        assert not second.cancelled

    def test_release_drops_the_callback_reference(self, queue):
        event = queue.push(1e-3, lambda: None)
        queue.pop()
        queue.release(event)
        assert event.callback is None

    @pytest.mark.parametrize("kind", sorted(QUEUE_FACTORIES))
    def test_pool_disabled_allocates_fresh_events(self, kind):
        queue = QUEUE_FACTORIES[kind](pool=False)
        first = queue.push(1e-3, lambda: None)
        queue.pop()
        queue.release(first)
        second = queue.push(2e-3, lambda: None)
        assert second is not first


class TestCancellation:
    def test_cancel_drops_callback_immediately(self, queue):
        closure = []
        event = queue.push(1e-3, lambda: closure.append(1))
        event.cancel()
        assert event.callback is None
        assert event.cancelled

    def test_cancel_is_idempotent(self, queue):
        event = queue.push(1e-3, lambda: None)
        event.cancel()
        event.cancel()
        assert queue.pop() is event

    def test_mass_cancellation_compacts_storage(self, queue):
        events = [queue.push(i * 1e-4, lambda: None, label=f"e{i}") for i in range(20)]
        for event in events[:16]:
            event.cancel()
        # Once the dead fraction passed one half, compaction dropped the
        # cancelled entries from storage instead of waiting for their times.
        assert len(queue) < 20
        live = []
        while len(queue):
            popped = queue.pop()
            if not popped.cancelled:
                live.append(popped.label)
        assert live == ["e16", "e17", "e18", "e19"]

    def test_small_queues_drain_cancels_lazily(self, queue):
        live = queue.push(2e-3, lambda: None, label="live")
        queue.push(1e-3, lambda: None, label="dead").cancel()
        # Below the compaction threshold the cancelled entry stays queued...
        assert len(queue) == 2
        popped = queue.pop()
        assert popped.cancelled and popped.label == "dead"
        assert queue.pop() is live


class TestMakeEventQueue:
    def test_auto_and_heap_select_the_heap(self):
        assert make_event_queue("auto").kind == "heap"
        assert make_event_queue(None).kind == "heap"
        assert make_event_queue("heap").kind == "heap"

    def test_calendar_by_name_class_and_instance(self):
        assert make_event_queue("calendar").kind == "calendar"
        assert make_event_queue(CalendarQueue).kind == "calendar"
        instance = CalendarQueue(bucket_width=1e-3)
        assert make_event_queue(instance) is instance

    def test_pool_flag_is_forwarded(self):
        assert make_event_queue("heap", pool=False)._free is None
        assert make_event_queue("calendar", pool=True)._free == []

    def test_unknown_spec_rejected(self):
        with pytest.raises(SimulationError, match="unknown event queue"):
            make_event_queue("fibonacci")
        with pytest.raises(SimulationError, match="unknown event queue"):
            make_event_queue(42)

    def test_simulator_accepts_queue_spec(self):
        assert Simulator(queue="calendar").queue.kind == "calendar"
        assert Simulator(queue="auto", event_pool=False).queue._free is None


class TestCalendarInternals:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError, match="bucket_width"):
            CalendarQueue(bucket_width=0.0)
        with pytest.raises(SimulationError, match="num_buckets"):
            CalendarQueue(num_buckets=0)

    def test_grow_and_shrink_preserve_order(self):
        queue = CalendarQueue(bucket_width=1e-5, num_buckets=4)
        times = [((i * 7919) % 1000) * 1e-4 for i in range(500)]
        for time in times:
            queue.push(time, lambda: None)
        popped = []
        while len(queue):
            popped.append(queue.pop().time)
        assert popped == sorted(times)

    def test_sparse_jump_finds_distant_events(self):
        # One event far beyond a full ring scan from the cursor.
        queue = CalendarQueue(bucket_width=1e-6, num_buckets=4)
        queue.push(10.0, lambda: None, label="far")
        queue.push(1e-6, lambda: None, label="near")
        assert queue.pop().label == "near"
        assert queue.pop().label == "far"


# ---------------------------------------------------------------------------
# Property-based equivalence: both queues pop any schedule identically.
# ---------------------------------------------------------------------------

#: Times drawn from a tiny grid so ties are common, plus booleans choosing
#: push vs pop and whether to cancel a pending event.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["push", "pop", "cancel"]),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=120,
)


def _drive(queue: BaseEventQueue, ops) -> list:
    """Apply an op sequence; return the observable trace."""
    trace = []
    pending = []
    floor = 0.0
    for op, value in ops:
        if op == "push":
            time = floor + value * 1e-4
            event = queue.push(time, lambda: None, label=f"t{time:.6f}")
            pending.append(event)
            trace.append(("push", time))
        elif op == "pop" and len(queue):
            event = queue.pop()
            floor = event.time
            if event in pending:
                pending.remove(event)
            trace.append(("pop", event.time, event.sequence, event.cancelled))
        elif op == "cancel" and pending:
            event = pending.pop(value % len(pending))
            event.cancel()
            trace.append(("cancel", event.time, event.sequence))
    while len(queue):
        event = queue.pop()
        trace.append(("pop", event.time, event.sequence, event.cancelled))
    return trace


@settings(max_examples=150, deadline=None)
@given(ops=_OPS)
def test_heap_and_calendar_traces_are_identical(ops):
    heap_trace = _drive(EventQueue(), ops)
    calendar_trace = _drive(CalendarQueue(bucket_width=1e-4, num_buckets=4), ops)
    assert heap_trace == calendar_trace


@settings(max_examples=80, deadline=None)
@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e-2, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=200,
    )
)
def test_bulk_pop_order_matches_heap_with_arbitrary_floats(times):
    heap, calendar = EventQueue(), CalendarQueue(bucket_width=1e-4, num_buckets=8)
    for time in times:
        heap.push(time, lambda: None)
        calendar.push(time, lambda: None)
    heap_order = [(e.time, e.sequence) for e in (heap.pop() for _ in times)]
    calendar_order = [(e.time, e.sequence) for e in (calendar.pop() for _ in times)]
    assert heap_order == calendar_order
    assert heap_order == sorted(heap_order)
