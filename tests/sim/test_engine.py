"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventQueue, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        assert queue.peek_time() == 1.0
        queue.pop().callback()
        queue.pop().callback()
        assert fired == ["a", "b"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None, label="first")
        second = queue.push(1.0, lambda: None, label="second")
        assert queue.pop() is first
        assert queue.pop() is second

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None


class TestSimulator:
    def test_clock_advances_with_events(self):
        sim = Simulator()
        times = []
        sim.schedule(1e-6, lambda: times.append(sim.now))
        sim.schedule(5e-6, lambda: times.append(sim.now))
        end = sim.run()
        assert times == [1e-6, 5e-6]
        assert end == pytest.approx(5e-6)
        assert sim.events_fired == 2

    def test_nested_scheduling(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(2e-6, lambda: order.append("third"))

        sim.schedule(1e-6, first)
        sim.schedule(2e-6, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1e-6, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.events_fired == 0

    def test_run_until_stops_before_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1e-6, lambda: fired.append("early"))
        sim.schedule(10e-6, lambda: fired.append("late"))
        sim.run(until=5e-6)
        assert fired == ["early"]
        assert sim.now == pytest.approx(5e-6)
        # The remaining event still fires if we keep running.
        sim.run()
        assert fired == ["early", "late"]

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.schedule(1e-6, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_livelock_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)


class TestStepping:
    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_step_fires_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1e-6, lambda: fired.append(1))
        sim.schedule(2e-6, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]


class TestStop:
    def test_stop_returns_after_current_event_and_resumes(self):
        sim = Simulator()
        fired = []

        def second():
            fired.append("second")
            sim.stop()

        sim.schedule(1e-6, lambda: fired.append("first"))
        sim.schedule(2e-6, second)
        sim.schedule(3e-6, lambda: fired.append("third"))
        sim.run()
        assert fired == ["first", "second"]
        # The stop request does not leak into the next run.
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_stop_without_run_is_harmless(self):
        sim = Simulator()
        sim.stop()
        sim.schedule(1e-6, lambda: None)
        assert sim.run() == pytest.approx(1e-6)
        assert sim.events_fired == 1
