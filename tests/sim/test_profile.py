"""Tests for the engine profiling hook (repro.sim.profile)."""

import pytest

from repro.analysis.report import render_profile
from repro.sim import SimProfile, Simulator
from repro.sim.profile import _UNLABELED


class TestSimProfile:
    def test_record_accumulates_per_label(self):
        profile = SimProfile()
        profile.record("arrival", 1e-3)
        profile.record("arrival", 3e-3)
        profile.record("complete", 2e-3)
        assert profile.get("arrival").count == 2
        assert profile.get("arrival").seconds == pytest.approx(4e-3)
        assert profile.get("arrival").mean_us == pytest.approx(2000.0)
        assert profile.total_events == 3
        assert profile.total_seconds == pytest.approx(6e-3)

    def test_unlabeled_events_group_together(self):
        profile = SimProfile()
        profile.record("", 1e-3)
        profile.record("", 1e-3)
        assert profile.get(_UNLABELED).count == 2

    def test_unknown_label_reads_as_zero(self):
        stats = SimProfile().get("never-fired")
        assert stats.count == 0
        assert stats.seconds == 0.0
        assert stats.mean_us == 0.0

    def test_iteration_is_heaviest_first(self):
        profile = SimProfile()
        profile.record("light", 1e-4)
        profile.record("heavy", 1e-2)
        profile.record("medium", 1e-3)
        assert [stats.label for stats in profile] == ["heavy", "medium", "light"]

    def test_merge_pools_counts_and_seconds(self):
        first, second = SimProfile(), SimProfile()
        first.record("arrival", 1e-3)
        second.record("arrival", 2e-3)
        second.record("tick", 5e-4)
        merged = first.merge(second)
        assert merged.get("arrival").count == 2
        assert merged.get("arrival").seconds == pytest.approx(3e-3)
        assert merged.get("tick").count == 1
        # Sources are untouched.
        assert first.get("arrival").count == 1

    def test_rows_carry_shares_that_sum_to_one(self):
        profile = SimProfile()
        profile.record("a", 3e-3)
        profile.record("b", 1e-3)
        rows = profile.rows()
        assert [row[0] for row in rows] == ["a", "b"]
        assert sum(row[4] for row in rows) == pytest.approx(1.0)


class TestSimulatorProfiling:
    def test_disabled_by_default(self):
        sim = Simulator()
        sim.schedule(1e-6, lambda: None)
        sim.run()
        assert sim.profile is None

    def test_profiles_fired_events_by_label(self):
        sim = Simulator(profile=True)
        sim.schedule(1e-6, lambda: None, label="arrival")
        sim.schedule(2e-6, lambda: None, label="arrival")
        sim.schedule(3e-6, lambda: None, label="complete")
        cancelled = sim.schedule(4e-6, lambda: None, label="never")
        cancelled.cancel()
        sim.run()
        assert sim.profile.get("arrival").count == 2
        assert sim.profile.get("complete").count == 1
        assert sim.profile.get("never").count == 0
        assert sim.profile.total_events == sim.events_fired == 3
        assert sim.profile.get("arrival").seconds >= 0.0

    def test_step_records_too(self):
        sim = Simulator(profile=True)
        sim.schedule(1e-6, lambda: None, label="stepped")
        assert sim.step() is True
        assert sim.profile.get("stepped").count == 1


class TestRenderProfile:
    def test_renders_labels_counts_and_total(self):
        profile = SimProfile()
        profile.record("arrival", 2e-3)
        profile.record("batch-close", 1e-3)
        text = render_profile(profile)
        assert "Engine profile" in text
        assert "arrival" in text
        assert "batch-close" in text
        assert "(total)" in text
        # Heaviest label renders first.
        assert text.index("arrival") < text.index("batch-close")
