"""Tests for the simulation resources (bandwidth pipes and credit pools)."""

import pytest

from repro.errors import SimulationError
from repro.sim.resources import BandwidthResource, TokenPool


class TestBandwidthResource:
    def test_idle_transfer_starts_immediately(self):
        pipe = BandwidthResource(1e9)
        completion = pipe.request(now=0.0, num_bytes=1e6)
        assert completion == pytest.approx(1e-3)

    def test_back_to_back_transfers_serialize(self):
        pipe = BandwidthResource(1e9)
        first = pipe.request(0.0, 1e6)
        second = pipe.request(0.0, 1e6)
        assert second == pytest.approx(first + 1e-3)

    def test_gap_between_transfers_is_idle(self):
        pipe = BandwidthResource(1e9)
        pipe.request(0.0, 1e6)
        completion = pipe.request(10.0, 1e6)
        assert completion == pytest.approx(10.0 + 1e-3)

    def test_utilization(self):
        pipe = BandwidthResource(1e9)
        pipe.request(0.0, 1e6)
        assert pipe.utilization(elapsed=2e-3) == pytest.approx(0.5)
        assert pipe.utilization(elapsed=0.0) == 0.0

    def test_counters(self):
        pipe = BandwidthResource(1e9)
        pipe.request(0.0, 100)
        pipe.request(0.0, 200)
        assert pipe.bytes_transferred == 300

    def test_validation(self):
        with pytest.raises(SimulationError):
            BandwidthResource(0)
        with pytest.raises(SimulationError):
            BandwidthResource(1e9).request(0.0, -1)


class TestTokenPool:
    def test_acquire_and_release(self):
        pool = TokenPool(2)
        assert pool.try_acquire()
        assert pool.try_acquire()
        assert pool.in_use == 2
        assert not pool.try_acquire()
        pool.release()
        assert pool.try_acquire()

    def test_blocked_counter(self):
        pool = TokenPool(1)
        pool.try_acquire()
        pool.try_acquire()
        pool.try_acquire()
        assert pool.blocked == 2

    def test_over_release_rejected(self):
        pool = TokenPool(1)
        with pytest.raises(SimulationError):
            pool.release()

    def test_bulk_acquire(self):
        pool = TokenPool(4)
        assert pool.try_acquire(3)
        assert not pool.try_acquire(2)
        pool.release(3)
        assert pool.available == 4

    def test_validation(self):
        with pytest.raises(SimulationError):
            TokenPool(0)
        with pytest.raises(SimulationError):
            TokenPool(2).try_acquire(0)
