"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CapacityError,
    ConfigurationError,
    ModelShapeError,
    ReproError,
    ResourceEstimationError,
    SimulationError,
    TraceError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            ConfigurationError,
            ModelShapeError,
            TraceError,
            SimulationError,
            CapacityError,
            ResourceEstimationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)
        with pytest.raises(ReproError):
            raise exception_type("boom")

    def test_repro_error_is_an_exception(self):
        assert issubclass(ReproError, Exception)

    def test_categories_are_distinct(self):
        assert not issubclass(ConfigurationError, SimulationError)
        assert not issubclass(SimulationError, ConfigurationError)

    def test_library_raises_repro_errors_for_bad_config(self):
        from repro.config.models import EmbeddingTableConfig

        with pytest.raises(ReproError):
            EmbeddingTableConfig(num_rows=-1)
