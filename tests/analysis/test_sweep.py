"""Tests for the design-point sweep driver."""

import pytest

from repro.analysis.sweep import DesignPointSweep, SweepResult
from repro.config import DLRM1, DLRM6, HARPV2_SYSTEM
from repro.errors import SimulationError
from repro.results import InferenceResult, LatencyBreakdown


class TestSweepResult:
    def test_add_and_get(self):
        sweep = SweepResult()
        result = InferenceResult(
            design_point="CPU-only",
            model_name="DLRM(1)",
            batch_size=4,
            breakdown=LatencyBreakdown({"EMB": 1e-3}),
            power_watts=80.0,
        )
        sweep.add(result)
        assert sweep.get("CPU-only", "DLRM(1)", 4) is result
        assert len(sweep) == 1

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            SweepResult().get("CPU-only", "DLRM(1)", 4)


class TestDesignPointSweep:
    def test_runs_every_combination(self):
        sweep = DesignPointSweep(
            HARPV2_SYSTEM, models=[DLRM1, DLRM6], batch_sizes=[1, 16]
        ).run()
        assert len(sweep) == 3 * 2 * 2
        assert sweep.design_points() == ["CPU-GPU", "CPU-only", "Centaur"]
        assert sweep.model_names() == ["DLRM(1)", "DLRM(6)"]
        assert sweep.batch_sizes() == [1, 16]

    def test_subset_of_design_points(self):
        sweep = DesignPointSweep(
            HARPV2_SYSTEM,
            models=[DLRM1],
            batch_sizes=[4],
            design_points=("CPU-only", "Centaur"),
        ).run()
        assert len(sweep) == 2
        with pytest.raises(KeyError):
            sweep.get("CPU-GPU", "DLRM(1)", 4)

    def test_model_lookup(self):
        sweep = DesignPointSweep(HARPV2_SYSTEM, models=[DLRM1], batch_sizes=[1])
        assert sweep.model_by_name("DLRM(1)") is DLRM1
        with pytest.raises(KeyError):
            sweep.model_by_name("DLRM(9)")

    def test_validation(self):
        with pytest.raises(SimulationError):
            DesignPointSweep(HARPV2_SYSTEM, models=[], batch_sizes=[1])
        with pytest.raises(SimulationError):
            DesignPointSweep(HARPV2_SYSTEM, models=[DLRM1], batch_sizes=[])
        with pytest.raises(SimulationError):
            DesignPointSweep(HARPV2_SYSTEM, design_points=("TPU",))

    def test_defaults_cover_paper_sweep(self):
        sweep = DesignPointSweep(HARPV2_SYSTEM)
        assert len(sweep.models) == 6
        assert sweep.batch_sizes == (1, 4, 16, 32, 64, 128)
