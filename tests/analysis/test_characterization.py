"""Tests for the Figures 5-7 characterization harness."""

import pytest

from repro.analysis.characterization import (
    figure5_latency_breakdown,
    figure6_cache_behaviour,
    figure7_effective_throughput,
    figure7_lookup_sweep,
    single_table_model,
)
from repro.config import DLRM1, DLRM4, DLRM6, HARPV2_SYSTEM
from repro.errors import SimulationError

MODELS = [DLRM1, DLRM4, DLRM6]
BATCHES = [1, 16, 128]


class TestFigure5:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure5_latency_breakdown(HARPV2_SYSTEM, models=MODELS, batch_sizes=BATCHES)

    def test_row_count(self, rows):
        assert len(rows) == len(MODELS) * len(BATCHES)

    def test_fractions_sum_to_one(self, rows):
        for row in rows:
            assert row.fractions_sum() == pytest.approx(1.0)

    def test_first_row_is_reference(self, rows):
        assert rows[0].normalized_latency == pytest.approx(1.0)

    def test_normalized_latency_spans_an_order_of_magnitude(self, rows):
        """Figure 5's right axis spans roughly 1-15x across models/batches."""
        values = [row.normalized_latency for row in rows]
        assert max(values) > 5.0

    def test_embedding_fraction_high_for_dlrm4(self, rows):
        dlrm4 = [row for row in rows if row.model_name == "DLRM(4)"]
        assert all(row.emb_fraction > 0.5 for row in dlrm4)

    def test_dlrm6_mlp_heavy(self, rows):
        dlrm6_large_batch = [
            row for row in rows if row.model_name == "DLRM(6)" and row.batch_size >= 16
        ]
        assert all(row.mlp_fraction > row.emb_fraction for row in dlrm6_large_batch)


class TestFigure6:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure6_cache_behaviour(HARPV2_SYSTEM, models=MODELS, batch_sizes=BATCHES)

    def test_emb_miss_rate_grows_with_batch(self, rows):
        for model in MODELS:
            series = [row for row in rows if row.model_name == model.name]
            rates = [row.emb_llc_miss_rate for row in sorted(series, key=lambda r: r.batch_size)]
            assert rates == sorted(rates)

    def test_mlp_miss_rate_below_paper_bound(self, rows):
        assert all(row.mlp_llc_miss_rate < 0.20 for row in rows)

    def test_emb_mpki_exceeds_mlp_mpki_for_big_models_at_batch(self, rows):
        for row in rows:
            if row.model_name == "DLRM(4)" and row.batch_size >= 16:
                assert row.emb_mpki > row.mlp_mpki

    def test_mpki_within_paper_range(self, rows):
        assert all(row.emb_mpki < 8.0 for row in rows)


class TestFigure7:
    def test_throughput_grows_with_batch(self):
        points = figure7_effective_throughput(
            HARPV2_SYSTEM, models=[DLRM4], batch_sizes=[1, 16, 128]
        )
        values = [point.effective_throughput for point in points]
        assert values == sorted(values)

    def test_throughput_far_below_dram_peak(self):
        points = figure7_effective_throughput(HARPV2_SYSTEM, models=MODELS, batch_sizes=BATCHES)
        assert all(point.bandwidth_utilization < 0.35 for point in points)

    def test_lookup_sweep_monotone_in_lookups(self):
        points = figure7_lookup_sweep(
            HARPV2_SYSTEM, batch_sizes=[16], lookups=(1, 10, 100, 800)
        )
        values = [point.effective_throughput for point in points]
        assert values == sorted(values)

    def test_lookup_sweep_x_axis_counts_total_lookups(self):
        points = figure7_lookup_sweep(HARPV2_SYSTEM, batch_sizes=[8], lookups=(10,))
        assert points[0].lookups_per_table == 80


class TestSingleTableModel:
    def test_shape(self):
        model = single_table_model(DLRM4, lookups_per_table=50)
        assert model.num_tables == 1
        assert model.gathers_per_table == 50
        assert model.tables[0].num_rows == DLRM4.tables[0].num_rows

    def test_validation(self):
        with pytest.raises(SimulationError):
            single_table_model(DLRM4, lookups_per_table=0)
