"""Tests for the sensitivity sweeps (footnote 2 and the TensorDIMM contrast)."""

import pytest

from repro.analysis.sensitivity import (
    batch_size_sweep,
    embedding_dim_sweep,
    render_sensitivity,
)
from repro.config import DLRM1, HARPV2_SYSTEM
from repro.errors import SimulationError


class TestEmbeddingDimSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return embedding_dim_sweep(HARPV2_SYSTEM, dims=(32, 128, 512, 1024), batch_size=32)

    def test_cpu_throughput_grows_with_vector_width(self, points):
        values = [point.cpu_throughput for point in points]
        assert values == sorted(values)

    def test_wide_vectors_approach_dram_bandwidth(self, points):
        """Footnote 2: >= 1024-wide vectors push the CPU above 50 GB/s."""
        widest = points[-1]
        assert widest.embedding_dim == 1024
        assert widest.cpu_throughput > 50e9
        assert widest.cpu_fraction_of_peak > 0.65

    def test_narrow_vectors_stay_far_from_peak(self, points):
        assert points[0].embedding_dim == 32
        assert points[0].cpu_fraction_of_peak < 0.25

    def test_centaur_benefit_not_tied_to_vector_width(self, points):
        """Unlike TensorDIMM, Centaur's gather path is width-agnostic: it
        holds ~68% of the link bandwidth across the entire sweep."""
        fractions = [point.centaur_fraction_of_link for point in points]
        assert min(fractions) > 0.6
        assert max(fractions) - min(fractions) < 0.05

    def test_improvement_largest_for_production_widths(self, points):
        assert points[0].centaur_improvement > points[-1].centaur_improvement

    def test_validation(self):
        with pytest.raises(SimulationError):
            embedding_dim_sweep(HARPV2_SYSTEM, dims=(0,))
        with pytest.raises(SimulationError):
            embedding_dim_sweep(HARPV2_SYSTEM, batch_size=0)


class TestBatchSizeSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return batch_size_sweep(HARPV2_SYSTEM, batch_sizes=(128, 1024, 4096))

    def test_cpu_throughput_grows_with_batch(self, points):
        values = [point.cpu_throughput for point in points]
        assert values == sorted(values)

    def test_even_huge_batches_stay_memory_parallelism_limited(self, points):
        """Realistic DLRM gathers never get close to the DRAM peak on the
        CPU, even at batch sizes far beyond inference practice."""
        assert all(point.cpu_fraction_of_peak < 0.5 for point in points)

    def test_reference_model_default_is_dlrm4(self, points):
        assert all(point.embedding_dim == 32 for point in points)

    def test_custom_reference(self):
        points = batch_size_sweep(HARPV2_SYSTEM, reference=DLRM1, batch_sizes=(64,))
        assert len(points) == 1

    def test_validation(self):
        with pytest.raises(SimulationError):
            batch_size_sweep(HARPV2_SYSTEM, batch_sizes=(0,))


class TestRendering:
    def test_render_contains_both_designs(self):
        points = embedding_dim_sweep(HARPV2_SYSTEM, dims=(32, 64), batch_size=8)
        text = render_sensitivity(points, "Embedding width sensitivity")
        assert "Embedding width sensitivity" in text
        assert "CPU GB/s" in text and "Centaur GB/s" in text
