"""Tests for the text rendering of figures and tables."""

import pytest

from repro.analysis import (
    ablation_link_bandwidth,
    figure5_latency_breakdown,
    figure6_cache_behaviour,
    figure7_effective_throughput,
    figure13_centaur_throughput,
    figure14_centaur_breakdown,
    figure15_comparison,
    headline_summary,
    render_ablation,
    render_figure5,
    render_figure6,
    render_figure7,
    render_figure13,
    render_figure14,
    render_figure15,
    render_headline,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    table1_model_configurations,
    table2_fpga_utilization,
    table3_module_resources,
    table4_power,
    table5_related_work,
)
from repro.analysis.report import render_ablation as _render_ablation  # noqa: F401
from repro.config import DLRM1, HARPV2_SYSTEM


@pytest.fixture(scope="module")
def small_kwargs():
    return {"models": [DLRM1], "batch_sizes": [1, 16]}


class TestFigureRendering:
    def test_figure5(self, small_kwargs):
        text = render_figure5(figure5_latency_breakdown(HARPV2_SYSTEM, **small_kwargs))
        assert "Figure 5" in text and "DLRM(1)" in text and "EMB %" in text

    def test_figure6(self, small_kwargs):
        text = render_figure6(figure6_cache_behaviour(HARPV2_SYSTEM, **small_kwargs))
        assert "MPKI" in text

    def test_figure7(self, small_kwargs):
        text = render_figure7(figure7_effective_throughput(HARPV2_SYSTEM, **small_kwargs))
        assert "effective GB/s" in text

    def test_figure13(self, small_kwargs):
        text = render_figure13(figure13_centaur_throughput(HARPV2_SYSTEM, **small_kwargs))
        assert "Centaur GB/s" in text

    def test_figure14(self, small_kwargs):
        text = render_figure14(figure14_centaur_breakdown(HARPV2_SYSTEM, **small_kwargs))
        assert "speedup" in text and "IDX %" in text

    def test_figure15(self, small_kwargs):
        text = render_figure15(figure15_comparison(HARPV2_SYSTEM, **small_kwargs))
        assert "perf Centaur" in text

    def test_ablation(self):
        points = ablation_link_bandwidth(
            HARPV2_SYSTEM, model=DLRM1, batch_size=16, bandwidth_scales=(1.0, 2.0)
        )
        text = render_ablation(points)
        assert "cache-bypass" in text

    def test_headline(self, small_kwargs):
        lines = render_headline(headline_summary(HARPV2_SYSTEM, **small_kwargs))
        assert any("speedup" in line for line in lines)
        assert any("paper" in line for line in lines)


class TestTableRendering:
    def test_table1(self):
        text = render_table1(table1_model_configurations())
        assert "Table I" in text and "DLRM(5)" in text and "3.20 GB" in text

    def test_table2(self):
        text = render_table2(table2_fpga_utilization())
        assert "Table II" in text and "ALM" in text

    def test_table3(self):
        text = render_table3(table3_module_resources())
        assert "Table III" in text and "Reduction unit" in text

    def test_table4(self):
        text = render_table4(table4_power())
        assert "Table IV" in text and "74" in text

    def test_table5(self):
        text = render_table5(table5_related_work())
        assert "Table V" in text and "TensorDIMM" in text
