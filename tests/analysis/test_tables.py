"""Tests for the Tables I-V reproduction."""

import pytest

from repro.analysis.tables import (
    table1_model_configurations,
    table2_fpga_utilization,
    table3_module_resources,
    table4_power,
    table5_related_work,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1_model_configurations()

    def test_six_rows(self, rows):
        assert [row.model_name for row in rows] == [f"DLRM({i})" for i in range(1, 7)]

    def test_table_bytes_match_paper_exactly(self, rows):
        for row in rows:
            assert row.table_bytes == row.paper_table_bytes

    def test_mlp_bytes_close_to_paper(self, rows):
        """MLP layer shapes are not published; sizes land within 25% for the
        5-table models and within a factor of ~7 for the 50-table models
        (whose wide interaction output forces a larger top MLP)."""
        for row in rows:
            assert row.mlp_bytes == pytest.approx(row.paper_mlp_bytes, rel=6.0)
        five_table = [row for row in rows if row.num_tables == 5]
        for row in five_table:
            assert row.mlp_bytes == pytest.approx(row.paper_mlp_bytes, rel=0.25)

    def test_gathers_match_paper(self, rows):
        assert [row.gathers_per_table for row in rows] == [20, 20, 80, 80, 80, 2]


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return {row.resource: row for row in table2_fpga_utilization()}

    def test_all_resources_reported(self, rows):
        assert set(rows) == {"ALM", "Block memory bits", "RAM blocks", "DSP", "PLL"}

    def test_modelled_usage_close_to_paper(self, rows):
        for row in rows.values():
            assert row.used == pytest.approx(row.paper_used, rel=0.06)

    def test_utilization_below_one(self, rows):
        assert all(row.utilization < 1.0 for row in rows.values())

    def test_ram_blocks_are_the_most_utilized_resource(self, rows):
        """The paper's Table II: RAM blocks at 82.5% are the binding constraint."""
        ram_utilization = rows["RAM blocks"].utilization
        assert all(
            ram_utilization >= row.utilization
            for name, row in rows.items()
            if name != "RAM blocks"
        )


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return table3_module_resources()

    def test_every_paper_row_has_a_counterpart(self, rows):
        keys = {row.key for row in rows}
        assert "Sparse/Reduction unit" in keys
        assert "Dense/MLP unit" in keys
        assert "Others/Misc." in keys
        assert len(rows) == 9

    def test_modelled_values_close_to_paper(self, rows):
        for row in rows:
            assert row.paper is not None
            if row.paper["dsp"]:
                assert row.module.dsps == pytest.approx(row.paper["dsp"], rel=0.05)
            if row.paper["mem_bits"]:
                assert row.module.block_memory_bits == pytest.approx(
                    row.paper["mem_bits"], rel=0.06
                )


class TestTable4:
    def test_rows_match_paper(self):
        rows = {row.design_point: row for row in table4_power()}
        assert rows["CPU-only"].watts == rows["CPU-only"].paper_watts == 80.0
        assert rows["CPU-GPU"].watts == rows["CPU-GPU"].paper_watts == 147.0
        assert rows["Centaur"].watts == rows["Centaur"].paper_watts == 74.0


class TestTable5:
    @pytest.fixture(scope="class")
    def rows(self):
        return table5_related_work()

    def test_centaur_checks_every_box(self, rows):
        centaur = rows[-1]
        assert centaur.system.startswith("Centaur")
        assert all(
            [
                centaur.transparent_to_hardware,
                centaur.transparent_to_software,
                centaur.accelerates_dense_dnn,
                centaur.accelerates_gathers,
                centaur.handles_small_vector_loads,
                centaur.studies_recommendation,
            ]
        )

    def test_column_counts_match_paper(self, rows):
        """The number of checkmarks per row of Table V."""
        assert sum(row.transparent_to_hardware for row in rows) == 5
        assert sum(row.transparent_to_software for row in rows) == 5
        assert sum(row.accelerates_dense_dnn for row in rows) == 5
        assert sum(row.accelerates_gathers for row in rows) == 3
        assert sum(row.handles_small_vector_loads for row in rows) == 2
        assert sum(row.studies_recommendation for row in rows) == 2

    def test_only_centaur_and_tensordimm_study_recommendations(self, rows):
        studied = {row.system for row in rows if row.studies_recommendation}
        assert studied == {"TensorDIMM", "Centaur (Ours)"}
