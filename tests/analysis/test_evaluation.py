"""Tests for the Figures 13-15 evaluation harness and headline summary."""

import pytest

from repro.analysis.evaluation import (
    ablation_link_bandwidth,
    figure13_centaur_throughput,
    figure13_lookup_sweep,
    figure14_centaur_breakdown,
    figure15_comparison,
    headline_summary,
)
from repro.config import DLRM1, DLRM4, DLRM6, HARPV2_SYSTEM
from repro.errors import SimulationError

MODELS = [DLRM1, DLRM4, DLRM6]
BATCHES = [1, 16, 128]


class TestFigure13:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure13_centaur_throughput(HARPV2_SYSTEM, models=MODELS, batch_sizes=BATCHES)

    def test_row_count(self, rows):
        assert len(rows) == len(MODELS) * len(BATCHES)

    def test_centaur_peaks_near_paper_value(self, rows):
        best = max(row.centaur_throughput for row in rows)
        assert 1.1e10 < best < 1.25e10

    def test_improvement_largest_at_batch_one(self, rows):
        for model in MODELS:
            series = {row.batch_size: row.improvement for row in rows if row.model_name == model.name}
            assert series[1] > series[128]

    def test_crossover_at_large_batch_for_dlrm4(self, rows):
        dlrm4 = {row.batch_size: row for row in rows if row.model_name == "DLRM(4)"}
        assert dlrm4[1].improvement > 1.0
        assert dlrm4[128].improvement < 1.0

    def test_lookup_sweep_grows_with_lookups(self):
        rows = figure13_lookup_sweep(HARPV2_SYSTEM, batch_sizes=[16], lookups=(1, 50, 800))
        values = [row.centaur_throughput for row in rows]
        assert values == sorted(values)


class TestFigure14:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure14_centaur_breakdown(HARPV2_SYSTEM, models=MODELS, batch_sizes=BATCHES)

    def test_fractions_sum_to_one(self, rows):
        for row in rows:
            assert row.fractions_sum() == pytest.approx(1.0)

    def test_speedups_within_paper_ballpark(self, rows):
        speedups = [row.speedup for row in rows]
        assert max(speedups) > 5.0
        assert min(speedups) > 0.5
        assert max(speedups) < 25.0

    def test_small_batches_always_win(self, rows):
        assert all(row.speedup > 1.0 for row in rows if row.batch_size <= 16)

    def test_emb_dominates_centaur_time_for_embedding_heavy_model(self, rows):
        dlrm4_rows = [row for row in rows if row.model_name == "DLRM(4)" and row.batch_size >= 16]
        assert all(row.emb_fraction > 0.4 for row in dlrm4_rows)


class TestFigure15:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure15_comparison(HARPV2_SYSTEM, models=MODELS, batch_sizes=BATCHES)

    def test_normalization_to_cpu_gpu(self, rows):
        assert all(row.cpu_gpu_performance == 1.0 for row in rows)
        assert all(row.cpu_gpu_efficiency == 1.0 for row in rows)

    def test_centaur_is_best_design_point_nearly_everywhere(self, rows):
        wins = sum(
            1
            for row in rows
            if row.centaur_performance >= max(1.0, row.cpu_only_performance) * 0.95
        )
        assert wins >= len(rows) - 2

    def test_centaur_efficiency_exceeds_its_performance(self, rows):
        """Centaur draws the least power, so normalized efficiency > performance."""
        assert all(row.centaur_efficiency > row.centaur_performance for row in rows)

    def test_derived_ratios_consistent(self, rows):
        for row in rows:
            assert row.centaur_speedup_over_cpu == pytest.approx(
                row.centaur_performance / row.cpu_only_performance
            )


class TestAblation:
    def test_bandwidth_scaling_improves_gather_throughput(self):
        points = ablation_link_bandwidth(
            HARPV2_SYSTEM, model=DLRM4, batch_size=64, bandwidth_scales=(1.0, 2.0, 4.0),
            include_bypass=False,
        )
        throughputs = [point.gather_throughput for point in points]
        assert throughputs == sorted(throughputs)
        assert points[0].speedup_over_harpv2 == pytest.approx(1.0)
        assert points[-1].speedup_over_harpv2 > 1.3

    def test_bypass_point_reported(self):
        points = ablation_link_bandwidth(
            HARPV2_SYSTEM, model=DLRM4, batch_size=32, bandwidth_scales=(1.0,),
            include_bypass=True,
        )
        assert points[-1].cache_bypass
        assert points[-1].gather_throughput > points[0].gather_throughput

    def test_validation(self):
        with pytest.raises(SimulationError):
            ablation_link_bandwidth(HARPV2_SYSTEM, batch_size=0)
        with pytest.raises(SimulationError):
            ablation_link_bandwidth(HARPV2_SYSTEM, bandwidth_scales=(0.0,))


class TestHeadlineSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        return headline_summary(HARPV2_SYSTEM, models=MODELS, batch_sizes=BATCHES)

    def test_contains_all_metrics(self, summary):
        for key in (
            "centaur_speedup_min",
            "centaur_speedup_max",
            "centaur_efficiency_max",
            "gather_bw_improvement_mean",
            "cpu_vs_gpu_performance_geomean",
        ):
            assert key in summary

    def test_headline_shapes(self, summary):
        assert summary["centaur_speedup_max"] > 5.0
        assert summary["centaur_efficiency_max"] > summary["centaur_speedup_max"]
        assert summary["gather_bw_improvement_mean"] > 3.0
        assert 0.7 < summary["cpu_vs_gpu_performance_geomean"] < 1.6
        assert summary["cpu_vs_gpu_efficiency_geomean"] > 1.3
