"""Unit tests for sharding plans and placement strategies."""

import numpy as np
import pytest

from repro.config.models import DLRMConfig, EmbeddingTableConfig, MLPConfig, homogeneous_dlrm
from repro.errors import ConfigurationError
from repro.sharding import (
    GreedyBalancedSharding,
    RowWiseHashSharding,
    ShardingPlan,
    TableWiseSharding,
    make_plan,
    parse_sharding_spec,
)


@pytest.fixture(scope="module")
def model():
    return homogeneous_dlrm(
        name="plan-test",
        num_tables=6,
        rows_per_table=2_000,
        gathers_per_table=4,
        embedding_dim=16,
    )


def lopsided_model():
    """Tables of very different sizes, to separate greedy from round-robin."""
    tables = tuple(
        EmbeddingTableConfig(num_rows=rows, embedding_dim=16, gathers=2)
        for rows in (50_000, 1_000, 1_000, 1_000, 1_000, 1_000)
    )
    interaction_dim = 16 + (len(tables) + 1) * len(tables) // 2
    return DLRMConfig(
        name="lopsided",
        tables=tables,
        num_dense_features=13,
        bottom_mlp=MLPConfig(layer_dims=(13, 16)),
        top_mlp=MLPConfig(layer_dims=(interaction_dim, 1)),
    )


class TestTableWise:
    def test_round_robin_assignment(self, model):
        plan = make_plan(model, 3, "table")
        assert plan.table_owner == (0, 1, 2, 0, 1, 2)
        assert plan.strategy == "table"
        assert not plan.row_wise

    def test_owner_of_broadcasts_the_table_owner(self, model):
        plan = make_plan(model, 3, "table")
        rows = np.array([0, 17, 1_999])
        assert plan.owner_of(4, rows).tolist() == [1, 1, 1]

    def test_uniform_tables_balance_perfectly(self, model):
        plan = make_plan(model, 3, "table")
        assert plan.imbalance == pytest.approx(1.0)


class TestRowWise:
    def test_every_row_owned_by_exactly_one_shard(self, model):
        plan = make_plan(model, 4, "row")
        rows = np.arange(model.tables[0].num_rows)
        owners = plan.owner_of(0, rows)
        assert owners.min() >= 0 and owners.max() < 4
        # Re-asking gives the same answer: ownership is a pure function.
        assert np.array_equal(owners, plan.owner_of(0, rows))

    def test_rows_spread_over_all_shards(self, model):
        plan = make_plan(model, 4, "row")
        owners = plan.owner_of(0, np.arange(2_000))
        counts = np.bincount(owners, minlength=4)
        assert (counts > 0).all()
        # Hashing balances to within a few percent at this scale.
        assert counts.max() / counts.mean() < 1.2

    def test_tables_hash_independently(self, model):
        plan = make_plan(model, 4, "row")
        rows = np.arange(500)
        assert not np.array_equal(plan.owner_of(0, rows), plan.owner_of(1, rows))

    def test_hash_seed_changes_placement(self, model):
        rows = np.arange(500)
        base = RowWiseHashSharding(hash_seed=0).build(model, 4)
        other = RowWiseHashSharding(hash_seed=7).build(model, 4)
        assert not np.array_equal(base.owner_of(0, rows), other.owner_of(0, rows))

    def test_shard_bytes_are_exact(self, model):
        plan = make_plan(model, 4, "row")
        assert sum(plan.shard_bytes) == pytest.approx(model.embedding_table_bytes)


class TestGreedy:
    def test_greedy_beats_round_robin_on_lopsided_tables(self):
        model = lopsided_model()
        greedy = make_plan(model, 2, "greedy")
        table_wise = make_plan(model, 2, "table")
        assert greedy.imbalance < table_wise.imbalance
        # The huge table sits alone; the five small ones share a shard.
        huge_owner = greedy.table_owner[0]
        assert all(owner != huge_owner for owner in greedy.table_owner[1:])

    def test_deterministic_placement(self, model):
        first = GreedyBalancedSharding().build(model, 3)
        second = GreedyBalancedSharding().build(model, 3)
        assert first.table_owner == second.table_owner


class TestCapacity:
    def test_overflowing_capacity_rejected(self):
        model = lopsided_model()
        heaviest = max(make_plan(model, 2, "greedy").shard_bytes)
        with pytest.raises(ConfigurationError):
            make_plan(model, 2, "greedy", capacity_bytes=heaviest - 1)

    def test_sufficient_capacity_accepted(self):
        model = lopsided_model()
        heaviest = max(make_plan(model, 2, "greedy").shard_bytes)
        plan = make_plan(model, 2, "greedy", capacity_bytes=heaviest)
        assert plan.capacity_bytes == heaviest

    def test_row_wise_capacity_checked_exactly(self, model):
        heaviest = max(make_plan(model, 4, "row").shard_bytes)
        with pytest.raises(ConfigurationError):
            make_plan(model, 4, "row", capacity_bytes=heaviest / 2)


class TestValidation:
    def test_zero_shards_rejected(self, model):
        with pytest.raises(ConfigurationError):
            make_plan(model, 0, "table")

    def test_unknown_strategy_rejected(self, model):
        with pytest.raises(ConfigurationError):
            make_plan(model, 2, "mystery")

    def test_wrong_owner_count_rejected(self, model):
        with pytest.raises(ConfigurationError):
            ShardingPlan(model=model, num_shards=2, strategy="manual", table_owner=(0, 1))

    def test_out_of_range_owner_rejected(self, model):
        with pytest.raises(ConfigurationError):
            ShardingPlan(
                model=model,
                num_shards=2,
                strategy="manual",
                table_owner=(0, 1, 2, 0, 1, 0),
            )

    def test_out_of_range_table_rejected(self, model):
        plan = make_plan(model, 2, "table")
        with pytest.raises(ConfigurationError):
            plan.owner_of(model.num_tables, np.arange(4))

    def test_negative_hash_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            RowWiseHashSharding(hash_seed=-1)

    def test_negative_hash_seed_rejected_at_plan_construction(self, model):
        # A directly-built plan must fail here, not with a numpy
        # OverflowError at the first owner_of() call mid-serve.
        with pytest.raises(ConfigurationError):
            ShardingPlan(model=model, num_shards=2, strategy="row", hash_seed=-1)

    def test_describe_mentions_strategy(self, model):
        assert "row" in make_plan(model, 2, "row").describe()


class TestSpecParsing:
    def test_count_only_defaults_to_table(self):
        assert parse_sharding_spec("4") == (4, "table")

    def test_count_and_strategy(self):
        assert parse_sharding_spec("8:row") == (8, "row")
        assert parse_sharding_spec("2:greedy") == (2, "greedy")

    @pytest.mark.parametrize("spec", ["", "x:row", "0:table", "4:mystery"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_sharding_spec(spec)
