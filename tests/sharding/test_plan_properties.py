"""Property-based invariants of sharding plans.

Whatever the strategy, shard count or model shape, a plan must be a *true
partition* of the model's ``(table, row)`` space: every pair is owned by
exactly one shard (ownership is total, single-valued and deterministic),
the per-shard resident bytes sum to the model's total embedding bytes (no
row lost or duplicated), and a declared per-shard capacity is never
exceeded by a successfully built plan.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config.models import (
    DLRMConfig,
    EmbeddingTableConfig,
    MLPConfig,
)
from repro.errors import ConfigurationError
from repro.sharding import STRATEGIES, make_plan


def build_model(row_counts, embedding_dim):
    tables = tuple(
        EmbeddingTableConfig(num_rows=rows, embedding_dim=embedding_dim, gathers=2)
        for rows in row_counts
    )
    interaction_dim = embedding_dim + (len(tables) + 1) * len(tables) // 2
    return DLRMConfig(
        name=f"prop-{len(tables)}x{embedding_dim}",
        tables=tables,
        num_dense_features=13,
        bottom_mlp=MLPConfig(layer_dims=(13, embedding_dim)),
        top_mlp=MLPConfig(layer_dims=(interaction_dim, 1)),
    )


MODEL_STRATEGY = st.builds(
    build_model,
    row_counts=st.lists(
        st.integers(min_value=1, max_value=5_000), min_size=1, max_size=12
    ),
    embedding_dim=st.sampled_from([8, 16, 32]),
)
PLAN_AXES = st.tuples(
    st.integers(min_value=1, max_value=9),
    st.sampled_from(sorted(STRATEGIES)),
)


class TestPartitionProperty:
    @given(model=MODEL_STRATEGY, axes=PLAN_AXES)
    @settings(max_examples=60, deadline=None)
    def test_every_table_row_owned_by_exactly_one_shard(self, model, axes):
        num_shards, strategy = axes
        plan = make_plan(model, num_shards, strategy)
        for table_index, table in enumerate(model.tables):
            rows = np.arange(table.num_rows, dtype=np.int64)
            owners = plan.owner_of(table_index, rows)
            # Total: one owner per row...
            assert owners.shape == rows.shape
            # ...in range...
            assert owners.min() >= 0
            assert owners.max() < num_shards
            # ...and single-valued: re-asking never reassigns a row.
            assert np.array_equal(owners, plan.owner_of(table_index, rows))

    @given(model=MODEL_STRATEGY, axes=PLAN_AXES)
    @settings(max_examples=60, deadline=None)
    def test_shard_bytes_conserve_the_model(self, model, axes):
        num_shards, strategy = axes
        plan = make_plan(model, num_shards, strategy)
        assert sum(plan.shard_bytes) == pytest.approx(model.embedding_table_bytes)
        assert all(value >= 0 for value in plan.shard_bytes)
        assert plan.imbalance >= 1.0 - 1e-12

    @given(model=MODEL_STRATEGY, axes=PLAN_AXES)
    @settings(max_examples=40, deadline=None)
    def test_capacity_is_respected_or_construction_fails(self, model, axes):
        num_shards, strategy = axes
        unconstrained = make_plan(model, num_shards, strategy)
        heaviest = max(unconstrained.shard_bytes)
        # At the heaviest shard's size the plan builds and never overflows.
        plan = make_plan(model, num_shards, strategy, capacity_bytes=heaviest)
        assert max(plan.shard_bytes) <= plan.capacity_bytes
        # Below it, construction must refuse rather than overflow silently.
        if heaviest > 1:
            with pytest.raises(ConfigurationError):
                make_plan(model, num_shards, strategy, capacity_bytes=heaviest - 1)
