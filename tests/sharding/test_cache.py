"""Unit tests for the hot-row embedding cache (LRU / LFU) and its specs."""

import numpy as np
import pytest

from repro.config.models import homogeneous_dlrm
from repro.errors import ConfigurationError
from repro.sharding import CacheConfig, EmbeddingCache, parse_cache_spec


def rows(*values):
    return np.asarray(values, dtype=np.int64)


class TestLRU:
    def test_cold_rows_miss_then_hit(self):
        cache = EmbeddingCache(capacity_rows=4, policy="lru")
        first = cache.lookup(0, rows(1, 2, 3))
        assert first.tolist() == [False, False, False]
        second = cache.lookup(0, rows(1, 2, 3))
        assert second.tolist() == [True, True, True]
        assert cache.stats.accesses == 6
        assert cache.stats.hits == 3
        assert cache.evictions == 0

    def test_least_recently_used_row_evicted(self):
        cache = EmbeddingCache(capacity_rows=2, policy="lru")
        cache.lookup(0, rows(1, 2))
        cache.lookup(0, rows(1))      # refresh 1; 2 is now LRU
        cache.lookup(0, rows(3))      # evicts 2
        assert cache.evictions == 1
        assert cache.lookup(0, rows(1)).tolist() == [True]
        assert cache.lookup(0, rows(2)).tolist() == [False]

    def test_repeated_row_in_one_call_hits_its_second_occurrence(self):
        cache = EmbeddingCache(capacity_rows=4, policy="lru")
        assert cache.lookup(0, rows(7, 7, 7)).tolist() == [False, True, True]

    def test_tables_are_distinct_key_spaces(self):
        cache = EmbeddingCache(capacity_rows=4, policy="lru")
        cache.lookup(0, rows(5))
        assert cache.lookup(1, rows(5)).tolist() == [False]


class TestLFU:
    def test_least_frequent_row_evicted(self):
        cache = EmbeddingCache(capacity_rows=2, policy="lfu")
        cache.lookup(0, rows(1, 1, 1))   # freq(1) = 3
        cache.lookup(0, rows(2))         # freq(2) = 1
        cache.lookup(0, rows(3))         # evicts 2 (lowest frequency)
        assert cache.lookup(0, rows(1)).tolist() == [True]
        assert cache.lookup(0, rows(2)).tolist() == [False]

    def test_frequency_tie_breaks_toward_oldest_access(self):
        cache = EmbeddingCache(capacity_rows=2, policy="lfu")
        cache.lookup(0, rows(1))
        cache.lookup(0, rows(2))         # both freq 1; 1 accessed earlier
        cache.lookup(0, rows(3))         # evicts 1
        assert cache.lookup(0, rows(2)).tolist() == [True]
        assert cache.lookup(0, rows(1)).tolist() == [False]

    def test_heap_memory_stays_bounded_over_long_hit_streams(self):
        """Lazy deletion must not retain one snapshot per access forever."""
        cache = EmbeddingCache(capacity_rows=32, policy="lfu")
        hot = np.arange(32, dtype=np.int64)
        for _ in range(500):
            cache.lookup(0, hot)
        assert cache.stats.hits > 15_000
        assert len(cache._heap) <= 2 * 32 + 16
        # Compaction must not corrupt eviction order: the oldest-by-tick
        # resident is still the one a tie evicts.
        assert len(cache) == 32

    def test_hot_rows_survive_a_cold_scan(self):
        cache = EmbeddingCache(capacity_rows=8, policy="lfu")
        hot = rows(0, 1, 2, 3)
        for _ in range(5):
            cache.lookup(0, hot)
        cache.lookup(0, np.arange(100, 140, dtype=np.int64))  # cold scan
        assert cache.lookup(0, hot).all(), "frequent rows must outlive the scan"


class TestEvictionAccounting:
    def test_lru_duplicate_rows_in_one_lookup_count_exact_evictions(self):
        cache = EmbeddingCache(capacity_rows=2, policy="lru")
        hits = cache.lookup(0, rows(5, 5, 6, 7, 5))
        # 5 miss, 5 hit, 6 miss (fills), 7 miss (evicts 5 — its hit made 6
        # the newer entry but 5 the older *insert*... recency order is
        # [5, 6] after the hit refresh, so 5 is evicted), 5 miss again.
        assert hits.tolist() == [False, True, False, False, False]
        assert cache.stats.accesses == 5
        assert cache.stats.hits == 1
        assert cache.stats.misses == 4
        assert cache.evictions == 2

    def test_lfu_duplicate_rows_in_one_lookup_count_exact_evictions(self):
        cache = EmbeddingCache(capacity_rows=2, policy="lfu")
        hits = cache.lookup(0, rows(5, 5, 6, 7, 5))
        # 5 miss, 5 hit (freq 2), 6 miss (fills), 7 miss (evicts 6, the
        # lowest-frequency entry), 5 hit (freq 3, still resident).
        assert hits.tolist() == [False, True, False, False, True]
        assert cache.stats.accesses == 5
        assert cache.stats.hits == 2
        assert cache.stats.misses == 3
        assert cache.evictions == 1

    def test_lfu_compaction_fires_and_preserves_eviction_order(self):
        cache = EmbeddingCache(capacity_rows=2, policy="lfu")
        cache.lookup(0, rows(1, 2))
        # Each hit pushes one heap snapshot; the lazy heap compacts once it
        # crosses 2 * len(cache) + 16 = 20 entries, back down to one
        # snapshot per resident row.
        for _ in range(30):
            cache.lookup(0, rows(1))
        assert len(cache._heap) <= 2 * len(cache) + 16
        assert cache.stats.hits == 30
        # Compaction must not corrupt the order: the cold row 2 (freq 1)
        # is evicted, not the hot row 1 (freq 31).
        cache.lookup(0, rows(9))
        assert cache.evictions == 1
        assert (0, 1) in cache
        assert (0, 2) not in cache


class TestFreshness:
    """The invalidate / refresh / mark_stale API behind update streams."""

    @pytest.mark.parametrize("policy", ["lru", "lfu"])
    def test_invalidate_drops_rows_and_counts_apart_from_evictions(self, policy):
        cache = EmbeddingCache(capacity_rows=8, policy=policy)
        cache.lookup(0, rows(1, 2, 3))
        removed = cache.invalidate(0, rows(2, 3, 99))  # 99 absent: no-op
        assert removed == 2
        assert cache.update_evictions == 2
        assert cache.evictions == 0
        assert cache.lookup(0, rows(1, 2, 3)).tolist() == [True, False, False]

    def test_lru_refresh_does_not_touch_recency(self):
        cache = EmbeddingCache(capacity_rows=2, policy="lru")
        cache.lookup(0, rows(1, 2))
        assert cache.refresh(0, rows(1)) == 1
        assert cache.update_refreshes == 1
        cache.lookup(0, rows(3))  # evicts 1: the refresh was not a read
        assert (0, 1) not in cache
        assert (0, 2) in cache

    def test_lfu_refresh_does_not_touch_frequency(self):
        cache = EmbeddingCache(capacity_rows=2, policy="lfu")
        cache.lookup(0, rows(1))
        cache.lookup(0, rows(2, 2))  # freq(2) = 2 > freq(1) = 1
        cache.refresh(0, rows(1))
        cache.lookup(0, rows(3))  # still evicts 1, the least frequent
        assert (0, 1) not in cache
        assert (0, 2) in cache

    @pytest.mark.parametrize("policy", ["lru", "lfu"])
    def test_refresh_does_not_allocate_absent_rows(self, policy):
        cache = EmbeddingCache(capacity_rows=8, policy=policy)
        assert cache.refresh(0, rows(7)) == 0
        assert (0, 7) not in cache
        assert cache.update_refreshes == 0

    @pytest.mark.parametrize("policy", ["lru", "lfu"])
    def test_mark_stale_counts_hits_until_refreshed(self, policy):
        cache = EmbeddingCache(capacity_rows=8, policy=policy)
        cache.lookup(0, rows(1, 2))
        assert cache.mark_stale(0, rows(1, 99)) == 1  # 99 absent
        assert cache.lookup(0, rows(1, 2)).all()
        assert cache.stale_hits == 1
        cache.refresh(0, rows(1))
        cache.lookup(0, rows(1))
        assert cache.stale_hits == 1  # refresh cleared the mark

    def test_lfu_heap_stays_consistent_after_invalidate(self):
        cache = EmbeddingCache(capacity_rows=2, policy="lfu")
        cache.lookup(0, rows(1, 2))
        cache.invalidate(0, rows(1))
        # The heap still holds a stale snapshot of row 1; eviction must
        # skip it and evict the true least-frequent resident.
        cache.lookup(0, rows(3, 4))
        assert cache.evictions == 1
        assert (0, 2) not in cache
        assert (0, 4) in cache

    def test_apply_update_dispatches_and_rejects_bad_modes(self):
        cache = EmbeddingCache(capacity_rows=8, policy="lru")
        cache.lookup(0, rows(1, 2, 3))
        assert cache.apply_update(0, rows(1), "invalidate") == 1
        assert cache.apply_update(0, rows(2), "write-through") == 1
        assert cache.apply_update(0, rows(3), "ignore") == 1
        assert cache.update_evictions == 1
        assert cache.update_refreshes == 1
        with pytest.raises(ConfigurationError):
            cache.apply_update(0, rows(1), "drop")


class TestDeterminism:
    @pytest.mark.parametrize("policy", ["lru", "lfu"])
    def test_same_stream_produces_identical_stats(self, policy):
        stream = np.random.default_rng(3).integers(0, 50, size=400)
        a = EmbeddingCache(capacity_rows=16, policy=policy, seed=1)
        b = EmbeddingCache(capacity_rows=16, policy=policy, seed=1)
        hits_a = [a.lookup(0, chunk) for chunk in np.split(stream, 8)]
        hits_b = [b.lookup(0, chunk) for chunk in np.split(stream, 8)]
        for left, right in zip(hits_a, hits_b):
            assert np.array_equal(left, right)
        assert a.stats.to_dict() == b.stats.to_dict()
        assert a.evictions == b.evictions

    @pytest.mark.parametrize("policy", ["lru", "lfu"])
    def test_stats_stay_consistent(self, policy):
        cache = EmbeddingCache(capacity_rows=8, policy=policy)
        cache.lookup(0, np.random.default_rng(5).integers(0, 30, size=200))
        cache.stats.validate()
        assert len(cache) <= 8


class TestValidation:
    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            EmbeddingCache(capacity_rows=0)

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            EmbeddingCache(capacity_rows=4, policy="mru")

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            EmbeddingCache(capacity_rows=4, seed=-1)


class TestCacheConfig:
    def test_rows_capacity_passes_through(self):
        model = homogeneous_dlrm(
            name="cfg", num_tables=2, rows_per_table=100, gathers_per_table=2
        )
        cache = CacheConfig(policy="lfu", capacity_rows=64).build(model)
        assert cache.capacity_rows == 64
        assert cache.policy == "lfu"

    def test_byte_capacity_resolves_against_row_bytes(self):
        model = homogeneous_dlrm(
            name="cfg-bytes",
            num_tables=2,
            rows_per_table=100,
            gathers_per_table=2,
            embedding_dim=32,  # 128-byte rows
        )
        config = CacheConfig(policy="lru", capacity_bytes=128 * 10)
        assert config.resolve_rows(model) == 10

    def test_byte_capacity_below_one_row_rejected(self):
        model = homogeneous_dlrm(
            name="cfg-tiny", num_tables=1, rows_per_table=10, gathers_per_table=1
        )
        with pytest.raises(ConfigurationError):
            CacheConfig(capacity_bytes=8).resolve_rows(model)

    def test_byte_capacity_tracks_the_dtype_width(self, monkeypatch):
        """Regression: sizing used a hardcoded ``embedding_dim * 4`` instead
        of the DTYPE_BYTES-derived ``row_bytes``, so a wider dtype silently
        doubled the row budget."""
        model = homogeneous_dlrm(
            name="cfg-dtype",
            num_tables=2,
            rows_per_table=100,
            gathers_per_table=2,
            embedding_dim=32,
        )
        config = CacheConfig(policy="lru", capacity_bytes=128 * 10)
        assert config.resolve_rows(model) == 10
        monkeypatch.setattr("repro.config.models.DTYPE_BYTES", 8)
        assert config.resolve_rows(model) == 5

    def test_exactly_one_capacity_required(self):
        with pytest.raises(ConfigurationError):
            CacheConfig()
        with pytest.raises(ConfigurationError):
            CacheConfig(capacity_rows=4, capacity_bytes=4096)

    def test_describe_round_trips_through_the_spec_parser(self):
        config = CacheConfig(policy="lfu", capacity_rows=128)
        assert parse_cache_spec(config.describe()) == config


class TestSpecParsing:
    def test_rows_spec(self):
        config = parse_cache_spec("lru:rows=4096")
        assert config == CacheConfig(policy="lru", capacity_rows=4096)

    def test_bytes_spec(self):
        config = parse_cache_spec("lfu:bytes=1048576")
        assert config == CacheConfig(policy="lfu", capacity_bytes=1048576)

    def test_bare_count_means_rows(self):
        assert parse_cache_spec("lru:512") == CacheConfig(policy="lru", capacity_rows=512)

    @pytest.mark.parametrize("spec", [None, "", "off", "none"])
    def test_disabled_specs(self, spec):
        assert parse_cache_spec(spec) is None

    @pytest.mark.parametrize("spec", ["lru", "mru:rows=4", "lru:pages=4", "lru:rows=x"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_cache_spec(spec)
