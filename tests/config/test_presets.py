"""Tests for the Table I and hardware presets."""

import pytest

from repro.config import (
    DLRM1,
    DLRM2,
    DLRM3,
    DLRM4,
    DLRM5,
    DLRM6,
    HARPV2_SYSTEM,
    PAPER_BATCH_SIZES,
    PAPER_MODELS,
    dlrm_preset,
)


class TestTable1Presets:
    def test_six_models_in_order(self):
        assert len(PAPER_MODELS) == 6
        assert [m.name for m in PAPER_MODELS] == [f"DLRM({i})" for i in range(1, 7)]

    @pytest.mark.parametrize(
        "model, tables, gathers",
        [
            (DLRM1, 5, 20),
            (DLRM2, 50, 20),
            (DLRM3, 5, 80),
            (DLRM4, 50, 80),
            (DLRM5, 50, 80),
            (DLRM6, 5, 2),
        ],
    )
    def test_table_and_gather_counts(self, model, tables, gathers):
        assert model.num_tables == tables
        assert model.gathers_per_table == gathers

    @pytest.mark.parametrize(
        "model, expected_bytes",
        [
            (DLRM1, 128_000_000),
            (DLRM2, 1_280_000_000),
            (DLRM3, 128_000_000),
            (DLRM4, 1_280_000_000),
            (DLRM5, 3_200_000_000),
            (DLRM6, 128_000_000),
        ],
    )
    def test_embedding_footprints_match_table1(self, model, expected_bytes):
        assert model.embedding_table_bytes == expected_bytes

    def test_embedding_dim_is_32_everywhere(self):
        assert all(m.embedding_dim == 32 for m in PAPER_MODELS)

    def test_dlrm6_has_the_heaviest_mlp(self):
        assert DLRM6.mlp_parameter_bytes > DLRM1.mlp_parameter_bytes
        # The paper quotes ~557 KB; the reproduction's layer shapes land within 25%.
        assert DLRM6.mlp_parameter_bytes == pytest.approx(557_000, rel=0.25)

    def test_small_models_mlp_close_to_paper(self):
        # DLRM(1)/(3) quote 57.4 KB; the chosen layer shapes land within 25%.
        assert DLRM1.mlp_parameter_bytes == pytest.approx(57_400, rel=0.25)

    def test_batch_sweep_matches_paper(self):
        assert PAPER_BATCH_SIZES == (1, 4, 16, 32, 64, 128)


class TestPresetLookup:
    def test_lookup_by_index(self):
        assert dlrm_preset(3) is DLRM3

    def test_lookup_by_name(self):
        assert dlrm_preset("DLRM(5)") is DLRM5

    def test_unknown_index_raises(self):
        with pytest.raises(KeyError):
            dlrm_preset(0)
        with pytest.raises(KeyError):
            dlrm_preset(7)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            dlrm_preset("DLRM(99)")


class TestHardwarePresets:
    def test_harpv2_system_is_consistent(self):
        assert HARPV2_SYSTEM.cpu.num_cores == 14
        assert HARPV2_SYSTEM.memory.peak_bandwidth == pytest.approx(77e9)
        assert HARPV2_SYSTEM.link.theoretical_bandwidth == pytest.approx(28.8e9)
        assert HARPV2_SYSTEM.fpga.frequency_hz == pytest.approx(200e6)
        assert HARPV2_SYSTEM.power.centaur_watts == 74.0

    def test_link_slower_than_dram(self):
        # The HARPv2 link is the gather bottleneck relative to DRAM bandwidth.
        assert HARPV2_SYSTEM.link.effective_bandwidth < HARPV2_SYSTEM.memory.peak_bandwidth

    def test_embedding_tables_do_not_fit_in_gpu_memory(self):
        # The reason the CPU-GPU design keeps tables in host memory (Section IV-A).
        assert DLRM5.embedding_table_bytes < HARPV2_SYSTEM.gpu.memory_capacity_bytes
        total = sum(m.embedding_table_bytes for m in PAPER_MODELS)
        assert total > HARPV2_SYSTEM.gpu.memory_capacity_bytes / 8
