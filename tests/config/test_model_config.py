"""Tests for DLRM model configuration dataclasses."""

import pytest
from hypothesis import given, strategies as st

from repro.config.models import (
    DLRMConfig,
    EmbeddingTableConfig,
    MLPConfig,
    homogeneous_dlrm,
)
from repro.errors import ConfigurationError


class TestEmbeddingTableConfig:
    def test_row_and_table_bytes(self):
        table = EmbeddingTableConfig(num_rows=1000, embedding_dim=32)
        assert table.row_bytes == 128
        assert table.table_bytes == 128_000

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            EmbeddingTableConfig(num_rows=0)
        with pytest.raises(ConfigurationError):
            EmbeddingTableConfig(num_rows=10, embedding_dim=0)
        with pytest.raises(ConfigurationError):
            EmbeddingTableConfig(num_rows=10, gathers=0)


class TestMLPConfig:
    def test_parameter_count_includes_biases(self):
        mlp = MLPConfig(layer_dims=(4, 8, 2))
        assert mlp.num_parameters == 4 * 8 + 8 + 8 * 2 + 2

    def test_flops_per_sample(self):
        mlp = MLPConfig(layer_dims=(4, 8, 2))
        assert mlp.flops_per_sample() == 2 * (4 * 8 + 8 * 2)

    def test_needs_at_least_two_dims(self):
        with pytest.raises(ConfigurationError):
            MLPConfig(layer_dims=(4,))

    def test_with_output_dim(self):
        mlp = MLPConfig(layer_dims=(4, 8, 2)).with_output_dim(5)
        assert mlp.layer_dims == (4, 8, 5)

    @given(st.lists(st.integers(min_value=1, max_value=64), min_size=2, max_size=6))
    def test_parameter_bytes_is_4x_count(self, dims):
        mlp = MLPConfig(layer_dims=tuple(dims))
        assert mlp.parameter_bytes == 4 * mlp.num_parameters


class TestDLRMConfig:
    def test_homogeneous_builder_produces_consistent_shapes(self):
        config = homogeneous_dlrm("m", num_tables=5, rows_per_table=100, gathers_per_table=3)
        assert config.num_tables == 5
        assert config.gathers_per_table == 3
        assert config.bottom_mlp.output_dim == config.embedding_dim
        assert config.top_mlp.input_dim == config.interaction_output_dim

    def test_interaction_dimensions(self):
        config = homogeneous_dlrm("m", num_tables=5, rows_per_table=100, gathers_per_table=3)
        assert config.num_interaction_vectors == 6
        assert config.num_interaction_pairs == 15
        assert config.interaction_output_dim == 15 + 32

    def test_embedding_bytes_per_sample(self):
        config = homogeneous_dlrm("m", num_tables=2, rows_per_table=100, gathers_per_table=4)
        assert config.embedding_bytes_per_sample() == 2 * 4 * 32 * 4

    def test_reduction_flops(self):
        config = homogeneous_dlrm("m", num_tables=2, rows_per_table=100, gathers_per_table=4)
        assert config.reduction_flops_per_sample() == 2 * 3 * 32

    def test_total_dense_flops_positive(self):
        config = homogeneous_dlrm("m", num_tables=2, rows_per_table=100, gathers_per_table=4)
        assert config.total_dense_flops_per_sample() > 0

    def test_with_gathers_per_table(self):
        config = homogeneous_dlrm("m", num_tables=2, rows_per_table=100, gathers_per_table=4)
        modified = config.with_gathers_per_table(9)
        assert modified.gathers_per_table == 9
        assert config.gathers_per_table == 4

    def test_with_num_tables_resizes_top_mlp(self):
        config = homogeneous_dlrm("m", num_tables=2, rows_per_table=100, gathers_per_table=4)
        modified = config.with_num_tables(10)
        assert modified.num_tables == 10
        assert modified.top_mlp.input_dim == modified.interaction_output_dim

    def test_rejects_mismatched_bottom_mlp(self):
        table = EmbeddingTableConfig(num_rows=10, embedding_dim=32)
        with pytest.raises(ConfigurationError):
            DLRMConfig(
                name="bad",
                tables=(table,),
                bottom_mlp=MLPConfig(layer_dims=(13, 16)),  # output != 32
                top_mlp=MLPConfig(layer_dims=(33, 1)),
            )

    def test_rejects_mismatched_top_mlp(self):
        table = EmbeddingTableConfig(num_rows=10, embedding_dim=32)
        with pytest.raises(ConfigurationError):
            DLRMConfig(
                name="bad",
                tables=(table,),
                bottom_mlp=MLPConfig(layer_dims=(13, 32)),
                top_mlp=MLPConfig(layer_dims=(10, 1)),  # input != interaction dim
            )

    def test_rejects_heterogeneous_embedding_dims(self):
        tables = (
            EmbeddingTableConfig(num_rows=10, embedding_dim=32),
            EmbeddingTableConfig(num_rows=10, embedding_dim=64),
        )
        with pytest.raises(ConfigurationError):
            DLRMConfig(
                name="bad",
                tables=tables,
                bottom_mlp=MLPConfig(layer_dims=(13, 32)),
                top_mlp=MLPConfig(layer_dims=(35, 1)),
            )

    def test_summary_mentions_name_and_tables(self):
        config = homogeneous_dlrm("MyModel", num_tables=3, rows_per_table=50, gathers_per_table=2)
        summary = config.summary()
        assert "MyModel" in summary and "3 tables" in summary

    @given(
        num_tables=st.integers(min_value=1, max_value=12),
        gathers=st.integers(min_value=1, max_value=40),
        batchless_dim=st.sampled_from([16, 32, 64]),
    )
    def test_interaction_pair_formula(self, num_tables, gathers, batchless_dim):
        config = homogeneous_dlrm(
            "prop",
            num_tables=num_tables,
            rows_per_table=64,
            gathers_per_table=gathers,
            embedding_dim=batchless_dim,
        )
        n = num_tables + 1
        assert config.num_interaction_pairs == n * (n - 1) // 2
        assert config.total_gathers_per_sample == num_tables * gathers
