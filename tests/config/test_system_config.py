"""Tests for the hardware configuration dataclasses."""

import pytest

from repro.config.system import (
    CPUConfig,
    FPGAConfig,
    FPGAFabricConfig,
    GPUConfig,
    LinkConfig,
    MemoryConfig,
    PowerConfig,
    SystemConfig,
)
from repro.errors import ConfigurationError


class TestCPUConfig:
    def test_defaults_match_broadwell_xeon(self):
        cpu = CPUConfig()
        assert cpu.num_cores == 14
        assert cpu.llc_bytes == 35 * 1024 * 1024
        assert cpu.cache_line_bytes == 64

    def test_peak_flops(self):
        cpu = CPUConfig(num_cores=2, frequency_hz=1e9, simd_flops_per_cycle=4)
        assert cpu.peak_flops == pytest.approx(8e9)

    def test_total_mshrs(self):
        cpu = CPUConfig(num_cores=4, mshrs_per_core=10)
        assert cpu.total_mshrs == 40

    def test_rejects_non_positive_cores(self):
        with pytest.raises(ConfigurationError):
            CPUConfig(num_cores=0)

    def test_rejects_inverted_cache_hierarchy(self):
        with pytest.raises(ConfigurationError):
            CPUConfig(l1_bytes=1024 * 1024, l2_bytes=64 * 1024)


class TestMemoryConfig:
    def test_default_bandwidth_is_77_gbps(self):
        assert MemoryConfig().peak_bandwidth == pytest.approx(77e9)

    def test_per_channel_bandwidth(self):
        memory = MemoryConfig(num_channels=4)
        assert memory.per_channel_bandwidth == pytest.approx(memory.peak_bandwidth / 4)

    def test_loaded_latency_must_exceed_idle(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(idle_latency_s=100e-9, loaded_latency_s=50e-9)


class TestLinkConfig:
    def test_defaults_match_harpv2(self):
        link = LinkConfig()
        assert link.theoretical_bandwidth == pytest.approx(28.8e9)
        assert 17e9 <= link.effective_bandwidth <= 18e9
        assert not link.cache_bypass_available

    def test_effective_cannot_exceed_theoretical(self):
        with pytest.raises(ConfigurationError):
            LinkConfig(theoretical_bandwidth=10e9, effective_bandwidth=20e9)

    def test_bypass_requires_bandwidth(self):
        with pytest.raises(ConfigurationError):
            LinkConfig(cache_bypass_available=True, bypass_bandwidth=None)

    def test_with_bypass_helper(self):
        link = LinkConfig().with_bypass(77e9)
        assert link.cache_bypass_available
        assert link.bypass_bandwidth == pytest.approx(77e9)
        # The original is unchanged (frozen dataclass semantics).
        assert not LinkConfig().cache_bypass_available


class TestFPGAConfig:
    def test_total_pes(self):
        fpga = FPGAConfig()
        assert fpga.total_pes == 4 * 4 + 4

    def test_peak_flops_matches_paper(self):
        # 20 PEs x 78.25 FLOPs/cycle x 200 MHz = 313 GFLOPS.
        assert FPGAConfig().peak_flops == pytest.approx(313e9, rel=0.01)

    def test_fabric_defaults_match_gx1150(self):
        fabric = FPGAFabricConfig()
        assert fabric.alms == 427_200
        assert fabric.dsps == 1_518
        assert fabric.ram_blocks == 2_713

    def test_rejects_bad_gemm_efficiency(self):
        with pytest.raises(ConfigurationError):
            FPGAConfig(gemm_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            FPGAConfig(gemm_efficiency=1.5)


class TestGPUConfig:
    def test_small_efficiency_below_large(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(gemm_efficiency_small=0.5, gemm_efficiency_large=0.1)

    def test_defaults_are_v100_class(self):
        gpu = GPUConfig()
        assert gpu.peak_flops == pytest.approx(15.7e12)
        assert gpu.memory_capacity_bytes == 32 * 1024 ** 3


class TestPowerConfig:
    def test_defaults_match_table4(self):
        power = PowerConfig()
        assert power.cpu_only_watts == 80.0
        assert power.cpu_gpu_total_watts == 91.0 + 56.0
        assert power.centaur_watts == 74.0

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            PowerConfig(centaur_watts=0.0)


class TestSystemConfig:
    def test_with_link_replaces_only_link(self):
        system = SystemConfig()
        new_link = LinkConfig(effective_bandwidth=10e9)
        updated = system.with_link(new_link)
        assert updated.link.effective_bandwidth == pytest.approx(10e9)
        assert updated.cpu is system.cpu
        assert system.link.effective_bandwidth != pytest.approx(10e9)

    def test_with_fpga_replaces_only_fpga(self):
        system = SystemConfig()
        updated = system.with_fpga(FPGAConfig(mlp_pe_rows=8))
        assert updated.fpga.mlp_pe_rows == 8
        assert updated.memory is system.memory
