"""Tests for the embedding reduction unit."""

import numpy as np
import pytest

from repro.core.reduction import EmbeddingReductionUnit
from repro.errors import ConfigurationError, SimulationError


class TestFunctionalReduction:
    def test_accumulates_per_sample(self):
        unit = EmbeddingReductionUnit(embedding_dim=4)
        unit.begin(batch_size=2)
        unit.accumulate(0, np.array([1.0, 1.0, 1.0, 1.0]))
        unit.accumulate(0, np.array([2.0, 0.0, 0.0, 0.0]))
        unit.accumulate(1, np.array([0.0, 5.0, 0.0, 0.0]))
        result = unit.result()
        np.testing.assert_array_equal(result[0], [3.0, 1.0, 1.0, 1.0])
        np.testing.assert_array_equal(result[1], [0.0, 5.0, 0.0, 0.0])

    def test_begin_resets_state(self):
        unit = EmbeddingReductionUnit(embedding_dim=4)
        unit.begin(1)
        unit.accumulate(0, np.ones(4))
        unit.begin(1)
        np.testing.assert_array_equal(unit.result(), np.zeros((1, 4)))

    def test_result_is_a_copy(self):
        unit = EmbeddingReductionUnit(embedding_dim=2)
        unit.begin(1)
        result = unit.result()
        result[0, 0] = 99.0
        np.testing.assert_array_equal(unit.result(), np.zeros((1, 2)))

    def test_usage_errors(self):
        unit = EmbeddingReductionUnit(embedding_dim=4)
        with pytest.raises(SimulationError):
            unit.accumulate(0, np.ones(4))
        with pytest.raises(SimulationError):
            unit.result()
        unit.begin(2)
        with pytest.raises(SimulationError):
            unit.accumulate(5, np.ones(4))
        with pytest.raises(SimulationError):
            unit.accumulate(0, np.ones(3))
        with pytest.raises(SimulationError):
            unit.begin(0)

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            EmbeddingReductionUnit(embedding_dim=0)
        with pytest.raises(ConfigurationError):
            EmbeddingReductionUnit(embedding_dim=8, num_lanes=0)
        with pytest.raises(ConfigurationError):
            EmbeddingReductionUnit(embedding_dim=8, frequency_hz=0)


class TestTiming:
    def test_cycles_per_vector(self):
        assert EmbeddingReductionUnit(32, num_lanes=32).cycles_per_vector == 1
        assert EmbeddingReductionUnit(64, num_lanes=32).cycles_per_vector == 2
        assert EmbeddingReductionUnit(33, num_lanes=32).cycles_per_vector == 2

    def test_cycle_counter_advances(self):
        unit = EmbeddingReductionUnit(embedding_dim=64, num_lanes=32)
        unit.begin(1)
        unit.accumulate(0, np.ones(64))
        unit.accumulate(0, np.ones(64))
        assert unit.cycles == 4
        assert unit.vectors_reduced == 2

    def test_reduction_throughput_exceeds_link_gather_bandwidth(self):
        """32 lanes at 200 MHz absorb 25.6 GB/s > the ~11.9 GB/s gather rate,
        so reductions never throttle the EB-Streamer on HARPv2."""
        unit = EmbeddingReductionUnit(embedding_dim=32, num_lanes=32, frequency_hz=200e6)
        assert unit.throughput_bytes_per_s == pytest.approx(25.6e9)
        assert unit.throughput_bytes_per_s > 11.9e9

    def test_reduction_time_linear_in_vectors(self):
        unit = EmbeddingReductionUnit(embedding_dim=32, num_lanes=32, frequency_hz=200e6)
        assert unit.reduction_time_s(200) == pytest.approx(2 * unit.reduction_time_s(100))
        assert unit.reduction_time_s(0) == 0.0
        with pytest.raises(SimulationError):
            unit.reduction_time_s(-1)
