"""Tests for the feature-interaction unit."""

import numpy as np
import pytest

from repro.core.interaction_unit import FeatureInteractionUnit
from repro.dlrm.interaction import dot_feature_interaction
from repro.errors import ConfigurationError, ModelShapeError


@pytest.fixture()
def unit():
    return FeatureInteractionUnit(num_pes=4)


class TestFunctional:
    def test_matches_software_interaction(self, unit):
        rng = np.random.default_rng(0)
        bottom = rng.standard_normal((6, 32)).astype(np.float32)
        embeddings = rng.standard_normal((6, 5, 32)).astype(np.float32)
        np.testing.assert_allclose(
            unit.forward(bottom, embeddings),
            dot_feature_interaction(bottom, embeddings),
            rtol=1e-5,
            atol=1e-5,
        )

    def test_shape_validation(self, unit):
        bottom = np.zeros((2, 8), dtype=np.float32)
        embeddings = np.zeros((2, 3, 8), dtype=np.float32)
        with pytest.raises(ModelShapeError):
            unit.forward(bottom[0], embeddings)
        with pytest.raises(ModelShapeError):
            unit.forward(bottom, embeddings[:1])
        with pytest.raises(ModelShapeError):
            unit.forward(bottom, np.zeros((2, 3, 4), dtype=np.float32))


class TestTiming:
    def test_flops_match_config_formula(self, unit):
        timing = unit.timing(num_tables=5, embedding_dim=32, batch_size=16)
        assert timing.flops == 2 * 15 * 32 * 16

    def test_cycles_scale_with_batch(self, unit):
        small = unit.timing(num_tables=50, embedding_dim=32, batch_size=1)
        large = unit.timing(num_tables=50, embedding_dim=32, batch_size=128)
        assert large.cycles > small.cycles

    def test_fifty_table_interaction_is_heavier(self, unit):
        few = unit.timing(num_tables=5, embedding_dim=32, batch_size=32)
        many = unit.timing(num_tables=50, embedding_dim=32, batch_size=32)
        assert many.cycles > few.cycles

    def test_latency_seconds(self, unit):
        timing = unit.timing(num_tables=5, embedding_dim=32, batch_size=4)
        assert timing.latency_s(200e6) == pytest.approx(timing.cycles / 200e6)

    def test_validation(self, unit):
        with pytest.raises(ModelShapeError):
            unit.timing(0, 32, 1)
        with pytest.raises(ConfigurationError):
            FeatureInteractionUnit(num_pes=0)
        with pytest.raises(ConfigurationError):
            FeatureInteractionUnit(packing_efficiency=0.0)
