"""Tests for the MLP unit (tiled GEMM over the PE array)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config.models import MLPConfig
from repro.core.mlp_unit import MLPUnit
from repro.dlrm.mlp import MLP
from repro.errors import ConfigurationError, ModelShapeError


@pytest.fixture()
def unit():
    return MLPUnit(pe_rows=4, pe_cols=4, tile_dim=32)


class TestFunctionalGemm:
    def test_matches_dense_gemm_aligned(self, unit):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((64, 96)).astype(np.float32)
        b = rng.standard_normal((96, 128)).astype(np.float32)
        np.testing.assert_allclose(unit.gemm(a, b), a @ b, rtol=1e-4, atol=1e-4)

    def test_matches_dense_gemm_ragged(self, unit):
        """Dimensions that do not divide the 32-wide tiles are zero-padded."""
        rng = np.random.default_rng(1)
        a = rng.standard_normal((5, 47)).astype(np.float32)
        b = rng.standard_normal((47, 3)).astype(np.float32)
        np.testing.assert_allclose(unit.gemm(a, b), a @ b, rtol=1e-4, atol=1e-4)

    def test_batch_one_gemv(self, unit):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((1, 13)).astype(np.float32)
        b = rng.standard_normal((13, 32)).astype(np.float32)
        np.testing.assert_allclose(unit.gemm(a, b), a @ b, rtol=1e-4, atol=1e-4)

    def test_shape_validation(self, unit):
        with pytest.raises(ModelShapeError):
            unit.gemm(np.zeros((4, 5)), np.zeros((6, 4)))
        with pytest.raises(ModelShapeError):
            unit.gemm(np.zeros(5), np.zeros((5, 4)))

    def test_run_mlp_matches_software_mlp(self, unit):
        rng = np.random.default_rng(3)
        mlp = MLP.from_config(MLPConfig(layer_dims=(13, 64, 32)), rng)
        inputs = rng.standard_normal((9, 13)).astype(np.float32)
        np.testing.assert_allclose(
            unit.run_mlp(mlp, inputs), mlp.forward(inputs), rtol=1e-4, atol=1e-4
        )

    def test_pes_accumulate_work(self, unit):
        a = np.zeros((64, 64), dtype=np.float32)
        unit.gemm(a, a)
        total_ops = sum(pe.tile_ops for row in unit.pes for pe in row)
        assert total_ops == 2 * 2 * 2  # m_tiles * n_tiles * k_tiles
        unit.reset_counters()
        assert sum(pe.tile_ops for row in unit.pes for pe in row) == 0

    @given(
        m=st.integers(min_value=1, max_value=70),
        k=st.integers(min_value=1, max_value=70),
        n=st.integers(min_value=1, max_value=70),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_matches_numpy(self, m, k, n):
        unit = MLPUnit(pe_rows=2, pe_cols=2, tile_dim=16)
        rng = np.random.default_rng(m * 10_000 + k * 100 + n)
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        np.testing.assert_allclose(unit.gemm(a, b), a @ b, rtol=1e-3, atol=1e-3)


class TestTiming:
    def test_cycle_count_scales_with_tiles(self, unit):
        small = unit.gemm_timing(m=32, n=32, k=32)
        large = unit.gemm_timing(m=128, n=128, k=128)
        assert large.cycles > small.cycles
        assert large.tile_ops == 4 * 4 * 4

    def test_full_array_utilization(self, unit):
        timing = unit.gemm_timing(m=128, n=128, k=32)
        # 16 output tiles exactly fill the 4x4 array: one wave per K tile.
        assert timing.waves == 1
        assert timing.utilization == pytest.approx(1.0)

    def test_small_gemm_pays_fill_overhead(self, unit):
        timing = unit.gemm_timing(m=1, n=1, k=1)
        assert timing.cycles >= unit.fill_cycles
        assert timing.utilization < 0.01

    def test_latency_seconds(self, unit):
        timing = unit.gemm_timing(m=32, n=32, k=32)
        assert timing.latency_s(200e6) == pytest.approx(timing.cycles / 200e6)

    def test_mlp_timing_covers_every_layer(self, unit):
        timings = unit.mlp_timing((13, 128, 64, 32), batch_size=16)
        assert len(timings) == 3
        assert timings[0].k == 13 and timings[0].n == 128 and timings[0].m == 16

    def test_peak_throughput_consistent_with_313_gflops(self, unit):
        """A large, well-aligned GEMM should sustain close to the MLP unit's
        share (16/20) of the 313 GFLOPS aggregate."""
        m = n = k = 512
        timing = unit.gemm_timing(m, n, k)
        seconds = timing.latency_s(200e6)
        achieved = 2 * m * n * k / seconds
        mlp_share = 313e9 * 16 / 20
        assert achieved == pytest.approx(mlp_share, rel=0.05)

    def test_validation(self, unit):
        with pytest.raises(ModelShapeError):
            unit.gemm_timing(0, 1, 1)
        with pytest.raises(ModelShapeError):
            unit.mlp_timing((13, 64), batch_size=0)
        with pytest.raises(ConfigurationError):
            MLPUnit(pe_rows=0)
