"""Tests for the sigmoid unit."""

import numpy as np
import pytest

from repro.core.sigmoid_unit import SigmoidUnit
from repro.dlrm.mlp import sigmoid
from repro.errors import ConfigurationError


class TestExactMode:
    def test_matches_software_sigmoid(self):
        unit = SigmoidUnit(mode="exact")
        logits = np.linspace(-8, 8, 33).astype(np.float32)
        np.testing.assert_allclose(unit.forward(logits), sigmoid(logits), atol=1e-6)


class TestPiecewiseMode:
    def test_close_to_exact_sigmoid(self):
        unit = SigmoidUnit(mode="piecewise")
        logits = np.linspace(-8, 8, 401).astype(np.float32)
        error = np.abs(unit.forward(logits) - sigmoid(logits))
        assert error.max() < 0.02

    def test_preserves_monotonicity_and_range(self):
        unit = SigmoidUnit(mode="piecewise")
        logits = np.linspace(-20, 20, 801).astype(np.float32)
        out = unit.forward(logits)
        assert np.all(np.diff(out) >= -1e-6)
        assert np.all((out >= 0) & (out <= 1))

    def test_symmetry(self):
        unit = SigmoidUnit(mode="piecewise")
        logits = np.linspace(-5, 5, 101).astype(np.float32)
        np.testing.assert_allclose(
            unit.forward(logits) + unit.forward(-logits), 1.0, atol=1e-6
        )

    def test_saturation(self):
        unit = SigmoidUnit(mode="piecewise")
        out = unit.forward(np.array([-100.0, 100.0], dtype=np.float32))
        assert out[0] == pytest.approx(0.0, abs=1e-3)
        assert out[1] == pytest.approx(1.0, abs=1e-3)


class TestTimingAndValidation:
    def test_cycles_scale_with_batch(self):
        unit = SigmoidUnit()
        assert unit.timing(128).cycles == 128 * unit.cycles_per_element
        assert unit.timing(1).latency_s(200e6) == pytest.approx(
            unit.cycles_per_element / 200e6
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SigmoidUnit(mode="tanh")
        with pytest.raises(ConfigurationError):
            SigmoidUnit(cycles_per_element=0)
        with pytest.raises(ConfigurationError):
            SigmoidUnit().timing(0)
