"""Tests for the output-stationary tile scheduler (Fig. 12)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dataflow import OutputStationaryScheduler
from repro.core.mlp_unit import MLPUnit
from repro.errors import ModelShapeError


@pytest.fixture()
def scheduler():
    return OutputStationaryScheduler(pe_rows=4, pe_cols=4, tile_dim=32)


class TestScheduleStructure:
    def test_tile_counts(self, scheduler):
        assert scheduler.tile_counts(128, 64, 96) == (4, 2, 3)
        assert scheduler.tile_counts(1, 1, 1) == (1, 1, 1)
        assert scheduler.tile_counts(33, 32, 65) == (2, 1, 3)

    def test_every_output_tile_owned_by_its_round_robin_pe(self, scheduler):
        for assignment in scheduler.schedule(128, 128, 64):
            expected = scheduler.owner_of(*assignment.output_tile)
            assert (assignment.pe_row, assignment.pe_col) == expected

    def test_assignment_count_matches_tile_ops(self, scheduler):
        summary = scheduler.summarize(128, 128, 96)
        assert summary.num_assignments == 4 * 4 * 3
        assert summary.total_output_tiles == 16

    def test_validate_reports_no_violations(self, scheduler):
        for shape in ((128, 128, 64), (1, 1307, 64), (5, 3, 47), (256, 32, 32)):
            assert scheduler.validate(*shape) == []

    def test_validation_of_bad_dimensions(self, scheduler):
        with pytest.raises(ModelShapeError):
            scheduler.tile_counts(0, 1, 1)
        with pytest.raises(ModelShapeError):
            OutputStationaryScheduler(pe_rows=0)

    @given(
        m=st.integers(min_value=1, max_value=200),
        n=st.integers(min_value=1, max_value=200),
        k=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_schedule_invariants(self, m, n, k):
        scheduler = OutputStationaryScheduler(pe_rows=2, pe_cols=2, tile_dim=16)
        assert scheduler.validate(m, n, k) == []


class TestBroadcastAccounting:
    def test_full_wave_reuses_broadcasts_across_pes(self, scheduler):
        """With a filled 4x4 array each broadcast weight tile feeds 4 PEs."""
        summary = scheduler.summarize(128, 128, 32)
        assert summary.max_concurrent_pes == 16
        # 16 assignments per step, 4 distinct weight tiles + 4 distinct input
        # tiles broadcast per step -> reuse factor of 2 tile-ops per broadcast.
        assert summary.broadcast_reuse_factor == pytest.approx(2.0)

    def test_single_output_tile_has_no_reuse(self, scheduler):
        summary = scheduler.summarize(32, 32, 128)
        assert summary.max_concurrent_pes == 1
        assert summary.broadcast_reuse_factor == pytest.approx(0.5)

    def test_steps_track_waves_and_k(self, scheduler):
        # 32 output tiles -> 2 waves of 16; 2 K tiles -> 4 steps in total.
        summary = scheduler.summarize(256, 128, 64)
        assert summary.num_steps == 4


class TestConsistencyWithTimingAndFunction:
    def test_assignments_match_mlp_unit_tile_ops(self, scheduler):
        """The schedule performs exactly the tile multiplies the timing model
        charges for (before PE-wave rounding)."""
        unit = MLPUnit(pe_rows=4, pe_cols=4, tile_dim=32)
        for shape in ((128, 64, 96), (1, 47, 32), (40, 200, 13)):
            summary = scheduler.summarize(*shape)
            timing = unit.gemm_timing(*shape)
            assert summary.num_assignments == timing.tile_ops

    def test_owner_mapping_matches_functional_unit(self, scheduler):
        unit = MLPUnit(pe_rows=4, pe_cols=4, tile_dim=32)
        for m_tile in range(6):
            for n_tile in range(6):
                pe = unit._pe(m_tile, n_tile)
                row, col = scheduler.owner_of(m_tile, n_tile)
                assert unit.pes[row][col] is pe
