"""Tests for the FPGA resource estimator (Tables II and III)."""

import pytest

from repro.config.system import FPGAConfig, FPGAFabricConfig
from repro.core.resources import FPGAResourceModel
from repro.errors import ResourceEstimationError


@pytest.fixture(scope="module")
def model():
    return FPGAResourceModel(FPGAConfig())


class TestTable3Breakdown:
    def test_module_rows_match_paper_order(self, model):
        names = [(module.group, module.name) for module in model.all_modules()]
        assert names == [
            ("Sparse", "Base ptr reg."),
            ("Sparse", "Gather unit"),
            ("Sparse", "Reduction unit"),
            ("Sparse", "SRAM arrays"),
            ("Dense", "MLP unit"),
            ("Dense", "Feat. int. unit"),
            ("Dense", "SRAM arrays"),
            ("Dense", "Weights"),
            ("Others", "Misc."),
        ]

    def test_reduction_unit_dsps_match_paper(self, model):
        reduction = model.sparse_modules()[2]
        assert reduction.dsps == 96

    def test_sparse_index_sram_bits_close_to_paper(self, model):
        sram = model.sparse_modules()[3]
        assert sram.block_memory_bits == pytest.approx(12_200_000, rel=0.05)

    def test_mlp_unit_matches_paper(self, model):
        mlp = model.dense_modules()[0]
        assert mlp.dsps == 512
        assert mlp.lc_comb == pytest.approx(40_000, rel=0.05)
        assert mlp.lc_reg == pytest.approx(131_000, rel=0.05)
        assert mlp.block_memory_bits == pytest.approx(2_300_000, rel=0.05)

    def test_interaction_unit_matches_paper(self, model):
        interaction = model.dense_modules()[1]
        assert interaction.dsps == 128
        assert interaction.block_memory_bits == pytest.approx(593_000, rel=0.05)

    def test_weight_sram_bits_match_paper(self, model):
        weights = model.dense_modules()[3]
        assert weights.block_memory_bits == pytest.approx(5_200_000, rel=0.05)

    def test_group_totals(self, model):
        totals = model.group_totals()
        assert totals["Sparse"].dsps == 96
        assert totals["Dense"].dsps == 688
        assert totals["Sparse"].block_memory_bits == pytest.approx(12_300_000, rel=0.05)
        assert totals["Dense"].block_memory_bits == pytest.approx(9_800_000, rel=0.06)

    def test_sparse_complex_is_logic_light(self, model):
        """The sparse accelerator is mostly SRAM; the dense one is mostly logic/DSP."""
        totals = model.group_totals()
        assert totals["Sparse"].lc_comb < 0.05 * totals["Dense"].lc_comb
        assert totals["Sparse"].dsps < totals["Dense"].dsps


class TestTable2Aggregate:
    def test_alm_count_close_to_paper(self, model):
        assert model.report().alms == pytest.approx(127_719, rel=0.05)

    def test_block_memory_close_to_paper(self, model):
        assert model.report().block_memory_bits == pytest.approx(23_700_000, rel=0.05)

    def test_ram_blocks_close_to_paper(self, model):
        assert model.report().ram_blocks == pytest.approx(2_238, rel=0.06)

    def test_dsp_count_exact(self, model):
        assert model.report().dsps == 784

    def test_utilization_percentages_match_paper(self, model):
        report = model.report()
        assert report.alm_utilization == pytest.approx(0.299, abs=0.02)
        assert report.block_memory_utilization == pytest.approx(0.426, abs=0.02)
        assert report.ram_block_utilization == pytest.approx(0.825, abs=0.05)
        assert report.dsp_utilization == pytest.approx(0.516, abs=0.01)
        assert report.pll_utilization == pytest.approx(0.273, abs=0.01)

    def test_design_fits_on_gx1150(self, model):
        report = model.report()
        assert report.alms < FPGAFabricConfig().alms
        assert report.dsps < FPGAFabricConfig().dsps


class TestScaling:
    def test_more_pes_use_more_dsps(self):
        bigger = FPGAResourceModel(FPGAConfig(mlp_pe_rows=6, mlp_pe_cols=6))
        assert bigger.dense_modules()[0].dsps == 32 * 36

    def test_deeper_index_sram_uses_more_memory(self):
        deeper = FPGAResourceModel(FPGAConfig(sparse_index_sram_entries=1_000_000))
        base = FPGAResourceModel(FPGAConfig())
        assert (
            deeper.sparse_modules()[3].block_memory_bits
            > base.sparse_modules()[3].block_memory_bits
        )

    def test_wider_reduction_uses_more_dsps(self):
        wider = FPGAResourceModel(FPGAConfig(reduction_lanes=64))
        assert wider.sparse_modules()[2].dsps == 192

    def test_infeasible_design_rejected(self):
        huge = FPGAConfig(mlp_pe_rows=16, mlp_pe_cols=16)
        with pytest.raises(ResourceEstimationError):
            FPGAResourceModel(huge).report()

    def test_module_alm_and_ram_block_helpers(self, model):
        module = model.dense_modules()[0]
        assert model.module_alms(module) > 0
        assert model.module_ram_blocks(module) > 0
        zero_mem = model.sparse_modules()[0]
        assert model.module_ram_blocks(zero_mem) == 0
