"""Tests for the functional Centaur device (end-to-end hardware datapath)."""

import numpy as np
import pytest

from repro.config import HARPV2_SYSTEM
from repro.config.models import homogeneous_dlrm
from repro.core import CentaurDevice
from repro.dlrm import DLRM, UniformTraceGenerator
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def device_and_model():
    config = homogeneous_dlrm(
        name="device-test",
        num_tables=4,
        rows_per_table=2_000,
        gathers_per_table=6,
        bottom_hidden=(32, 16),
        top_hidden=(24,),
    )
    model = DLRM.from_config(config, seed=13)
    device = CentaurDevice(model, HARPV2_SYSTEM)
    return device, model, config


class TestDeviceSetup:
    def test_tables_registered_in_host_memory(self, device_and_model):
        device, model, config = device_and_model
        assert len(device.table_names) == config.num_tables
        for name in device.table_names:
            assert device.registers.read(f"table/{name}") > 0

    def test_weights_uploaded_to_fpga_sram(self, device_and_model):
        device, model, config = device_and_model
        assert device.dense_complex.weights_loaded
        assert device.dense_complex.weight_sram.used_bytes > 0

    def test_setup_latency_accumulates_mmio_writes(self, device_and_model):
        device, _, config = device_and_model
        expected_writes = config.num_tables + 1  # one per table + output pointer
        assert device.setup_latency_s == pytest.approx(
            expected_writes * HARPV2_SYSTEM.link.mmio_write_latency_s
        )


class TestFunctionalEquivalence:
    def test_probabilities_match_software_model(self, device_and_model, trace_generator):
        device, model, config = device_and_model
        batch = trace_generator.model_batch(config, 8)
        hardware = device.infer(batch)
        software = model.forward(batch)
        np.testing.assert_allclose(
            hardware.probabilities, software.probabilities, rtol=1e-4, atol=1e-5
        )
        np.testing.assert_allclose(hardware.logits, software.logits, rtol=1e-3, atol=1e-4)
        np.testing.assert_allclose(
            hardware.reduced_embeddings, software.reduced_embeddings, rtol=1e-4, atol=1e-5
        )

    def test_predict_writes_result_back_to_host_memory(self, device_and_model, trace_generator):
        device, _, config = device_and_model
        batch = trace_generator.model_batch(config, 4)
        probabilities = device.predict(batch)
        output_region = device.host_memory.region("output")
        np.testing.assert_allclose(
            output_region.backing[: batch.batch_size], probabilities, rtol=1e-6
        )

    def test_repeated_inference_is_deterministic(self, device_and_model, trace_generator):
        device, _, config = device_and_model
        batch = trace_generator.model_batch(config, 4)
        first = device.predict(batch)
        second = device.predict(batch)
        np.testing.assert_array_equal(first, second)

    def test_piecewise_sigmoid_mode_is_close(self, trace_generator):
        config = homogeneous_dlrm(
            name="pwl", num_tables=2, rows_per_table=500, gathers_per_table=3,
            bottom_hidden=(16,), top_hidden=(16,),
        )
        model = DLRM.from_config(config, seed=5)
        device = CentaurDevice(model, HARPV2_SYSTEM, sigmoid_mode="piecewise")
        batch = trace_generator.model_batch(config, 6)
        hardware = device.predict(batch)
        software = model.predict(batch)
        assert np.max(np.abs(hardware - software)) < 0.02


class TestInputValidation:
    def test_wrong_table_count_rejected(self, device_and_model, trace_generator):
        device, _, config = device_and_model
        other = homogeneous_dlrm(
            name="other", num_tables=2, rows_per_table=2_000, gathers_per_table=6
        )
        batch = trace_generator.model_batch(other, 2)
        with pytest.raises(SimulationError):
            device.infer(batch)

    def test_oversized_batch_grows_the_output_buffer(self):
        """A batch beyond the registered region re-registers it, not fails."""
        config = homogeneous_dlrm(
            name="grow-test",
            num_tables=2,
            rows_per_table=500,
            gathers_per_table=2,
            embedding_dim=16,
            bottom_hidden=(8,),
            top_hidden=(8,),
        )
        model = DLRM.from_config(config, seed=3)
        device = CentaurDevice(model, HARPV2_SYSTEM)
        setup_before = device.setup_latency_s
        batch = UniformTraceGenerator(seed=0).model_batch(config, 8192)

        output = device.infer(batch)

        assert output.probabilities.shape == (8192,)
        assert device.output_capacity >= 8192
        assert device.output_regrows == 1
        # The resize charged the MMIO base-pointer rewrite.
        assert device.setup_latency_s > setup_before
        # The grown region really holds the batch's results.
        written = device.host_memory.read(device.registers.read("output"), 8192 * 4)
        np.testing.assert_allclose(written, output.probabilities, rtol=1e-6)

    def test_output_buffer_growth_is_idempotent_once_grown(self):
        config = homogeneous_dlrm(
            name="grow-twice",
            num_tables=2,
            rows_per_table=500,
            gathers_per_table=2,
            embedding_dim=16,
            bottom_hidden=(8,),
            top_hidden=(8,),
        )
        device = CentaurDevice(DLRM.from_config(config, seed=3), HARPV2_SYSTEM)
        generator = UniformTraceGenerator(seed=1)
        device.infer(generator.model_batch(config, 5000))
        capacity = device.output_capacity
        device.infer(generator.model_batch(config, 5000))
        assert device.output_capacity == capacity
        assert device.output_regrows == 1
