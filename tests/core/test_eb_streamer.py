"""Tests for the EB-Streamer (sparse accelerator complex)."""

import numpy as np
import pytest

from repro.config import DLRM1, DLRM4, DLRM5, DLRM6
from repro.config.models import homogeneous_dlrm
from repro.config.system import FPGAConfig, LinkConfig
from repro.core.eb_streamer import EBStreamer
from repro.core.mmio import HostMemory
from repro.core.registers import BasePointerRegisters
from repro.dlrm import DLRM, UniformTraceGenerator
from repro.dlrm.embedding import sparse_lengths_sum
from repro.errors import CapacityError, SimulationError


def build_functional_streamer(config, seed=0):
    """Wire an EB-Streamer to host memory holding a real model's tables."""
    model = DLRM.from_config(config, seed=seed)
    host_memory = HostMemory()
    registers = BasePointerRegisters()
    names = []
    for index, table in enumerate(model.embeddings.tables):
        name = f"t{index}"
        region = host_memory.register(name, table)
        registers.write(f"table/{name}", region.base_address)
        names.append(name)
    streamer = EBStreamer(
        fpga=FPGAConfig(),
        link_config=LinkConfig(),
        embedding_dim=config.embedding_dim,
        registers=registers,
        host_memory=host_memory,
    )
    return streamer, model, names


class TestFunctionalGatherReduce:
    def test_matches_sparse_lengths_sum(self, tiny_config, trace_generator):
        streamer, model, names = build_functional_streamer(tiny_config)
        batch = trace_generator.model_batch(tiny_config, 6)
        hardware = streamer.gather_and_reduce(names, batch.sparse_traces)
        software = model.embeddings.forward(batch.sparse_traces)
        np.testing.assert_allclose(hardware, software, rtol=1e-5, atol=1e-5)

    def test_translation_goes_through_iommu(self, tiny_config, trace_generator):
        streamer, _, names = build_functional_streamer(tiny_config)
        batch = trace_generator.model_batch(tiny_config, 2)
        streamer.gather_and_reduce(names, batch.sparse_traces)
        assert streamer.iommu.hits + streamer.iommu.misses == batch.total_lookups

    def test_requires_host_memory(self, tiny_config, trace_generator):
        streamer = EBStreamer(fpga=FPGAConfig(), link_config=LinkConfig())
        batch = trace_generator.model_batch(tiny_config, 2)
        with pytest.raises(SimulationError):
            streamer.gather_and_reduce(["t0"] * tiny_config.num_tables, batch.sparse_traces)

    def test_mismatched_names_and_traces(self, tiny_config, trace_generator):
        streamer, _, names = build_functional_streamer(tiny_config)
        batch = trace_generator.model_batch(tiny_config, 2)
        with pytest.raises(SimulationError):
            streamer.gather_and_reduce(names[:-1], batch.sparse_traces)

    def test_index_sram_capacity_enforced(self, trace_generator):
        config = homogeneous_dlrm("big-batch", num_tables=1, rows_per_table=100, gathers_per_table=10)
        streamer, _, names = build_functional_streamer(config)
        # Shrink the index SRAM to force a capacity error.
        streamer.index_sram.capacity_bytes = 16
        batch = trace_generator.model_batch(config, 2)
        with pytest.raises(CapacityError):
            streamer.gather_and_reduce(names, batch.sparse_traces)

    def test_index_sram_is_transient(self, tiny_config, trace_generator):
        streamer, _, names = build_functional_streamer(tiny_config)
        batch = trace_generator.model_batch(tiny_config, 2)
        streamer.gather_and_reduce(names, batch.sparse_traces)
        assert streamer.index_sram.used_bytes == 0


class TestAnalyticEstimate:
    @pytest.fixture()
    def streamer(self):
        return EBStreamer(fpga=FPGAConfig(), link_config=LinkConfig())

    def test_counts_match_model(self, streamer):
        estimate = streamer.estimate(DLRM1, 16)
        assert estimate.total_lookups == DLRM1.total_gathers_per_sample * 16
        assert estimate.total_lines == estimate.total_lookups * 2
        assert estimate.useful_bytes == DLRM1.embedding_bytes_per_sample() * 16

    def test_gather_overlaps_reduction(self, streamer):
        estimate = streamer.estimate(DLRM4, 32)
        assert estimate.embedding_stage_s == pytest.approx(
            max(estimate.gather_s, estimate.reduction_s)
        )
        # On HARPv2 the link, not the reduction lanes, is the bottleneck.
        assert estimate.gather_s > estimate.reduction_s

    def test_effective_throughput_reaches_paper_peak(self, streamer):
        """Large gathers saturate at ~11.9 GB/s (68% of effective link bw)."""
        throughput = streamer.estimate(DLRM4, 128).effective_throughput
        assert 1.1e10 < throughput < 1.25e10

    def test_small_batch_still_respectable(self, streamer):
        """Unlike the CPU, the EB-Streamer keeps multi-GB/s rates at batch 1."""
        assert streamer.estimate(DLRM4, 1).effective_throughput > 5e9

    def test_throughput_never_exceeds_link_effective_bandwidth(self, streamer):
        for config in (DLRM1, DLRM4, DLRM5, DLRM6):
            for batch in (1, 16, 128):
                estimate = streamer.estimate(config, batch)
                assert estimate.sustained_gather_bandwidth <= LinkConfig().effective_bandwidth

    def test_index_fetch_scales_with_lookups(self, streamer):
        small = streamer.estimate(DLRM1, 1).index_fetch_s
        large = streamer.estimate(DLRM4, 128).index_fetch_s
        assert large > small

    def test_rejects_bad_batch(self, streamer):
        with pytest.raises(SimulationError):
            streamer.estimate(DLRM1, 0)


class TestEventDrivenSimulation:
    def test_simulation_agrees_with_analytic_estimate(self):
        streamer = EBStreamer(fpga=FPGAConfig(), link_config=LinkConfig())
        config = homogeneous_dlrm(
            "sim-check", num_tables=4, rows_per_table=10_000, gathers_per_table=20
        )
        analytic = streamer.estimate(config, 16)
        simulated = streamer.simulate(config, 16)
        assert simulated["gather_s"] == pytest.approx(analytic.gather_s, rel=0.25)

    def test_simulated_bandwidth_bounded_by_gather_cap(self):
        streamer = EBStreamer(fpga=FPGAConfig(), link_config=LinkConfig())
        config = homogeneous_dlrm(
            "sim-bw", num_tables=2, rows_per_table=10_000, gathers_per_table=50
        )
        simulated = streamer.simulate(config, 8)
        assert simulated["achieved_bandwidth"] <= streamer.link.peak_gather_bandwidth * 1.01

    def test_large_streams_are_scaled_from_prefix(self):
        streamer = EBStreamer(fpga=FPGAConfig(), link_config=LinkConfig())
        simulated = streamer.simulate(DLRM1, 64, max_requests=2_000)
        assert simulated["simulated_lines"] == 2_000
        assert simulated["gather_s"] > 0

    def test_rejects_bad_batch(self):
        streamer = EBStreamer(fpga=FPGAConfig(), link_config=LinkConfig())
        with pytest.raises(SimulationError):
            streamer.simulate(DLRM1, 0)
