"""Tests for the base-pointer register file."""

import pytest

from repro.core.registers import BasePointerRegisters
from repro.errors import CapacityError, ConfigurationError


class TestBasePointerRegisters:
    def test_write_then_read(self):
        registers = BasePointerRegisters()
        registers.write("table/0", 0x1000)
        assert registers.read("table/0") == 0x1000
        assert "table/0" in registers
        assert registers.reads == 1
        assert registers.writes == 1

    def test_overwrite_same_name_does_not_consume_capacity(self):
        registers = BasePointerRegisters(capacity=1)
        registers.write("ptr", 1)
        registers.write("ptr", 2)
        assert registers.read("ptr") == 2
        assert registers.occupancy == 1

    def test_capacity_enforced(self):
        registers = BasePointerRegisters(capacity=2)
        registers.write("a", 1)
        registers.write("b", 2)
        with pytest.raises(CapacityError):
            registers.write("c", 3)

    def test_unknown_register_raises(self):
        with pytest.raises(KeyError):
            BasePointerRegisters().read("missing")

    def test_invalid_inputs_rejected(self):
        registers = BasePointerRegisters()
        with pytest.raises(ConfigurationError):
            registers.write("", 1)
        with pytest.raises(ConfigurationError):
            registers.write("x", -1)
        with pytest.raises(ConfigurationError):
            BasePointerRegisters(capacity=0)

    def test_names_and_clear(self):
        registers = BasePointerRegisters()
        registers.write("a", 1)
        registers.write("b", 2)
        assert registers.names() == ["a", "b"]
        registers.clear()
        assert registers.occupancy == 0
