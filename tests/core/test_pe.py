"""Tests for the processing engine (32x32 matrix multiply block)."""

import numpy as np
import pytest

from repro.core.pe import ProcessingEngine
from repro.errors import ConfigurationError, ModelShapeError


class TestProcessingEngine:
    def test_multiply_matches_numpy(self):
        pe = ProcessingEngine(tile_dim=32)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((32, 32)).astype(np.float32)
        b = rng.standard_normal((32, 32)).astype(np.float32)
        np.testing.assert_allclose(pe.multiply(a, b), a @ b, rtol=1e-5, atol=1e-5)

    def test_shape_enforced(self):
        pe = ProcessingEngine(tile_dim=32)
        with pytest.raises(ModelShapeError):
            pe.multiply(np.zeros((16, 32)), np.zeros((32, 32)))

    def test_cycle_accounting(self):
        pe = ProcessingEngine(tile_dim=32, flops_per_cycle=78.25)
        a = np.zeros((32, 32), dtype=np.float32)
        pe.multiply(a, a)
        pe.multiply(a, a)
        assert pe.tile_ops == 2
        assert pe.cycles == 2 * pe.cycles_per_tile_op

    def test_flops_per_tile(self):
        pe = ProcessingEngine(tile_dim=32)
        assert pe.flops_per_tile_op == 2 * 32 ** 3

    def test_cycles_per_tile_matches_paper_throughput(self):
        # 78.25 FLOPs/cycle -> a 65536-FLOP tile takes 838 cycles.
        pe = ProcessingEngine(tile_dim=32, flops_per_cycle=78.25)
        assert pe.cycles_per_tile_op == 838

    def test_reset_counters(self):
        pe = ProcessingEngine(tile_dim=8)
        pe.multiply(np.zeros((8, 8)), np.zeros((8, 8)))
        pe.reset_counters()
        assert pe.tile_ops == 0
        assert pe.cycles == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProcessingEngine(tile_dim=0)
        with pytest.raises(ConfigurationError):
            ProcessingEngine(flops_per_cycle=0)
