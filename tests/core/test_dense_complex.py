"""Tests for the dense accelerator complex."""

import numpy as np
import pytest

from repro.config import DLRM1, DLRM6
from repro.config.system import FPGAConfig
from repro.core.dense_complex import DenseAcceleratorComplex
from repro.dlrm import DLRM, UniformTraceGenerator
from repro.errors import CapacityError, SimulationError


@pytest.fixture()
def complex_(tiny_config):
    dense = DenseAcceleratorComplex(FPGAConfig())
    model = DLRM.from_config(tiny_config, seed=3)
    dense.load_weights(model.bottom_mlp, model.top_mlp)
    return dense, model


class TestWeightManagement:
    def test_weights_persist_in_sram(self, complex_):
        dense, model = complex_
        assert dense.weights_loaded
        assert dense.weight_sram.used_bytes == pytest.approx(
            model.config.mlp_parameter_bytes, rel=0.01
        )

    def test_forward_requires_weights(self, tiny_config):
        dense = DenseAcceleratorComplex(FPGAConfig())
        with pytest.raises(SimulationError):
            dense.forward(np.zeros((1, 13), dtype=np.float32), np.zeros((1, 4, 32), dtype=np.float32))

    def test_all_paper_models_fit_in_weight_sram(self):
        """Every Table I MLP fits in the 640 KiB persistent weight SRAM."""
        for config in (DLRM1, DLRM6):
            dense = DenseAcceleratorComplex(FPGAConfig())
            model = DLRM.from_config(config, seed=0)
            dense.load_weights(model.bottom_mlp, model.top_mlp)  # must not raise

    def test_oversized_weights_rejected(self, tiny_config):
        tiny_sram = FPGAConfig(mlp_weight_sram_bytes=1024)
        dense = DenseAcceleratorComplex(tiny_sram)
        model = DLRM.from_config(tiny_config, seed=0)
        with pytest.raises(CapacityError):
            dense.load_weights(model.bottom_mlp, model.top_mlp)


class TestFunctionalForward:
    def test_matches_software_dense_path(self, complex_, trace_generator, tiny_config):
        dense, model = complex_
        batch = trace_generator.model_batch(tiny_config, 5)
        software = model.forward(batch)
        probabilities, logits = dense.forward(
            batch.dense_features, software.reduced_embeddings
        )
        np.testing.assert_allclose(logits, software.logits, rtol=1e-4, atol=1e-4)
        np.testing.assert_allclose(probabilities, software.probabilities, rtol=1e-4, atol=1e-4)

    def test_transient_inputs_are_discarded(self, complex_, trace_generator, tiny_config):
        dense, model = complex_
        batch = trace_generator.model_batch(tiny_config, 3)
        reduced = model.embeddings.forward(batch.sparse_traces)
        dense.forward(batch.dense_features, reduced)
        assert "dense_features" not in dense.dense_feature_sram
        assert "interaction" not in dense.mlp_input_sram
        # Weights stay resident for the next inference.
        assert dense.weights_loaded


class TestTimingEstimate:
    def test_components_sum(self, complex_):
        dense, _ = complex_
        estimate = dense.estimate(DLRM1, 16)
        assert estimate.total_s == pytest.approx(
            estimate.bottom_mlp_s
            + estimate.interaction_s
            + estimate.top_mlp_s
            + estimate.sigmoid_s
            + estimate.control_s
        )

    def test_latency_grows_with_batch(self, complex_):
        dense, _ = complex_
        assert dense.estimate(DLRM1, 128).total_s > dense.estimate(DLRM1, 1).total_s

    def test_dlrm6_heavier_than_dlrm1(self, complex_):
        dense, _ = complex_
        assert dense.estimate(DLRM6, 64).total_s > dense.estimate(DLRM1, 64).total_s

    def test_per_sample_cost_amortizes(self, complex_):
        dense, _ = complex_
        single = dense.estimate(DLRM6, 1).total_s
        batched = dense.estimate(DLRM6, 128).total_s / 128
        assert batched < single

    def test_rejects_bad_batch(self, complex_):
        dense, _ = complex_
        with pytest.raises(SimulationError):
            dense.estimate(DLRM1, 0)

    def test_negative_control_overhead_rejected(self):
        with pytest.raises(SimulationError):
            DenseAcceleratorComplex(FPGAConfig(), per_layer_control_s=-1.0)
