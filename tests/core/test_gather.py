"""Tests for the embedding gather unit (address generation)."""

import numpy as np
import pytest

from repro.core.gather import EmbeddingGatherUnit, GatherRequest
from repro.core.registers import BasePointerRegisters
from repro.core.sram import SRAMBuffer
from repro.errors import SimulationError


@pytest.fixture()
def gather_unit():
    registers = BasePointerRegisters()
    registers.write("table/t0", 0x10_000)
    sram = SRAMBuffer("SRAM_sparseID", 64 * 1024)
    return EmbeddingGatherUnit(registers, sram)


class TestAddressGeneration:
    def test_addresses_are_base_plus_row_offset(self, gather_unit):
        indices = np.array([0, 3, 7])
        offsets = np.array([0, 2, 3])
        gather_unit.load_indices("t0", indices, offsets)
        requests = gather_unit.request_batch("t0", row_bytes=128)
        assert [request.address for request in requests] == [
            0x10_000,
            0x10_000 + 3 * 128,
            0x10_000 + 7 * 128,
        ]
        assert all(request.num_bytes == 128 for request in requests)

    def test_sample_attribution_follows_offsets(self, gather_unit):
        gather_unit.load_indices("t0", np.array([1, 2, 3, 4]), np.array([0, 1, 1, 4]))
        requests = gather_unit.request_batch("t0", row_bytes=128)
        assert [request.sample_index for request in requests] == [0, 2, 2, 2]

    def test_request_counter(self, gather_unit):
        gather_unit.load_indices("t0", np.array([1, 2]), np.array([0, 2]))
        gather_unit.request_batch("t0", row_bytes=128)
        assert gather_unit.requests_generated == 2

    def test_lines_per_request(self):
        request = GatherRequest("t", 0, 0, num_bytes=128, sample_index=0)
        assert request.num_lines == 2
        assert GatherRequest("t", 0, 0, num_bytes=64, sample_index=0).num_lines == 1
        assert GatherRequest("t", 0, 0, num_bytes=130, sample_index=0).num_lines == 3

    def test_total_lines_helper(self, gather_unit):
        gather_unit.load_indices("t0", np.array([1, 2, 3]), np.array([0, 3]))
        requests = gather_unit.request_batch("t0", row_bytes=128)
        assert EmbeddingGatherUnit.total_lines(requests) == 6

    def test_unknown_table_raises(self, gather_unit):
        gather_unit.load_indices("t1", np.array([1]), np.array([0, 1]))
        with pytest.raises(KeyError):
            gather_unit.request_batch("t1", row_bytes=128)

    def test_invalid_row_bytes_rejected(self, gather_unit):
        gather_unit.load_indices("t0", np.array([1]), np.array([0, 1]))
        with pytest.raises(SimulationError):
            gather_unit.request_batch("t0", row_bytes=0)
        with pytest.raises(SimulationError):
            gather_unit.request_batch("t0", row_bytes=130)

    def test_invalid_offsets_rejected(self, gather_unit):
        with pytest.raises(SimulationError):
            gather_unit.load_indices("t0", np.array([1, 2]), np.array([0, 1]))
        with pytest.raises(SimulationError):
            gather_unit.load_indices("t0", np.array([1, 2]), np.array([2]))

    def test_indices_stored_as_int32(self, gather_unit):
        gather_unit.load_indices("t0", np.array([5, 6]), np.array([0, 2]))
        stored = gather_unit.index_sram.read("t0/indices")
        assert stored.dtype == np.int32
