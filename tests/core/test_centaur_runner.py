"""Tests for the Centaur performance runner (Figures 13-14 engine)."""

import pytest

from repro.config import (
    DLRM1,
    DLRM2,
    DLRM4,
    DLRM5,
    DLRM6,
    HARPV2_SYSTEM,
    PAPER_BATCH_SIZES,
    PAPER_MODELS,
)
from repro.core import CentaurRunner
from repro.cpu import CPUOnlyRunner
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def runner():
    return CentaurRunner(HARPV2_SYSTEM)


@pytest.fixture(scope="module")
def cpu_runner():
    return CPUOnlyRunner(HARPV2_SYSTEM)


class TestRunnerOutputs:
    def test_breakdown_has_figure14_stages(self, runner):
        result = runner.run(DLRM1, 16)
        assert set(result.breakdown.stages) == {"IDX", "EMB", "DNF", "MLP", "Other"}
        assert result.design_point == "Centaur"

    def test_fractions_sum_to_one(self, runner):
        assert sum(runner.run(DLRM4, 64).breakdown.fractions().values()) == pytest.approx(1.0)

    def test_power_matches_table4(self, runner):
        assert runner.run(DLRM1, 1).power_watts == 74.0

    def test_extra_metrics_present(self, runner):
        extra = runner.run(DLRM1, 4).extra
        for key in ("gather_bandwidth", "gather_s", "dense_bottom_s", "dense_top_s"):
            assert key in extra

    def test_rejects_bad_inputs(self, runner):
        with pytest.raises(SimulationError):
            runner.run(DLRM1, 0)
        with pytest.raises(SimulationError):
            CentaurRunner(HARPV2_SYSTEM, other_fixed_s=-1.0)


class TestPaperShapes:
    def test_embedding_dominates_for_embedding_heavy_models(self, runner):
        for model in (DLRM2, DLRM4, DLRM5):
            result = runner.run(model, 64)
            assert result.breakdown.fraction("EMB") > 0.5

    def test_gather_throughput_peaks_near_paper_value(self, runner):
        """Up to ~11.9 GB/s, i.e. ~68% of the effective link bandwidth."""
        best = max(
            runner.effective_embedding_throughput(model, batch)
            for model in PAPER_MODELS
            for batch in PAPER_BATCH_SIZES
        )
        assert 1.1e10 < best < 1.25e10

    def test_speedup_largest_at_small_batch(self, runner, cpu_runner):
        speedups = {}
        for batch in (1, 128):
            centaur = runner.run(DLRM4, batch)
            cpu = cpu_runner.run(DLRM4, batch)
            speedups[batch] = centaur.speedup_over(cpu)
        assert speedups[1] > speedups[128]
        assert speedups[1] > 5.0

    def test_centaur_wins_at_small_and_medium_batches(self, runner, cpu_runner):
        for model in PAPER_MODELS:
            for batch in (1, 4, 16):
                centaur = runner.run(model, batch)
                cpu = cpu_runner.run(model, batch)
                assert centaur.speedup_over(cpu) > 1.0, (model.name, batch)

    def test_cpu_overtakes_gather_throughput_only_at_large_batch_big_models(
        self, runner, cpu_runner
    ):
        """Section VI-B: the EB-Streamer falls behind CPU-only gather
        throughput only for DLRM(4)/(5)-class models at batch 128."""
        for model in (DLRM4, DLRM5):
            small_batch_ratio = runner.effective_embedding_throughput(
                model, 1
            ) / cpu_runner.effective_embedding_throughput(model, 1)
            large_batch_ratio = runner.effective_embedding_throughput(
                model, 128
            ) / cpu_runner.effective_embedding_throughput(model, 128)
            assert small_batch_ratio > 1.0
            assert large_batch_ratio < 1.0

    def test_dlrm6_benefits_from_dense_accelerator(self, runner, cpu_runner):
        """DLRM(6) is MLP-bound; its gains come from the dense complex."""
        centaur = runner.run(DLRM6, 64)
        cpu = cpu_runner.run(DLRM6, 64)
        assert centaur.speedup_over(cpu) > 2.0
        assert centaur.breakdown.get("MLP") < cpu.breakdown.get("MLP")

    def test_energy_efficiency_exceeds_speedup(self, runner, cpu_runner):
        """Centaur draws less power than CPU-only, so efficiency > speedup."""
        centaur = runner.run(DLRM4, 16)
        cpu = cpu_runner.run(DLRM4, 16)
        assert centaur.energy_efficiency_over(cpu) > centaur.speedup_over(cpu)

    def test_idx_and_dnf_are_minor_contributors(self, runner):
        for model in PAPER_MODELS:
            result = runner.run(model, 32)
            assert result.breakdown.fraction("IDX") < 0.2
            assert result.breakdown.fraction("DNF") < 0.2
