"""Tests for the on-chip SRAM buffer model."""

import numpy as np
import pytest

from repro.core.sram import SRAMBuffer
from repro.errors import CapacityError, ConfigurationError


class TestSRAMBuffer:
    def test_write_read_roundtrip(self):
        sram = SRAMBuffer("test", 1024)
        data = np.arange(16, dtype=np.float32)
        sram.write("weights", data)
        np.testing.assert_array_equal(sram.read("weights"), data)
        assert sram.total_writes == 1
        assert sram.total_reads == 1

    def test_capacity_enforced(self):
        sram = SRAMBuffer("test", 64)
        with pytest.raises(CapacityError):
            sram.write("too-big", np.zeros(32, dtype=np.float32))

    def test_capacity_accounts_for_existing_contents(self):
        sram = SRAMBuffer("test", 128)
        sram.write("a", np.zeros(16, dtype=np.float32))
        with pytest.raises(CapacityError):
            sram.write("b", np.zeros(32, dtype=np.float32))

    def test_replacing_a_key_reuses_its_space(self):
        sram = SRAMBuffer("test", 128)
        sram.write("a", np.zeros(32, dtype=np.float32))
        # Replacing with same size must not raise even though the buffer is full.
        sram.write("a", np.ones(32, dtype=np.float32))
        np.testing.assert_array_equal(sram.read("a"), 1)

    def test_replace_can_be_disallowed(self):
        sram = SRAMBuffer("test", 128)
        sram.write("a", np.zeros(4, dtype=np.float32))
        with pytest.raises(ConfigurationError):
            sram.write("a", np.zeros(4, dtype=np.float32), allow_replace=False)

    def test_occupancy_and_free_bytes(self):
        sram = SRAMBuffer("test", 256)
        sram.write("a", np.zeros(16, dtype=np.float32))
        assert sram.used_bytes == 64
        assert sram.free_bytes == 192
        assert sram.occupancy == pytest.approx(0.25)
        assert sram.capacity_bits == 256 * 8

    def test_discard_and_clear(self):
        sram = SRAMBuffer("test", 256)
        sram.write("a", np.zeros(8, dtype=np.float32))
        sram.write("b", np.zeros(8, dtype=np.float32))
        sram.discard("a")
        assert "a" not in sram and "b" in sram
        sram.discard("a")  # idempotent
        sram.clear()
        assert sram.used_bytes == 0

    def test_maybe_read(self):
        sram = SRAMBuffer("test", 64)
        assert sram.maybe_read("missing") is None
        sram.write("x", np.zeros(2, dtype=np.float32))
        assert sram.maybe_read("x") is not None

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            SRAMBuffer("test", 64).read("missing")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SRAMBuffer("test", 0)
