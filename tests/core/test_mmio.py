"""Tests for host memory, the IOMMU and the MMIO interface."""

import numpy as np
import pytest

from repro.core.mmio import HostMemory, IOMMU, MMIOInterface
from repro.core.registers import BasePointerRegisters
from repro.dlrm.embedding import VirtualEmbeddingTable
from repro.errors import ConfigurationError, SimulationError


class TestHostMemory:
    def test_register_assigns_page_aligned_addresses(self):
        memory = HostMemory(page_bytes=4096)
        first = memory.register("a", np.zeros(10, dtype=np.float32))
        second = memory.register("b", np.zeros(10, dtype=np.float32))
        assert first.base_address % 4096 == 0
        assert second.base_address % 4096 == 0
        assert second.base_address >= first.end_address

    def test_duplicate_names_rejected(self):
        memory = HostMemory()
        memory.register("a", np.zeros(4, dtype=np.float32))
        with pytest.raises(ConfigurationError):
            memory.register("a", np.zeros(4, dtype=np.float32))

    def test_empty_region_rejected(self):
        with pytest.raises(ConfigurationError):
            HostMemory().register("empty", np.zeros(0, dtype=np.float32))

    def test_read_array_region(self):
        memory = HostMemory()
        data = np.arange(16, dtype=np.float32)
        region = memory.register("data", data)
        out = memory.read(region.base_address + 8, 12)
        np.testing.assert_array_equal(out, data[2:5])
        assert memory.bytes_read == 12

    def test_read_embedding_table_region_at_row_granularity(self):
        table = VirtualEmbeddingTable(num_rows=100, embedding_dim=8, seed=0)
        memory = HostMemory()
        region = memory.register("table", table)
        row5 = memory.read(region.base_address + 5 * table.row_bytes, table.row_bytes)
        np.testing.assert_array_equal(row5, table.rows(np.array([5]))[0])

    def test_table_region_rejects_partial_row_reads(self):
        table = VirtualEmbeddingTable(num_rows=10, embedding_dim=8)
        memory = HostMemory()
        region = memory.register("table", table)
        with pytest.raises(SimulationError):
            memory.read(region.base_address + 4, 8)

    def test_unmapped_address_rejected(self):
        memory = HostMemory()
        memory.register("a", np.zeros(4, dtype=np.float32))
        with pytest.raises(SimulationError):
            memory.read(0x1, 4)
        with pytest.raises(SimulationError):
            memory.read(0xDEAD0000, 4)

    def test_misaligned_reads_rejected(self):
        memory = HostMemory()
        region = memory.register("a", np.zeros(4, dtype=np.float32))
        with pytest.raises(SimulationError):
            memory.read(region.base_address + 1, 4)
        with pytest.raises(SimulationError):
            memory.read(region.base_address, 3)

    def test_write_into_array_region(self):
        memory = HostMemory()
        backing = np.zeros(8, dtype=np.float32)
        region = memory.register("out", backing)
        memory.write(region.base_address + 8, np.array([1.5, 2.5], dtype=np.float32))
        np.testing.assert_array_equal(backing[2:4], [1.5, 2.5])
        assert memory.bytes_written == 8

    def test_write_into_table_region_rejected(self):
        table = VirtualEmbeddingTable(num_rows=10, embedding_dim=8)
        memory = HostMemory()
        region = memory.register("table", table)
        with pytest.raises(SimulationError):
            memory.write(region.base_address, np.zeros(8, dtype=np.float32))

    def test_unregister(self):
        memory = HostMemory()
        region = memory.register("a", np.zeros(4, dtype=np.float32))
        memory.unregister("a")
        with pytest.raises(SimulationError):
            memory.read(region.base_address, 4)

    def test_region_lookup_by_name(self):
        memory = HostMemory()
        memory.register("a", np.zeros(4, dtype=np.float32))
        assert memory.region("a").name == "a"
        with pytest.raises(KeyError):
            memory.region("b")


class TestIOMMU:
    def test_identity_translation(self):
        iommu = IOMMU(page_bytes=4096)
        physical, hit = iommu.translate(4096 * 3 + 128)
        assert physical == 4096 * 3 + 128
        assert hit is False

    def test_tlb_hits_on_repeated_pages(self):
        iommu = IOMMU(page_bytes=4096, tlb_entries=4)
        iommu.translate(0)
        _, hit = iommu.translate(64)
        assert hit is True
        assert iommu.hit_rate == pytest.approx(0.5)

    def test_tlb_eviction(self):
        iommu = IOMMU(page_bytes=4096, tlb_entries=2)
        iommu.translate(0)          # page 0
        iommu.translate(4096)       # page 1
        iommu.translate(2 * 4096)   # page 2 evicts page 0 (LRU)
        _, hit = iommu.translate(0)
        assert hit is False

    def test_negative_address_rejected(self):
        with pytest.raises(SimulationError):
            IOMMU().translate(-1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IOMMU(page_bytes=0)
        with pytest.raises(ConfigurationError):
            IOMMU(tlb_entries=0)


class TestMMIOInterface:
    def test_writes_update_registers_and_latency(self):
        registers = BasePointerRegisters()
        mmio = MMIOInterface(registers, write_latency_s=2e-6)
        latency = mmio.write_base_pointer("table/0", 0x1000)
        assert latency == pytest.approx(2e-6)
        assert registers.read("table/0") == 0x1000
        assert mmio.total_latency_s == pytest.approx(2e-6)

    def test_region_pointer_helper(self):
        memory = HostMemory()
        region = memory.register("a", np.zeros(4, dtype=np.float32))
        registers = BasePointerRegisters()
        mmio = MMIOInterface(registers)
        mmio.write_region_pointer("a", region)
        assert registers.read("a") == region.base_address

    def test_doorbell_counts_as_write(self):
        mmio = MMIOInterface(BasePointerRegisters())
        mmio.doorbell()
        assert mmio.total_writes == 1

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            MMIOInterface(BasePointerRegisters(), write_latency_s=-1.0)
