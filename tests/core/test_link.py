"""Tests for the CPU<->FPGA chiplet link model."""

import pytest

from repro.config.system import LinkConfig
from repro.core.link import ChipletLink
from repro.errors import SimulationError


@pytest.fixture()
def link():
    return ChipletLink(LinkConfig())


class TestBulkTransfer:
    def test_zero_bytes(self, link):
        assert link.bulk_transfer(0).latency_s == 0.0

    def test_latency_has_fixed_and_streaming_parts(self, link):
        estimate = link.bulk_transfer(1_000_000)
        assert estimate.latency_s == pytest.approx(estimate.fixed_s + estimate.streaming_s)
        assert estimate.fixed_s == pytest.approx(link.config.latency_s)

    def test_counters_accumulate(self, link):
        link.bulk_transfer(100)
        link.bulk_transfer(200)
        assert link.bytes_transferred == 300
        assert link.transfers == 2

    def test_negative_rejected(self, link):
        with pytest.raises(SimulationError):
            link.bulk_transfer(-1)


class TestGatherBandwidth:
    def test_peak_gather_bandwidth_is_68_percent_of_effective(self, link):
        # Section VI-B: EB-Streamer achieves ~68% of the 17-18 GB/s effective link bw.
        assert link.peak_gather_bandwidth == pytest.approx(
            0.68 * link.config.effective_bandwidth
        )
        assert 11e9 < link.peak_gather_bandwidth < 12.5e9

    def test_bandwidth_limited_by_outstanding_requests(self, link):
        few = link.gather_bandwidth(4)
        many = link.gather_bandwidth(128)
        assert few < many
        assert many == pytest.approx(link.peak_gather_bandwidth)

    def test_outstanding_capped_by_config(self, link):
        assert link.gather_bandwidth(10_000) == link.gather_bandwidth(
            link.config.max_outstanding_requests
        )

    def test_rejects_non_positive_outstanding(self, link):
        with pytest.raises(SimulationError):
            link.gather_bandwidth(0)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(SimulationError):
            ChipletLink(LinkConfig(), gather_efficiency=0.0)


class TestGatherStream:
    def test_zero_lines(self, link):
        assert link.gather_stream(0, 16).latency_s == 0.0

    def test_stream_time_scales_with_lines(self, link):
        small = link.gather_stream(1_000, 128)
        large = link.gather_stream(10_000, 128)
        assert large.streaming_s == pytest.approx(10 * small.streaming_s)

    def test_achieved_bandwidth_below_gather_cap(self, link):
        estimate = link.gather_stream(100_000, 128)
        assert estimate.achieved_bandwidth <= link.peak_gather_bandwidth * (1 + 1e-9)

    def test_gathers_never_exceed_effective_link_bandwidth(self, link):
        estimate = link.gather_stream(1_000_000, 10_000)
        assert estimate.sustained_bandwidth < link.config.effective_bandwidth


class TestCacheBypassPath:
    def test_bypass_uses_higher_bandwidth(self):
        base = ChipletLink(LinkConfig())
        bypass = ChipletLink(LinkConfig().with_bypass(77e9))
        assert bypass.peak_gather_bandwidth > base.peak_gather_bandwidth
        assert bypass.peak_gather_bandwidth == pytest.approx(0.68 * 77e9)

    def test_bulk_transfers_still_use_coherent_path(self):
        bypass = ChipletLink(LinkConfig().with_bypass(77e9))
        estimate = bypass.bulk_transfer(1_000_000)
        assert estimate.sustained_bandwidth == pytest.approx(
            bypass.config.effective_bandwidth
        )
