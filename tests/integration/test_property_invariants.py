"""Cross-cutting property-based invariants over the performance models.

These hypothesis tests exercise the runners over arbitrary (model shape,
batch size) combinations and check invariants that must hold regardless of
calibration constants: accounting identities, monotonicity in work, and
consistency between the different ways of computing the same quantity.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import get_backend
from repro.config import DLRM1, DLRM2, HARPV2_SYSTEM
from repro.config.models import homogeneous_dlrm
from repro.core import CentaurRunner
from repro.cpu import CPUOnlyRunner
from repro.gpu import CPUGPURunner
from repro.serving import (
    AutoscalingCluster,
    ClusterSimulator,
    EWMAPolicy,
    QueueDepthPolicy,
    ScheduledPolicy,
    TargetUtilizationPolicy,
    TimeoutBatching,
)
from repro.workloads import DiurnalArrivals, OnOffArrivals, PoissonArrivals, Workload


def arbitrary_model(num_tables, gathers, rows_scale):
    return homogeneous_dlrm(
        name=f"prop-{num_tables}-{gathers}-{rows_scale}",
        num_tables=num_tables,
        rows_per_table=rows_scale * 10_000,
        gathers_per_table=gathers,
    )


MODEL_STRATEGY = st.builds(
    arbitrary_model,
    num_tables=st.integers(min_value=1, max_value=60),
    gathers=st.integers(min_value=1, max_value=100),
    rows_scale=st.integers(min_value=1, max_value=60),
)
BATCH_STRATEGY = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256])


class TestAccountingIdentities:
    @given(model=MODEL_STRATEGY, batch=BATCH_STRATEGY)
    @settings(max_examples=25, deadline=None)
    def test_energy_is_power_times_latency(self, model, batch):
        for runner in (
            CPUOnlyRunner(HARPV2_SYSTEM),
            CPUGPURunner(HARPV2_SYSTEM),
            CentaurRunner(HARPV2_SYSTEM),
        ):
            result = runner.run(model, batch)
            assert result.energy_joules == pytest.approx(
                result.power_watts * result.latency_seconds, rel=1e-9
            )
            assert result.latency_seconds == pytest.approx(
                sum(result.breakdown.stages.values()), rel=1e-9
            )
            assert result.latency_seconds > 0

    @given(model=MODEL_STRATEGY, batch=BATCH_STRATEGY)
    @settings(max_examples=25, deadline=None)
    def test_speedup_reciprocity(self, model, batch):
        cpu = CPUOnlyRunner(HARPV2_SYSTEM).run(model, batch)
        centaur = CentaurRunner(HARPV2_SYSTEM).run(model, batch)
        forward = centaur.speedup_over(cpu)
        backward = cpu.speedup_over(centaur)
        assert forward * backward == pytest.approx(1.0, rel=1e-9)

    @given(model=MODEL_STRATEGY, batch=BATCH_STRATEGY)
    @settings(max_examples=25, deadline=None)
    def test_useful_bytes_match_configuration(self, model, batch):
        cpu = CPUOnlyRunner(HARPV2_SYSTEM).run(model, batch)
        centaur = CentaurRunner(HARPV2_SYSTEM).run(model, batch)
        expected = model.embedding_bytes_per_sample() * batch
        assert cpu.embedding_traffic.useful_bytes == pytest.approx(expected)
        assert centaur.embedding_traffic.useful_bytes == pytest.approx(expected)


class TestMonotonicity:
    @given(model=MODEL_STRATEGY)
    @settings(max_examples=15, deadline=None)
    def test_latency_monotone_in_batch(self, model):
        for runner in (CPUOnlyRunner(HARPV2_SYSTEM), CentaurRunner(HARPV2_SYSTEM)):
            latencies = [runner.run(model, batch).latency_seconds for batch in (4, 16, 64, 256)]
            assert latencies == sorted(latencies)

    @given(
        gathers=st.integers(min_value=1, max_value=60),
        batch=st.sampled_from([4, 16, 64]),
    )
    @settings(max_examples=15, deadline=None)
    def test_more_gathers_more_embedding_time(self, gathers, batch):
        base = arbitrary_model(8, gathers, 10)
        heavier = arbitrary_model(8, gathers * 2, 10)
        for runner in (CPUOnlyRunner(HARPV2_SYSTEM), CentaurRunner(HARPV2_SYSTEM)):
            assert (
                runner.run(heavier, batch).breakdown.get("EMB")
                > runner.run(base, batch).breakdown.get("EMB")
            )


# -- serving invariants: random workload x policy x cluster ------------
def _arbitrary_workload(kind, rate_scale):
    rate = 10_000.0 * rate_scale
    if kind == "poisson":
        arrivals = PoissonArrivals(rate_qps=rate)
    elif kind == "bursty":
        arrivals = OnOffArrivals(
            on_rate_qps=2.0 * rate, off_rate_qps=0.5 * rate,
            mean_on_s=0.01, mean_off_s=0.01,
        )
    else:
        arrivals = DiurnalArrivals(
            trough_qps=0.3 * rate, peak_qps=2.0 * rate, period_s=0.1
        )
    return Workload(arrivals=arrivals, name=f"prop-{kind}-{rate_scale}")


def _arbitrary_policy(kind):
    if kind == "queue":
        return QueueDepthPolicy(high_watermark=24.0, low_watermark=2.0, cooldown_s=0.01)
    if kind == "util":
        return TargetUtilizationPolicy(target=0.6, deadband=0.1, cooldown_s=0.01)
    if kind == "ewma":
        return EWMAPolicy(alpha=0.4, headroom=1.2, replica_capacity_qps=20_000.0)
    if kind == "schedule":
        return ScheduledPolicy([(0.0, 1), (0.02, 3), (0.06, 2)])
    return None


WORKLOAD_KIND = st.sampled_from(["poisson", "bursty", "diurnal"])
RATE_SCALE = st.sampled_from([1, 2, 4])
POLICY_KIND = st.sampled_from(["queue", "util", "ewma", "schedule"])
FLEET_BOUNDS = st.tuples(
    st.integers(min_value=1, max_value=2),  # min replicas
    st.integers(min_value=2, max_value=4),  # max replicas
)
STREAM_SEED = st.integers(min_value=0, max_value=2**16)
BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=64)


class TestServingInvariants:
    @given(
        workload_kind=WORKLOAD_KIND,
        rate_scale=RATE_SCALE,
        policy_kind=POLICY_KIND,
        bounds=FLEET_BOUNDS,
        seed=STREAM_SEED,
    )
    @settings(max_examples=20, deadline=None)
    def test_conservation_and_replica_count_bounds(
        self, workload_kind, rate_scale, policy_kind, bounds, seed
    ):
        minimum, maximum = bounds
        cluster = AutoscalingCluster(
            get_backend("cpu", HARPV2_SYSTEM),
            DLRM2,
            policy=_arbitrary_policy(policy_kind),
            min_replicas=minimum,
            max_replicas=maximum,
            control_interval_s=5e-3,
            warmup_s=2e-3,
            batching=BATCHING,
        )
        report = cluster.serve_workload(
            _arbitrary_workload(workload_kind, rate_scale),
            num_requests=600,
            seed=seed,
        )
        outcome = cluster.last_outcome
        # Conservation: everything scheduled completed, nothing in flight.
        assert outcome.scheduled == outcome.completed == 600
        assert report.completed_requests == 600
        assert sum(r.completed_requests for r in report.per_replica) == 600
        # Replica counts: monotone-in-time change points, never negative,
        # always within the controller's bounds.
        autoscale = report.autoscale
        times = [time for time, _ in autoscale.timeline]
        counts = [count for _, count in autoscale.timeline]
        assert times == sorted(times)
        assert all(minimum <= count <= maximum for count in counts)
        assert all(count >= 0 for count in counts)
        assert autoscale.peak_replicas == max(counts)
        assert autoscale.replica_seconds >= 0.0
        # The replica-hours bill cannot exceed paying the whole pool for
        # the whole run (still-commissioned replicas bill until the final
        # control tick, up to one interval past the last completion), nor
        # undercut the busy time actually executed.
        horizon = max(report.makespan_s, times[-1]) + autoscale.control_interval_s
        assert autoscale.replica_seconds <= maximum * horizon + 1e-9
        busy = sum(r.device_busy_s for r in report.per_replica)
        assert autoscale.replica_seconds >= busy - 1e-9

    @given(
        workload_kind=WORKLOAD_KIND,
        rate_scale=RATE_SCALE,
        replicas=st.integers(min_value=1, max_value=3),
        seed=STREAM_SEED,
    )
    @settings(max_examples=12, deadline=None)
    def test_autoscaling_disabled_is_bit_identical_to_static(
        self, workload_kind, rate_scale, replicas, seed
    ):
        workload = _arbitrary_workload(workload_kind, rate_scale)
        backend = get_backend("cpu", HARPV2_SYSTEM)
        static = ClusterSimulator(
            backend, DLRM1, num_replicas=replicas, batching=BATCHING
        ).serve_workload(workload, num_requests=400, seed=seed)
        disabled = AutoscalingCluster(
            backend,
            DLRM1,
            policy=None,
            min_replicas=replicas,
            max_replicas=replicas + 2,
            batching=BATCHING,
        ).serve_workload(workload, num_requests=400, seed=seed)
        assert disabled.autoscale is None
        assert disabled.completed_requests == static.completed_requests
        assert disabled.num_replicas == static.num_replicas
        np.testing.assert_array_equal(
            disabled.latency.samples_s, static.latency.samples_s
        )
        assert disabled.total_energy_joules == static.total_energy_joules
        for mine, theirs in zip(disabled.per_replica, static.per_replica):
            assert mine.completed_requests == theirs.completed_requests
            assert mine.device_busy_s == theirs.device_busy_s
            assert mine.executed_batches == theirs.executed_batches


class TestPhysicalBounds:
    @given(model=MODEL_STRATEGY, batch=BATCH_STRATEGY)
    @settings(max_examples=25, deadline=None)
    def test_throughputs_respect_hardware_limits(self, model, batch):
        cpu = CPUOnlyRunner(HARPV2_SYSTEM)
        centaur = CentaurRunner(HARPV2_SYSTEM)
        assert (
            cpu.effective_embedding_throughput(model, batch)
            <= HARPV2_SYSTEM.memory.peak_bandwidth
        )
        assert (
            centaur.effective_embedding_throughput(model, batch)
            <= HARPV2_SYSTEM.link.effective_bandwidth
        )

    @given(model=MODEL_STRATEGY, batch=BATCH_STRATEGY)
    @settings(max_examples=25, deadline=None)
    def test_llc_counters_consistent(self, model, batch):
        result = CPUOnlyRunner(HARPV2_SYSTEM).run(model, batch)
        result.embedding_traffic.llc.validate()
        result.mlp_traffic.llc.validate()
        assert 0.0 <= result.embedding_traffic.llc.miss_rate <= 1.0
