"""Cross-cutting property-based invariants over the performance models.

These hypothesis tests exercise the runners over arbitrary (model shape,
batch size) combinations and check invariants that must hold regardless of
calibration constants: accounting identities, monotonicity in work, and
consistency between the different ways of computing the same quantity.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import HARPV2_SYSTEM
from repro.config.models import homogeneous_dlrm
from repro.core import CentaurRunner
from repro.cpu import CPUOnlyRunner
from repro.gpu import CPUGPURunner


def arbitrary_model(num_tables, gathers, rows_scale):
    return homogeneous_dlrm(
        name=f"prop-{num_tables}-{gathers}-{rows_scale}",
        num_tables=num_tables,
        rows_per_table=rows_scale * 10_000,
        gathers_per_table=gathers,
    )


MODEL_STRATEGY = st.builds(
    arbitrary_model,
    num_tables=st.integers(min_value=1, max_value=60),
    gathers=st.integers(min_value=1, max_value=100),
    rows_scale=st.integers(min_value=1, max_value=60),
)
BATCH_STRATEGY = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256])


class TestAccountingIdentities:
    @given(model=MODEL_STRATEGY, batch=BATCH_STRATEGY)
    @settings(max_examples=25, deadline=None)
    def test_energy_is_power_times_latency(self, model, batch):
        for runner in (
            CPUOnlyRunner(HARPV2_SYSTEM),
            CPUGPURunner(HARPV2_SYSTEM),
            CentaurRunner(HARPV2_SYSTEM),
        ):
            result = runner.run(model, batch)
            assert result.energy_joules == pytest.approx(
                result.power_watts * result.latency_seconds, rel=1e-9
            )
            assert result.latency_seconds == pytest.approx(
                sum(result.breakdown.stages.values()), rel=1e-9
            )
            assert result.latency_seconds > 0

    @given(model=MODEL_STRATEGY, batch=BATCH_STRATEGY)
    @settings(max_examples=25, deadline=None)
    def test_speedup_reciprocity(self, model, batch):
        cpu = CPUOnlyRunner(HARPV2_SYSTEM).run(model, batch)
        centaur = CentaurRunner(HARPV2_SYSTEM).run(model, batch)
        forward = centaur.speedup_over(cpu)
        backward = cpu.speedup_over(centaur)
        assert forward * backward == pytest.approx(1.0, rel=1e-9)

    @given(model=MODEL_STRATEGY, batch=BATCH_STRATEGY)
    @settings(max_examples=25, deadline=None)
    def test_useful_bytes_match_configuration(self, model, batch):
        cpu = CPUOnlyRunner(HARPV2_SYSTEM).run(model, batch)
        centaur = CentaurRunner(HARPV2_SYSTEM).run(model, batch)
        expected = model.embedding_bytes_per_sample() * batch
        assert cpu.embedding_traffic.useful_bytes == pytest.approx(expected)
        assert centaur.embedding_traffic.useful_bytes == pytest.approx(expected)


class TestMonotonicity:
    @given(model=MODEL_STRATEGY)
    @settings(max_examples=15, deadline=None)
    def test_latency_monotone_in_batch(self, model):
        for runner in (CPUOnlyRunner(HARPV2_SYSTEM), CentaurRunner(HARPV2_SYSTEM)):
            latencies = [runner.run(model, batch).latency_seconds for batch in (4, 16, 64, 256)]
            assert latencies == sorted(latencies)

    @given(
        gathers=st.integers(min_value=1, max_value=60),
        batch=st.sampled_from([4, 16, 64]),
    )
    @settings(max_examples=15, deadline=None)
    def test_more_gathers_more_embedding_time(self, gathers, batch):
        base = arbitrary_model(8, gathers, 10)
        heavier = arbitrary_model(8, gathers * 2, 10)
        for runner in (CPUOnlyRunner(HARPV2_SYSTEM), CentaurRunner(HARPV2_SYSTEM)):
            assert (
                runner.run(heavier, batch).breakdown.get("EMB")
                > runner.run(base, batch).breakdown.get("EMB")
            )


class TestPhysicalBounds:
    @given(model=MODEL_STRATEGY, batch=BATCH_STRATEGY)
    @settings(max_examples=25, deadline=None)
    def test_throughputs_respect_hardware_limits(self, model, batch):
        cpu = CPUOnlyRunner(HARPV2_SYSTEM)
        centaur = CentaurRunner(HARPV2_SYSTEM)
        assert (
            cpu.effective_embedding_throughput(model, batch)
            <= HARPV2_SYSTEM.memory.peak_bandwidth
        )
        assert (
            centaur.effective_embedding_throughput(model, batch)
            <= HARPV2_SYSTEM.link.effective_bandwidth
        )

    @given(model=MODEL_STRATEGY, batch=BATCH_STRATEGY)
    @settings(max_examples=25, deadline=None)
    def test_llc_counters_consistent(self, model, batch):
        result = CPUOnlyRunner(HARPV2_SYSTEM).run(model, batch)
        result.embedding_traffic.llc.validate()
        result.mlp_traffic.llc.validate()
        assert 0.0 <= result.embedding_traffic.llc.miss_rate <= 1.0
