"""Determinism matrix: same seed => identical serving outcome, always.

Every (dispatcher x batching x autoscaler) combination is run twice from
scratch — fresh backend, cluster, policy and workload objects each time —
and the two runs must agree bit for bit on the :class:`StreamOutcome`
counters, the full latency sample array, the energy totals and (when
autoscaled) the replica timeline.

Because each test case builds everything it touches and compares only
within itself, the assertion holds under any test ordering — including the
work-stealing schedules ``pytest-xdist`` produces — and any leakage of
mutable global state between cells shows up as a cross-run mismatch here.
"""

import hashlib
import pickle

import numpy as np
import pytest

from repro.backends import get_backend
from repro.chaos import Brownout, FaultSchedule, PoissonFaults, ReplicaCrash
from repro.config import DLRM2, HARPV2_SYSTEM
from repro.serving import (
    AdaptiveWindowBatching,
    AutoscalingCluster,
    CloseOnFullBatching,
    EWMAPolicy,
    JoinShortestQueueDispatcher,
    LeastLoadedDispatcher,
    PowerOfTwoChoicesDispatcher,
    QueueDepthPolicy,
    RoundRobinDispatcher,
    ScheduledPolicy,
    TargetUtilizationPolicy,
    TimeoutBatching,
)
from repro.workloads import OnOffArrivals, UpdateProcess, Workload

SEED = 11
NUM_REQUESTS = 1_200

DISPATCHERS = {
    "round-robin": RoundRobinDispatcher,
    "jsq": JoinShortestQueueDispatcher,
    "least-loaded": LeastLoadedDispatcher,
    "p2c": lambda: PowerOfTwoChoicesDispatcher(seed=5),
}

BATCHINGS = {
    "timeout": lambda: TimeoutBatching(window_s=1e-3, max_batch_size=64),
    "close-on-full": lambda: CloseOnFullBatching(batch_size=64),
    "adaptive": lambda: AdaptiveWindowBatching(base_window_s=2e-3, max_batch_size=64),
}

AUTOSCALERS = {
    "static": None,
    "queue": lambda: QueueDepthPolicy(
        high_watermark=24.0, low_watermark=2.0, cooldown_s=0.01
    ),
    "util": lambda: TargetUtilizationPolicy(target=0.6, deadband=0.1, cooldown_s=0.01),
    "ewma": lambda: EWMAPolicy(alpha=0.4, headroom=1.2, replica_capacity_qps=20_000.0),
    "schedule": lambda: ScheduledPolicy([(0.0, 2), (0.02, 3), (0.05, 1)]),
}


FAULTS = {
    "crash-restart": lambda: FaultSchedule(
        [ReplicaCrash(at_s=0.01, restart_after_s=0.008)], sla_s=5e-3
    ),
    "crash-shed": lambda: FaultSchedule(
        [ReplicaCrash(at_s=0.012, on_inflight="shed")], sla_s=5e-3
    ),
    "brownout": lambda: FaultSchedule(
        [Brownout(at_s=0.01, duration_s=0.015, replica=0, latency_factor=3.0)],
        sla_s=5e-3,
    ),
    "poisson-storm": lambda: FaultSchedule(
        [
            PoissonFaults(
                template=ReplicaCrash(at_s=0.0, restart_after_s=0.005),
                rate_hz=50.0,
                end_s=0.04,
                seed=3,
            )
        ],
        sla_s=5e-3,
    ),
}


def _run(
    dispatcher_key: str,
    batching_key: str,
    autoscaler_key: str,
    fault_key: str = None,
):
    """One complete serving run built entirely from fresh objects."""
    backend = get_backend("cpu", HARPV2_SYSTEM)
    workload = Workload(
        arrivals=OnOffArrivals(
            on_rate_qps=50_000.0, off_rate_qps=10_000.0, mean_on_s=0.01, mean_off_s=0.01
        ),
        name="bursty",
    )
    policy_factory = AUTOSCALERS[autoscaler_key]
    cluster = AutoscalingCluster(
        backend,
        DLRM2,
        policy=policy_factory() if policy_factory is not None else None,
        min_replicas=2,
        max_replicas=4,
        initial_replicas=2,
        control_interval_s=5e-3,
        warmup_s=2e-3,
        dispatcher=DISPATCHERS[dispatcher_key](),
        batching=BATCHINGS[batching_key](),
    )
    report = cluster.serve_workload(
        workload,
        num_requests=NUM_REQUESTS,
        seed=SEED,
        faults=FAULTS[fault_key]() if fault_key is not None else None,
    )
    return report, cluster.last_outcome


def _fingerprint(report, outcome):
    autoscale = report.autoscale
    return (
        (outcome.scheduled, outcome.completed, outcome.peak_resident),
        report.completed_requests,
        report.num_replicas,
        tuple(
            (replica.completed_requests, replica.device_busy_s, replica.energy_joules)
            for replica in report.per_replica
        ),
        report.latency.samples_s.tobytes(),
        report.total_energy_joules,
        autoscale.timeline if autoscale is not None else None,
        autoscale.replica_seconds if autoscale is not None else None,
    )


@pytest.mark.parametrize("dispatcher_key", sorted(DISPATCHERS))
@pytest.mark.parametrize("batching_key", sorted(BATCHINGS))
@pytest.mark.parametrize("autoscaler_key", sorted(AUTOSCALERS))
def test_same_seed_same_outcome(dispatcher_key, batching_key, autoscaler_key):
    first_report, first_outcome = _run(dispatcher_key, batching_key, autoscaler_key)
    second_report, second_outcome = _run(dispatcher_key, batching_key, autoscaler_key)

    assert first_outcome == second_outcome
    assert _fingerprint(first_report, first_outcome) == _fingerprint(
        second_report, second_outcome
    )
    np.testing.assert_array_equal(
        first_report.latency.samples_s, second_report.latency.samples_s
    )
    # Conservation holds in every cell of the matrix.
    assert first_outcome.scheduled == first_outcome.completed == NUM_REQUESTS


UPDATE_STREAMS = {
    "inval-slow": lambda: UpdateProcess(
        arrivals=2_000, rows_per_update=8, mode="invalidate"
    ),
    "inval-storm": lambda: UpdateProcess(
        arrivals=20_000, rows_per_update=8, mode="invalidate"
    ),
    "write-through": lambda: UpdateProcess(
        arrivals=20_000, rows_per_update=8, mode="write-through"
    ),
}


def _run_sharded_updates(policy_key: str, stream_key: str):
    """One sharded serving run under an update stream, fresh objects only."""
    from repro.config.models import homogeneous_dlrm
    from repro.serving import ShardedReplicaGroup
    from repro.sharding import CacheConfig
    from repro.workloads import PoissonArrivals, Workload
    from repro.workloads.traces import ZipfianTrace

    model = homogeneous_dlrm(
        name="matrix-updates",
        num_tables=4,
        rows_per_table=5_000,
        gathers_per_table=8,
        embedding_dim=32,
    )
    group = ShardedReplicaGroup(
        get_backend("cpu", HARPV2_SYSTEM),
        model,
        num_shards=2,
        strategy="row",
        cache=CacheConfig(policy=policy_key, capacity_rows=1_024),
        batching=TimeoutBatching(window_s=1e-3, max_batch_size=64),
        system=HARPV2_SYSTEM,
        updates=UPDATE_STREAMS[stream_key](),
    )
    workload = Workload(
        arrivals=PoissonArrivals(rate_qps=30_000.0),
        trace=ZipfianTrace(alpha=1.05),
        name="zipf",
    )
    return group.serve_workload(workload, num_requests=800, seed=SEED)


@pytest.mark.parametrize("policy_key", ["lru", "lfu"])
@pytest.mark.parametrize("stream_key", sorted(UPDATE_STREAMS))
def test_same_seed_same_outcome_under_update_streams(policy_key, stream_key):
    """Cache policy x update stream: seeded pushes are bit-for-bit
    reproducible across fresh-object runs — pickled *untouched* (stat
    accessors memoize into instance state, so the snapshot comes first)."""
    first = _run_sharded_updates(policy_key, stream_key)
    second = _run_sharded_updates(policy_key, stream_key)
    first_blob = pickle.dumps(first, protocol=4)
    second_blob = pickle.dumps(second, protocol=4)
    assert hashlib.sha256(first_blob).hexdigest() == hashlib.sha256(
        second_blob
    ).hexdigest()
    assert pickle.dumps(first.sharding, protocol=4) == pickle.dumps(
        second.sharding, protocol=4
    )
    # The stream actually drove the caches in every cell.
    assert first.sharding.update_events > 0
    assert first.completed_requests == 800


@pytest.mark.parametrize("dispatcher_key", sorted(DISPATCHERS))
@pytest.mark.parametrize("autoscaler_key", sorted(AUTOSCALERS))
@pytest.mark.parametrize("fault_key", sorted(FAULTS))
def test_same_seed_same_outcome_under_faults(
    dispatcher_key, autoscaler_key, fault_key
):
    """Dispatcher x autoscaler x fault type: bit-for-bit reproducible, and
    the conservation identity relaxes only by the explicit shed count."""
    first_report, first_outcome = _run(
        dispatcher_key, "timeout", autoscaler_key, fault_key
    )
    second_report, second_outcome = _run(
        dispatcher_key, "timeout", autoscaler_key, fault_key
    )

    assert first_outcome == second_outcome
    assert _fingerprint(first_report, first_outcome) == _fingerprint(
        second_report, second_outcome
    )
    # Incident reports are byte-identical across fresh-object runs.
    assert first_report.incidents is not None
    assert hashlib.sha256(
        pickle.dumps(first_report.incidents, protocol=4)
    ).hexdigest() == hashlib.sha256(
        pickle.dumps(second_report.incidents, protocol=4)
    ).hexdigest()
    # Chaos accounting is reflected in the autoscale report.
    assert first_report.autoscale.crashes == second_report.autoscale.crashes
    assert first_report.autoscale.restarts == second_report.autoscale.restarts
    # Conservation: arrivals == completed + shed, in every cell.
    assert first_outcome.scheduled == NUM_REQUESTS
    assert first_outcome.completed + first_outcome.shed == NUM_REQUESTS
    assert first_report.incidents.total_shed == first_outcome.shed
