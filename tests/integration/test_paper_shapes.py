"""Integration checks of the paper's headline claims over the full sweep.

Absolute numbers are model-derived (this is a simulator, not the authors'
HARPv2 testbed), so these tests pin down the *shape* of the results: who
wins, by roughly what factor, and where the crossovers fall — exactly the
claims EXPERIMENTS.md records.
"""

import pytest

from repro.analysis import DesignPointSweep, headline_summary
from repro.config import DLRM4, DLRM5, DLRM6, HARPV2_SYSTEM, PAPER_BATCH_SIZES, PAPER_MODELS
from repro.utils.stats_utils import geometric_mean


@pytest.fixture(scope="module")
def sweep():
    return DesignPointSweep(HARPV2_SYSTEM).run()


@pytest.fixture(scope="module")
def summary():
    return headline_summary(HARPV2_SYSTEM)


class TestHeadlineClaims:
    def test_centaur_speedup_band(self, summary):
        """Paper: 1.7-17.2x end-to-end speedup over CPU-only."""
        assert summary["centaur_speedup_max"] > 5.0
        assert summary["centaur_speedup_max"] < 30.0
        assert summary["centaur_speedup_min"] > 0.5

    def test_centaur_energy_efficiency_band(self, summary):
        """Paper: 1.7-19.5x energy-efficiency improvement over CPU-only."""
        assert summary["centaur_efficiency_max"] > summary["centaur_speedup_max"]
        assert summary["centaur_efficiency_max"] < 35.0

    def test_gather_bandwidth_improvement(self, summary):
        """Paper: ~27x average gather-throughput improvement, dipping to
        ~0.67x for DLRM(4)/(5) at batch 128."""
        assert summary["gather_bw_improvement_mean"] > 5.0
        assert summary["gather_bw_improvement_max"] > 20.0
        assert summary["gather_bw_improvement_min"] < 1.0

    def test_cpu_only_vs_cpu_gpu(self, summary):
        """Paper: CPU-only is ~1.1x faster and ~1.9x more energy-efficient."""
        assert 0.8 < summary["cpu_vs_gpu_performance_geomean"] < 1.5
        assert 1.4 < summary["cpu_vs_gpu_efficiency_geomean"] < 2.6


class TestPerModelBehaviour:
    def test_centaur_wins_on_average_for_every_model(self, sweep):
        for model in PAPER_MODELS:
            speedups = [
                sweep.get("Centaur", model.name, batch).speedup_over(
                    sweep.get("CPU-only", model.name, batch)
                )
                for batch in PAPER_BATCH_SIZES
            ]
            assert geometric_mean(speedups) > 1.2, model.name

    def test_dlrm6_average_speedup_is_moderate(self, sweep):
        """Paper: DLRM(6) averages ~6.2x — lower than the embedding-bound
        peaks because its embedding stage is tiny; in this reproduction it
        lands in the 2-8x band and is driven by the dense accelerator."""
        speedups = [
            sweep.get("Centaur", "DLRM(6)", batch).speedup_over(
                sweep.get("CPU-only", "DLRM(6)", batch)
            )
            for batch in PAPER_BATCH_SIZES
        ]
        average = geometric_mean(speedups)
        assert 2.0 < average < 8.0

    def test_biggest_speedups_come_from_embedding_heavy_models_at_small_batch(self, sweep):
        best_key = None
        best_speedup = 0.0
        for model in PAPER_MODELS:
            for batch in PAPER_BATCH_SIZES:
                speedup = sweep.get("Centaur", model.name, batch).speedup_over(
                    sweep.get("CPU-only", model.name, batch)
                )
                if speedup > best_speedup:
                    best_speedup = speedup
                    best_key = (model.name, batch)
        assert best_key[1] == 1
        assert best_key[0] in {"DLRM(2)", "DLRM(4)", "DLRM(5)"}

    def test_crossover_limited_to_large_batches_of_biggest_models(self, sweep):
        """Gather-throughput crossovers (CPU-only wins) only happen at
        batch >= 64 and only for the 50-table/80-gather models."""
        for model in PAPER_MODELS:
            for batch in PAPER_BATCH_SIZES:
                centaur = sweep.get("Centaur", model.name, batch)
                cpu = sweep.get("CPU-only", model.name, batch)
                ratio = (
                    centaur.effective_embedding_throughput
                    / cpu.effective_embedding_throughput
                )
                if ratio < 1.0:
                    assert batch >= 64
                    assert model.name in {"DLRM(3)", "DLRM(4)", "DLRM(5)"}

    def test_centaur_latency_is_monotone_in_batch(self, sweep):
        for model in PAPER_MODELS:
            latencies = [
                sweep.get("Centaur", model.name, batch).latency_seconds
                for batch in PAPER_BATCH_SIZES
            ]
            assert latencies == sorted(latencies)

    def test_power_ordering_follows_table4(self, sweep):
        sample = sweep.get("Centaur", "DLRM(1)", 1)
        cpu = sweep.get("CPU-only", "DLRM(1)", 1)
        gpu = sweep.get("CPU-GPU", "DLRM(1)", 1)
        assert sample.power_watts < cpu.power_watts < gpu.power_watts
