"""Integration: autoscaling holds a static fleet's SLA for fewer replica-hours.

The PR's acceptance scenario, end to end and seeded: one diurnal cycle is
served by (a) a fleet statically provisioned for the peak rate and (b) an
elastic fleet under the target-utilization autoscaler bounded by the same
peak size.  The elastic fleet must deliver at least 99% of the static
fleet's p99 SLA attainment while spending measurably fewer replica-seconds.
"""

import pytest

from repro.backends import get_backend
from repro.config import DLRM2, HARPV2_SYSTEM
from repro.serving import (
    AutoscalingCluster,
    CapacityPlanner,
    ClusterSimulator,
    TargetUtilizationPolicy,
    TimeoutBatching,
)
from repro.workloads import DiurnalArrivals, PoissonArrivals, Workload

SLA_S = 5e-3
TROUGH_QPS, PEAK_QPS = 4_000.0, 40_000.0
PERIOD_S = 0.4
SEED = 7
BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=64)

DIURNAL = Workload(
    arrivals=DiurnalArrivals(
        trough_qps=TROUGH_QPS, peak_qps=PEAK_QPS, period_s=PERIOD_S
    ),
    name="diurnal-cycle",
)


@pytest.fixture(scope="module")
def peak_replicas():
    """Peak-provision the static fleet with the capacity planner itself."""
    planner = CapacityPlanner(
        HARPV2_SYSTEM, sla_s=SLA_S, target_attainment=0.99, batching=BATCHING, seed=SEED
    )
    point = planner.plan_backend(
        "cpu",
        DLRM2,
        Workload(arrivals=PoissonArrivals(rate_qps=PEAK_QPS), name="peak"),
        duration_s=PERIOD_S / 4,
    )
    assert point.feasible
    return point.replicas


@pytest.fixture(scope="module")
def static_report(peak_replicas):
    backend = get_backend("cpu", HARPV2_SYSTEM)
    cluster = ClusterSimulator(
        backend, DLRM2, num_replicas=peak_replicas, batching=BATCHING
    )
    return cluster.serve_workload(DIURNAL, duration_s=PERIOD_S, seed=SEED)


@pytest.fixture(scope="module")
def elastic_report(peak_replicas):
    backend = get_backend("cpu", HARPV2_SYSTEM)
    cluster = AutoscalingCluster(
        backend,
        DLRM2,
        policy=TargetUtilizationPolicy(target=0.7, deadband=0.1, cooldown_s=0.02),
        min_replicas=1,
        max_replicas=peak_replicas,
        control_interval_s=0.01,
        warmup_s=backend.capabilities.provision_warmup_s,
        batching=BATCHING,
    )
    return cluster.serve_workload(DIURNAL, duration_s=PERIOD_S, seed=SEED)


class TestAutoscaledDiurnalServing:
    def test_same_traffic_served(self, static_report, elastic_report):
        assert elastic_report.completed_requests == static_report.completed_requests
        assert elastic_report.completed_requests > 0

    def test_attainment_within_one_percent_of_static(
        self, static_report, elastic_report
    ):
        static_attainment = static_report.latency.sla_attainment(SLA_S)
        elastic_attainment = elastic_report.latency.sla_attainment(SLA_S)
        assert elastic_attainment >= 0.99 * static_attainment

    def test_measurably_fewer_replica_hours(self, static_report, elastic_report):
        # "Measurably": at least 5% cheaper, not a rounding artifact.
        assert elastic_report.replica_seconds < 0.95 * static_report.replica_seconds

    def test_fleet_actually_breathed(self, elastic_report, peak_replicas):
        autoscale = elastic_report.autoscale
        assert autoscale is not None
        assert autoscale.policy == "target-utilization"
        assert autoscale.scale_up_events >= 1
        counts = {count for _, count in autoscale.timeline}
        assert len(counts) > 1  # not a constant fleet
        assert max(counts) <= peak_replicas

    def test_run_is_seeded_and_reproducible(self, elastic_report, peak_replicas):
        backend = get_backend("cpu", HARPV2_SYSTEM)
        cluster = AutoscalingCluster(
            backend,
            DLRM2,
            policy=TargetUtilizationPolicy(target=0.7, deadband=0.1, cooldown_s=0.02),
            min_replicas=1,
            max_replicas=peak_replicas,
            control_interval_s=0.01,
            warmup_s=backend.capabilities.provision_warmup_s,
            batching=BATCHING,
        )
        again = cluster.serve_workload(DIURNAL, duration_s=PERIOD_S, seed=SEED)
        assert again.autoscale.timeline == elastic_report.autoscale.timeline
        assert again.replica_seconds == elastic_report.replica_seconds
        assert (
            again.latency.samples_s.tobytes()
            == elastic_report.latency.samples_s.tobytes()
        )
