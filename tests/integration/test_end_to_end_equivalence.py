"""Integration tests: the Centaur hardware datapath vs the software DLRM.

These are the core correctness claims of the reproduction: partitioning the
model across the sparse accelerator (gather/reduce in "CPU memory") and the
dense accelerator (tiled GEMMs from on-chip SRAM) must not change the
numerics relative to running everything as plain numpy.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import HARPV2_SYSTEM
from repro.config.models import homogeneous_dlrm
from repro.core import CentaurDevice
from repro.dlrm import DLRM, UniformTraceGenerator, ZipfianTraceGenerator


def build(num_tables, rows, gathers, seed, dim=32):
    config = homogeneous_dlrm(
        name=f"e2e-{num_tables}x{rows}x{gathers}",
        num_tables=num_tables,
        rows_per_table=rows,
        gathers_per_table=gathers,
        embedding_dim=dim,
        bottom_hidden=(48, 24),
        top_hidden=(32,),
    )
    model = DLRM.from_config(config, seed=seed)
    device = CentaurDevice(model, HARPV2_SYSTEM)
    return config, model, device


class TestEquivalenceAcrossShapes:
    @pytest.mark.parametrize(
        "num_tables, rows, gathers, batch",
        [
            (1, 500, 1, 1),
            (2, 1_000, 3, 4),
            (4, 2_000, 8, 8),
            (8, 1_000, 5, 16),
            (12, 300, 2, 32),
        ],
    )
    def test_probabilities_match(self, num_tables, rows, gathers, batch):
        config, model, device = build(num_tables, rows, gathers, seed=num_tables)
        batch_data = UniformTraceGenerator(seed=batch).model_batch(config, batch)
        np.testing.assert_allclose(
            device.predict(batch_data),
            model.predict(batch_data),
            rtol=1e-4,
            atol=1e-5,
        )

    def test_zipfian_traffic_also_matches(self):
        config, model, device = build(4, 5_000, 10, seed=9)
        batch = ZipfianTraceGenerator(alpha=1.1, seed=3).model_batch(config, 8)
        np.testing.assert_allclose(
            device.predict(batch), model.predict(batch), rtol=1e-4, atol=1e-5
        )

    def test_every_intermediate_matches(self):
        config, model, device = build(4, 1_000, 6, seed=2)
        batch = UniformTraceGenerator(seed=5).model_batch(config, 6)
        hardware = device.infer(batch)
        software = model.forward(batch)
        np.testing.assert_allclose(
            hardware.reduced_embeddings, software.reduced_embeddings, rtol=1e-4, atol=1e-5
        )
        np.testing.assert_allclose(
            hardware.bottom_mlp_output, software.bottom_mlp_output, rtol=1e-3, atol=1e-4
        )
        np.testing.assert_allclose(
            hardware.interaction_output, software.interaction_output, rtol=1e-3, atol=1e-3
        )
        np.testing.assert_allclose(hardware.logits, software.logits, rtol=1e-3, atol=1e-4)

    @given(
        num_tables=st.integers(min_value=1, max_value=6),
        gathers=st.integers(min_value=1, max_value=8),
        batch=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_equivalence(self, num_tables, gathers, batch, seed):
        config, model, device = build(num_tables, 400, gathers, seed=seed)
        batch_data = UniformTraceGenerator(seed=seed).model_batch(config, batch)
        np.testing.assert_allclose(
            device.predict(batch_data), model.predict(batch_data), rtol=1e-3, atol=1e-4
        )


class TestMultipleRequests:
    def test_back_to_back_inferences_do_not_interfere(self):
        config, model, device = build(3, 800, 4, seed=1)
        generator = UniformTraceGenerator(seed=0)
        batches = [generator.model_batch(config, 4) for _ in range(5)]
        expected = [model.predict(batch) for batch in batches]
        actual = [device.predict(batch) for batch in batches]
        for want, got in zip(expected, actual):
            np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_varying_batch_sizes_on_one_device(self):
        config, model, device = build(3, 800, 4, seed=4)
        generator = UniformTraceGenerator(seed=6)
        for batch_size in (1, 7, 16, 3):
            batch = generator.model_batch(config, batch_size)
            np.testing.assert_allclose(
                device.predict(batch), model.predict(batch), rtol=1e-4, atol=1e-5
            )
