"""Acceptance: a 5M-request streaming serving run stays O(in-flight) memory.

The workload subsystem's streaming contract: serving an arbitrarily long
request stream holds only the in-flight requests (pending batch + device
queue + the driver's single look-ahead arrival) resident.  This test drives
five million requests through the event engine and asserts the peak resident
request count against the in-flight bound — not against the stream length.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DLRM2
from repro.config.models import DLRMConfig
from repro.results import InferenceResult, LatencyBreakdown
from repro.serving.batching import FixedSizeBatching
from repro.serving.replica import ReplicaServer, ServiceModel, drive_stream
from repro.sim.engine import Simulator
from repro.workloads import ConstantRateArrivals, Workload

TOTAL_REQUESTS = 5_000_000
BATCH_CAP = 1_024


@dataclass
class FlatRunner:
    """Constant-latency device so the run prices batches in O(1)."""

    latency_s: float = 2e-5
    design_point: str = "Flat"

    def run(self, model: DLRMConfig, batch_size: int) -> InferenceResult:
        return InferenceResult(
            design_point=self.design_point,
            model_name=model.name,
            batch_size=batch_size,
            breakdown=LatencyBreakdown({"Total": self.latency_s}),
            power_watts=10.0,
        )


def test_five_million_requests_hold_only_in_flight_memory():
    # Offered load ~20% of device capacity (1024 / 2e-5 = 51.2M QPS), so the
    # device keeps up and in-flight work stays near two batches.
    workload = Workload(
        arrivals=ConstantRateArrivals(rate_qps=10_000_000.0), name="scale-5m"
    )
    sim = Simulator()
    replica = ReplicaServer(
        sim,
        ServiceModel(FlatRunner(), DLRM2),
        FixedSizeBatching(batch_size=BATCH_CAP),
        record_latency_samples=False,
    )
    stream = workload.requests(num_requests=TOTAL_REQUESTS)
    outcome = drive_stream(sim, [replica], stream, lambda request: replica)

    # Every request arrived and completed (conservation at 5M scale).
    assert outcome.scheduled == TOTAL_REQUESTS
    assert outcome.completed == TOTAL_REQUESTS
    assert replica.completed_count == TOTAL_REQUESTS

    # Peak resident requests <= max in-flight: what the replica ever held
    # outstanding plus the driver's single scheduled look-ahead arrival.
    assert outcome.peak_resident <= replica.peak_outstanding + 1
    # And max in-flight is a handful of batches, unrelated to stream length.
    assert replica.peak_outstanding <= 4 * BATCH_CAP
    assert outcome.peak_resident <= 4 * BATCH_CAP + 1

    # No-samples mode retains neither per-request floats nor per-batch
    # records; only counters and running aggregates grow.
    assert len(replica.request_latency_s) == 0
    assert len(replica.executed) == 0
    # Full batches plus one flushed partial batch at end of stream.
    assert replica.batch_count == -(-TOTAL_REQUESTS // BATCH_CAP)
    assert replica.mean_latency_s > 0.0
    assert replica.latency_max_s < 1e-2
