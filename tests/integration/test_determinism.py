"""Determinism and reproducibility guarantees across the whole stack."""

import numpy as np

from repro.analysis import headline_summary
from repro.config import DLRM1, HARPV2_SYSTEM
from repro.config.models import homogeneous_dlrm
from repro.core import CentaurDevice, CentaurRunner
from repro.cpu import CPUOnlyRunner
from repro.dlrm import DLRM, UniformTraceGenerator


class TestPerformanceModelDeterminism:
    def test_runners_are_pure_functions_of_inputs(self):
        first = CPUOnlyRunner(HARPV2_SYSTEM).run(DLRM1, 32)
        second = CPUOnlyRunner(HARPV2_SYSTEM).run(DLRM1, 32)
        assert first.latency_seconds == second.latency_seconds
        assert first.breakdown.stages == second.breakdown.stages

        centaur_a = CentaurRunner(HARPV2_SYSTEM).run(DLRM1, 32)
        centaur_b = CentaurRunner(HARPV2_SYSTEM).run(DLRM1, 32)
        assert centaur_a.latency_seconds == centaur_b.latency_seconds

    def test_headline_summary_reproducible(self):
        kwargs = {"models": [DLRM1], "batch_sizes": [1, 16]}
        assert headline_summary(HARPV2_SYSTEM, **kwargs) == headline_summary(
            HARPV2_SYSTEM, **kwargs
        )


class TestFunctionalDeterminism:
    def test_same_seed_same_device_outputs(self):
        config = homogeneous_dlrm(
            "det", num_tables=3, rows_per_table=1_000, gathers_per_table=4
        )
        outputs = []
        for _ in range(2):
            model = DLRM.from_config(config, seed=123)
            device = CentaurDevice(model, HARPV2_SYSTEM)
            batch = UniformTraceGenerator(seed=456).model_batch(config, 8)
            outputs.append(device.predict(batch))
        np.testing.assert_array_equal(outputs[0], outputs[1])

    def test_different_seeds_give_different_predictions(self):
        config = homogeneous_dlrm(
            "det2", num_tables=3, rows_per_table=1_000, gathers_per_table=4
        )
        model_a = DLRM.from_config(config, seed=1)
        model_b = DLRM.from_config(config, seed=2)
        batch = UniformTraceGenerator(seed=0).model_batch(config, 8)
        assert not np.allclose(model_a.predict(batch), model_b.predict(batch))
