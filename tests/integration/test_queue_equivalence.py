"""Heap vs calendar queue: identical serving outcomes across the matrix.

The calendar queue's correctness contract is *observational equivalence*
with the binary heap: same ``(time, sequence)`` pop order means the same
event execution order means bit-identical serving results.  This test
drives every (dispatcher x batching x autoscaler) combination of the
determinism matrix once per queue implementation and compares the full
outcome fingerprint — stream conservation counters, per-replica counters,
the raw latency sample array, energy totals and autoscale timelines.
"""

import numpy as np
import pytest

from repro.backends import get_backend
from repro.config import DLRM2, HARPV2_SYSTEM
from repro.serving import AutoscalingCluster
from repro.workloads import OnOffArrivals, Workload

from tests.integration.test_determinism_matrix import (
    AUTOSCALERS,
    BATCHINGS,
    DISPATCHERS,
    _fingerprint,
)

SEED = 11
NUM_REQUESTS = 600


def _run(queue: str, dispatcher_key: str, batching_key: str, autoscaler_key: str):
    """One complete serving run on the given queue, all objects fresh."""
    backend = get_backend("cpu", HARPV2_SYSTEM)
    workload = Workload(
        arrivals=OnOffArrivals(
            on_rate_qps=50_000.0, off_rate_qps=10_000.0, mean_on_s=0.01, mean_off_s=0.01
        ),
        name="bursty",
    )
    policy_factory = AUTOSCALERS[autoscaler_key]
    cluster = AutoscalingCluster(
        backend,
        DLRM2,
        policy=policy_factory() if policy_factory is not None else None,
        min_replicas=2,
        max_replicas=4,
        initial_replicas=2,
        control_interval_s=5e-3,
        warmup_s=2e-3,
        dispatcher=DISPATCHERS[dispatcher_key](),
        batching=BATCHINGS[batching_key](),
        queue=queue,
    )
    report = cluster.serve_workload(workload, num_requests=NUM_REQUESTS, seed=SEED)
    return report, cluster.last_outcome


@pytest.mark.parametrize("dispatcher_key", sorted(DISPATCHERS))
@pytest.mark.parametrize("batching_key", sorted(BATCHINGS))
@pytest.mark.parametrize("autoscaler_key", sorted(AUTOSCALERS))
def test_calendar_queue_matches_heap(dispatcher_key, batching_key, autoscaler_key):
    heap_report, heap_outcome = _run(
        "heap", dispatcher_key, batching_key, autoscaler_key
    )
    cal_report, cal_outcome = _run(
        "calendar", dispatcher_key, batching_key, autoscaler_key
    )

    assert heap_outcome == cal_outcome
    assert _fingerprint(heap_report, heap_outcome) == _fingerprint(
        cal_report, cal_outcome
    )
    np.testing.assert_array_equal(
        heap_report.latency.samples_s, cal_report.latency.samples_s
    )
    assert heap_outcome.scheduled == heap_outcome.completed == NUM_REQUESTS
