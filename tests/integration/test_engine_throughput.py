"""Slow smoke: a seeded 1M-request run sustains engine throughput.

Marked ``slow``: CI runs it in the serial job (where wall-clock is not
skewed by xdist workers sharing cores).  The floor is deliberately loose —
a quarter of the measured quiet-machine rate (~277k req/s, see
BENCH_engine.json) — so it only trips on order-of-magnitude engine
regressions (e.g. an accidental O(n) scan per event), never on machine
noise.  Exact throughput tracking lives in benchmarks/test_engine_speed.py.
"""

from __future__ import annotations

import time

import pytest

from repro.config import DLRM2
from repro.serving.batching import FixedSizeBatching
from repro.serving.replica import ReplicaServer, ServiceModel, drive_stream
from repro.sim.engine import Simulator
from repro.workloads import ConstantRateArrivals, Workload

from tests.integration.test_streaming_scale import FlatRunner

TOTAL_REQUESTS = 1_000_000
BATCH_CAP = 1_024
#: Simulated requests per wall-clock second the engine must sustain.
FLOOR_REQS_PER_SEC = 60_000.0


@pytest.mark.slow
def test_one_million_requests_meet_throughput_floor():
    workload = Workload(
        arrivals=ConstantRateArrivals(rate_qps=10_000_000.0), name="smoke-1m"
    )
    sim = Simulator()
    replica = ReplicaServer(
        sim,
        ServiceModel(FlatRunner(), DLRM2),
        FixedSizeBatching(batch_size=BATCH_CAP),
        record_latency_samples=False,
    )
    stream = workload.requests(num_requests=TOTAL_REQUESTS, seed=3)
    start = time.perf_counter()
    outcome = drive_stream(sim, [replica], stream, lambda request: replica)
    elapsed = time.perf_counter() - start

    # Conservation before speed: every request arrived and completed.
    assert outcome.scheduled == TOTAL_REQUESTS
    assert outcome.completed == TOTAL_REQUESTS
    assert replica.completed_count == TOTAL_REQUESTS
    assert outcome.peak_resident <= replica.peak_outstanding + 1

    reqs_per_sec = TOTAL_REQUESTS / elapsed
    assert reqs_per_sec >= FLOOR_REQS_PER_SEC, (
        f"engine sustained only {reqs_per_sec:,.0f} simulated req/s over "
        f"{TOTAL_REQUESTS:,} requests (floor {FLOOR_REQS_PER_SEC:,.0f}); "
        "profile with Simulator(profile=True) or repro serve --profile"
    )
