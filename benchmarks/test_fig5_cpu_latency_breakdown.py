"""Figure 5: CPU-only inference latency breakdown (EMB / MLP / Other)."""

import pytest

from repro.analysis import figure5_latency_breakdown, render_figure5
from repro.config import PAPER_BATCH_SIZES, PAPER_MODELS


def test_figure5_cpu_latency_breakdown(benchmark, report_sink, system):
    rows = benchmark(
        figure5_latency_breakdown, system, PAPER_MODELS, PAPER_BATCH_SIZES
    )
    report_sink("figure5_cpu_latency_breakdown", render_figure5(rows))

    assert len(rows) == 36
    for row in rows:
        assert row.fractions_sum() == pytest.approx(1.0)

    # Shape 1: embedding layers account for the dominant share of time on the
    # 50-table models (the paper quotes up to ~79% across the sweep).
    max_emb = max(row.emb_fraction for row in rows)
    assert max_emb > 0.75
    for row in rows:
        if row.model_name in {"DLRM(2)", "DLRM(4)", "DLRM(5)"}:
            assert row.emb_fraction > 0.5

    # Shape 2: MLP remains a non-trivial contributor at small batch sizes
    # (most visible on the 5-table models, where the embedding stage is short).
    small_batch = [row for row in rows if row.batch_size == 1]
    assert max(row.mlp_fraction for row in small_batch) > 0.3
    for row in small_batch:
        if row.model_name in {"DLRM(1)", "DLRM(3)", "DLRM(6)"}:
            assert row.mlp_fraction > 0.2

    # Shape 3: DLRM(6) (lightweight embedding, heavy MLP) is MLP-dominated.
    for row in rows:
        if row.model_name == "DLRM(6)" and row.batch_size >= 16:
            assert row.mlp_fraction > row.emb_fraction

    # Shape 4: normalized latency grows with batch size for every model.
    for model in PAPER_MODELS:
        series = sorted(
            (row for row in rows if row.model_name == model.name),
            key=lambda row: row.batch_size,
        )
        latencies = [row.latency_s for row in series]
        assert latencies[1:] == sorted(latencies[1:])
