"""Experiment API: result-cache effectiveness over the paper's figure suite.

The redesign's contract: every figure slices one shared (backend, model,
batch) grid, so a full regeneration prices each unique design point exactly
once and re-rendering any figure afterwards is pure cache hits.
"""

import time

from repro.analysis import (
    figure5_latency_breakdown,
    figure6_cache_behaviour,
    figure7_effective_throughput,
    figure13_centaur_throughput,
    figure14_centaur_breakdown,
    figure15_comparison,
    headline_summary,
)
from repro.experiment import override_default_cache
from repro.utils.tables import TextTable


def regenerate_figure_suite(system):
    figure5_latency_breakdown(system)
    figure6_cache_behaviour(system)
    figure7_effective_throughput(system)
    figure13_centaur_throughput(system)
    figure14_centaur_breakdown(system)
    figure15_comparison(system)
    headline_summary(system)


def test_full_suite_computes_each_design_point_once(benchmark, report_sink, system):
    with override_default_cache() as cache:
        cold_start = time.perf_counter()
        regenerate_figure_suite(system)
        cold_s = time.perf_counter() - cold_start

        cold_entries = len(cache)
        assert cold_entries == 108, "3 backends x 6 models x 6 batch sizes"
        assert cache.max_compute_count() == 1, (
            "a full figure regeneration must price each design point exactly once"
        )
        assert cache.hits > 0, "later figures must reuse earlier design points"

        warm_start = time.perf_counter()
        regenerate_figure_suite(system)
        warm_s = time.perf_counter() - warm_start
        assert cache.max_compute_count() == 1, "warm reruns must not recompute"
        assert len(cache) == cold_entries
        assert warm_s < cold_s, "a fully warmed cache must beat the cold run"

        hits_after_warm = cache.hits
        benchmark(regenerate_figure_suite, system)

        # The persisted report carries only deterministic facts so repeated
        # benchmark runs leave benchmarks/output/ byte-identical; timings go
        # to stdout.
        table = TextTable(
            ["metric", "value"],
            title="Experiment cache effectiveness (figures 5-7, 13-15 + headline)",
        )
        table.add_row(["unique design points", cold_entries])
        table.add_row(["max computations per point", cache.max_compute_count()])
        table.add_row(["cache hits after one cold + one warm pass", hits_after_warm])
        report_sink("experiment_cache_effectiveness", table.render())
        print(
            f"cold regeneration: {cold_s * 1e3:.1f} ms, "
            f"warm: {warm_s * 1e3:.1f} ms ({cold_s / warm_s:.1f}x speedup)"
        )
