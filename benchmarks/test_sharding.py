"""Extension benchmark (beyond the paper): sharded embedding serving.

The paper serves every model from one device; at fleet scale the embedding
tables shard across devices and production traffic is skewed.  This
benchmark drives a zipf(1.05) trace through 1/2/4/8 embedding shards and
through a per-shard hot-row LRU/LFU cache, recording the hit rate,
shard-load imbalance, cross-shard traffic and the straggler-gated gather
stage — the quantities the sharding subsystem exists to expose.
"""

from repro.analysis import render_sharding_report
from repro.backends import get_backend
from repro.config import DLRM2
from repro.serving import ShardedReplicaGroup, TimeoutBatching
from repro.sharding import CacheConfig
from repro.workloads import PoissonArrivals, Workload
from repro.workloads.traces import ZipfianTrace

LOAD_QPS = 30_000
NUM_REQUESTS = 4_000
SLA_S = 5e-3
SEED = 42
CACHE_ROWS = 4_096
BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=64)

WORKLOAD = Workload(
    arrivals=PoissonArrivals(rate_qps=LOAD_QPS),
    trace=ZipfianTrace(alpha=1.05),
    name="zipf-1.05",
)


def _serve_grid(system):
    """Shard-count scaling plus cache on/off, all at one seed."""
    reports = {}
    for shards in (1, 2, 4, 8):
        for cache in (None, CacheConfig(policy="lru", capacity_rows=CACHE_ROWS)):
            label = f"x{shards} row-wise, cache {'lru' if cache else 'off'}"
            group = ShardedReplicaGroup(
                get_backend("centaur", system),
                DLRM2,
                num_shards=shards,
                strategy="row",
                cache=cache,
                batching=BATCHING,
                system=system,
            )
            reports[label] = group.serve_workload(
                WORKLOAD, num_requests=NUM_REQUESTS, seed=SEED
            )
    group = ShardedReplicaGroup(
        get_backend("centaur", system),
        DLRM2,
        num_shards=4,
        strategy="row",
        cache=CacheConfig(policy="lfu", capacity_rows=CACHE_ROWS),
        batching=BATCHING,
        system=system,
    )
    reports["x4 row-wise, cache lfu"] = group.serve_workload(
        WORKLOAD, num_requests=NUM_REQUESTS, seed=SEED
    )
    return reports


def test_sharded_embedding_serving(benchmark, report_sink, system):
    reports = benchmark(_serve_grid, system)

    report_sink(
        "sharding_scaling",
        render_sharding_report(
            reports,
            sla_s=SLA_S,
            title=(
                f"Sharded serving of DLRM(2), zipf(1.05) at {LOAD_QPS:,} QPS "
                "(extension experiment)"
            ),
        ),
    )

    # Shard scaling: the straggler-gated gather stage shrinks with shards.
    gather = {
        shards: reports[f"x{shards} row-wise, cache off"].sharding.mean_gather_s
        for shards in (1, 2, 4, 8)
    }
    assert gather[2] < gather[1]
    assert gather[4] < gather[2]
    assert gather[8] < gather[4]

    # The acceptance scenario: at equal seed, the hot-row cache turns the
    # zipf skew into hits and a lower mean gather latency at every width.
    for shards in (1, 2, 4, 8):
        off = reports[f"x{shards} row-wise, cache off"].sharding
        lru = reports[f"x{shards} row-wise, cache lru"].sharding
        assert off.hit_rate == 0.0
        assert lru.hit_rate > 0.3
        assert lru.mean_gather_s < off.mean_gather_s

    # LFU retains the zipf head better than LRU at the same capacity.
    lru4 = reports["x4 row-wise, cache lru"].sharding
    lfu4 = reports["x4 row-wise, cache lfu"].sharding
    assert lfu4.hit_rate > lru4.hit_rate

    # Cross-shard traffic is the price of width: it must grow with shards
    # and be zero for the unsharded group.
    assert reports["x1 row-wise, cache off"].sharding.cross_shard_bytes == 0.0
    assert (
        reports["x8 row-wise, cache off"].sharding.cross_shard_bytes
        > reports["x2 row-wise, cache off"].sharding.cross_shard_bytes
    )
