"""Table III: sparse vs dense accelerator FPGA resource usage."""

import pytest

from repro.analysis import render_table3, table3_module_resources
from repro.core.resources import FPGAResourceModel
from repro.config.system import FPGAConfig


def test_table3_module_resources(benchmark, report_sink):
    rows = benchmark(table3_module_resources)
    report_sink("table3_module_resources", render_table3(rows))

    assert len(rows) == 9
    for row in rows:
        assert row.paper is not None
        if row.paper["dsp"]:
            assert row.module.dsps == pytest.approx(row.paper["dsp"], rel=0.05)
        if row.paper["mem_bits"]:
            assert row.module.block_memory_bits == pytest.approx(
                row.paper["mem_bits"], rel=0.06
            )

    # The paper's qualitative point: the sparse complex is SRAM-heavy and
    # logic-light (54% of its block memory holds sparse indices), the dense
    # complex consumes the bulk of the DSPs and logic cells.
    totals = FPGAResourceModel(FPGAConfig()).group_totals()
    assert totals["Sparse"].dsps == 96
    assert totals["Dense"].dsps == 688
    assert totals["Sparse"].lc_comb < 0.05 * totals["Dense"].lc_comb
