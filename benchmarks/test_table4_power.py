"""Table IV: power consumption of the three design points."""

from repro.analysis import render_table4, table4_power


def test_table4_power(benchmark, report_sink):
    rows = benchmark(table4_power)
    report_sink("table4_power", render_table4(rows))

    by_name = {row.design_point: row for row in rows}
    assert by_name["CPU-only"].watts == by_name["CPU-only"].paper_watts == 80.0
    assert by_name["CPU-GPU"].watts == by_name["CPU-GPU"].paper_watts == 147.0
    assert by_name["Centaur"].watts == by_name["Centaur"].paper_watts == 74.0
    # Centaur draws the least power despite doing the most work on-package.
    assert by_name["Centaur"].watts < by_name["CPU-only"].watts < by_name["CPU-GPU"].watts
