"""Figure 14: Centaur's latency breakdown and end-to-end speedup over CPU-only."""

import pytest

from repro.analysis import figure14_centaur_breakdown, render_figure14
from repro.config import PAPER_BATCH_SIZES, PAPER_MODELS
from repro.utils.stats_utils import geometric_mean


def test_figure14_centaur_breakdown_and_speedup(benchmark, report_sink, system):
    rows = benchmark(
        figure14_centaur_breakdown, system, PAPER_MODELS, PAPER_BATCH_SIZES
    )
    report_sink("figure14_centaur_breakdown", render_figure14(rows))

    assert len(rows) == 36
    for row in rows:
        assert row.fractions_sum() == pytest.approx(1.0)

    speedups = [row.speedup for row in rows]

    # Shape 1: Centaur wins end to end at small and medium batch sizes for
    # every model; the largest gains come from embedding-bound models at
    # batch 1 (paper: up to 17.2x; this reproduction peaks lower because its
    # CPU baseline is less pessimistic at batch 1, see EXPERIMENTS.md).
    assert all(row.speedup > 1.0 for row in rows if row.batch_size <= 16)
    assert max(speedups) > 5.0
    best = max(rows, key=lambda row: row.speedup)
    assert best.batch_size == 1
    assert best.model_name in {"DLRM(2)", "DLRM(4)", "DLRM(5)"}

    # Shape 2: per-model average speedups are comfortably above 1 (the paper
    # reports averages between 1.7x and 17.2x; DLRM(6) averages ~6.2x there
    # and lands in the 2-8x band here).
    for model in PAPER_MODELS:
        series = [row.speedup for row in rows if row.model_name == model.name]
        assert geometric_mean(series) > 1.2, model.name
    dlrm6 = [row.speedup for row in rows if row.model_name == "DLRM(6)"]
    assert 2.0 < geometric_mean(dlrm6) < 8.0

    # Shape 3: for the embedding-bound models, speedups shrink with batch
    # size as the CPU's gather throughput catches up with the link-bound
    # EB-Streamer (DLRM(6), being MLP-bound, instead gains with batch as the
    # dense accelerator's advantage grows); the only points at (or below)
    # parity are the biggest models at batch >= 64.
    for model in PAPER_MODELS:
        if model.name == "DLRM(6)":
            continue
        by_batch = {row.batch_size: row.speedup for row in rows if row.model_name == model.name}
        assert by_batch[1] > by_batch[128]
    below_parity = [row for row in rows if row.speedup < 1.0]
    assert all(row.batch_size >= 64 for row in below_parity)

    # Shape 4: Centaur's own time is dominated by the EMB stage for the
    # embedding-heavy models, with IDX/DNF as minor contributors.
    for row in rows:
        if row.model_name in {"DLRM(2)", "DLRM(4)", "DLRM(5)"} and row.batch_size >= 16:
            assert row.emb_fraction > 0.4
        assert row.idx_fraction < 0.25
        assert row.dnf_fraction < 0.25
