"""Extension benchmark (beyond the paper): cache freshness under updates.

The paper's serving path reads a frozen embedding model; production
recommenders retrain continuously and stream updated rows into serving.
This benchmark pushes a zipf-skewed embedding-update stream (same skew
family as the read trace, so writes hammer the same hot rows reads do)
through the sharded hot-row caches and records how hit rate and p99
degrade with update rate under the two freshness disciplines —
invalidate (drop the row, repay the miss) and write-through (refresh in
place, pay an apply cost in the gather stage) — for both eviction
policies.

The zero-rate column doubles as the acceptance gate: a group built with
``updates=None`` must produce a report byte-identical to the read-only
sharded path (the update machinery must cost nothing when off).
"""

import pickle

from repro.analysis import render_freshness_report
from repro.backends import get_backend
from repro.config import DLRM2
from repro.serving import ShardedReplicaGroup, TimeoutBatching
from repro.sharding import CacheConfig
from repro.workloads import PoissonArrivals, UpdateProcess, Workload
from repro.workloads.traces import ZipfianTrace

LOAD_QPS = 30_000
NUM_REQUESTS = 4_000
SLA_S = 5e-3
SEED = 42
NUM_SHARDS = 2
# Big enough for cross-batch retention: at ~30k lookups per batch a
# 4k-row cache thrashes within each batch and update freshness cannot
# move the needle; 64k rows holds the zipf head across batches, which is
# the regime where invalidation visibly costs hits.
CACHE_ROWS = 65_536
ROWS_PER_PUSH = 64
UPDATE_RATES = (2_000, 8_000)
BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=64)

WORKLOAD = Workload(
    arrivals=PoissonArrivals(rate_qps=LOAD_QPS),
    trace=ZipfianTrace(alpha=1.05),
    name="zipf-1.05",
)


def _serve(system, policy, updates, **extra):
    group = ShardedReplicaGroup(
        get_backend("centaur", system),
        DLRM2,
        num_shards=NUM_SHARDS,
        strategy="row",
        cache=CacheConfig(policy=policy, capacity_rows=CACHE_ROWS),
        batching=BATCHING,
        system=system,
        updates=updates,
        **extra,
    )
    return group.serve_workload(WORKLOAD, num_requests=NUM_REQUESTS, seed=SEED)


def _freshness_grid(system):
    """policy x mode x update-rate, plus the read-only identity pair.

    The identity blobs are pickled immediately, before anything touches
    the reports: latency/stat accessors memoize into instance state, so a
    fair byte-comparison must snapshot fresh objects.
    """
    reports = {}
    identity = {}
    for policy in ("lru", "lfu"):
        baseline = _serve(system, policy, None)
        off = _serve(system, policy, None)
        identity[policy] = (pickle.dumps(baseline), pickle.dumps(off))
        reports[f"{policy} cache, updates off"] = off
        for mode in ("invalidate", "write-through"):
            for rate in UPDATE_RATES:
                updates = UpdateProcess(
                    arrivals=rate, rows_per_update=ROWS_PER_PUSH, mode=mode
                )
                reports[f"{policy} cache, {mode} @{rate:,}/s"] = _serve(
                    system, policy, updates
                )
    return reports, identity


def test_cache_freshness_under_update_streams(benchmark, report_sink, system):
    # 14 full serving runs: one timed round keeps the smoke within budget.
    reports, identity = benchmark.pedantic(
        _freshness_grid, args=(system,), rounds=1, iterations=1
    )

    # Acceptance gate first, before any rendering can touch the reports:
    # updates=None must be byte-identical to the read-only sharded path.
    for policy, (baseline_blob, off_blob) in identity.items():
        assert baseline_blob == off_blob, policy

    report_sink(
        "cache_freshness",
        render_freshness_report(
            reports,
            sla_s=SLA_S,
            title=(
                f"Cache freshness of DLRM(2), zipf(1.05) reads at "
                f"{LOAD_QPS:,} QPS vs zipf-matched update pushes of "
                f"{ROWS_PER_PUSH} rows (extension experiment)"
            ),
        ),
    )

    for policy in ("lru", "lfu"):
        off = reports[f"{policy} cache, updates off"].sharding
        assert off.update_events == 0 and off.update_rows == 0

        # Invalidation strips resident rows: hit rate degrades with the
        # push rate, and update-evictions stay separate from the
        # capacity-eviction counter.
        inval = {
            rate: reports[f"{policy} cache, invalidate @{rate:,}/s"].sharding
            for rate in UPDATE_RATES
        }
        assert inval[2_000].hit_rate < off.hit_rate
        assert inval[8_000].hit_rate < inval[2_000].hit_rate
        for stats in inval.values():
            assert stats.update_invalidations > 0
            assert stats.evictions > 0  # capacity churn is counted apart

        # Write-through keeps the rows resident: refreshes do not touch
        # recency/frequency, so the hit stream is *identical* to the
        # read-only run while the refresh cost lands in the gather stage
        # as apply seconds.
        wt = {
            rate: reports[f"{policy} cache, write-through @{rate:,}/s"].sharding
            for rate in UPDATE_RATES
        }
        for rate in UPDATE_RATES:
            assert wt[rate].hit_rate == off.hit_rate
            assert wt[rate].hit_rate > inval[rate].hit_rate
            assert wt[rate].update_refreshes > 0
            assert wt[rate].update_invalidations == 0
            assert wt[rate].update_apply_s_total > 0.0
