"""Sensitivity sweeps referenced in the paper's text (Section III-C footnote).

The footnote claims the CPU can exceed 50 GB/s of effective embedding
throughput only with unrealistically wide vectors or enormous batch sizes.
This benchmark regenerates both sweeps and also quantifies the related-work
argument that Centaur (unlike TensorDIMM) does not depend on wide vectors.
"""

from repro.analysis import batch_size_sweep, embedding_dim_sweep, render_sensitivity


def test_embedding_dim_sensitivity(benchmark, report_sink, system):
    points = benchmark(
        embedding_dim_sweep, system, None, (32, 64, 128, 256, 512, 1024), 32
    )
    report_sink(
        "sensitivity_embedding_dim",
        render_sensitivity(points, "Embedding-vector width sensitivity (batch 32)"),
    )

    narrow, widest = points[0], points[-1]
    # Production-width vectors (32 floats) leave the CPU far below DRAM peak...
    assert narrow.cpu_fraction_of_peak < 0.25
    # ...while >=1024-wide vectors let it exceed 50 GB/s (footnote 2).
    assert widest.cpu_throughput > 50e9
    # Centaur's gather path is width-agnostic: ~68% of the link everywhere.
    assert min(p.centaur_fraction_of_link for p in points) > 0.6
    # Hence Centaur's advantage is concentrated exactly where production
    # models live (narrow vectors), mirroring the TensorDIMM comparison.
    assert narrow.centaur_improvement > widest.centaur_improvement


def test_batch_size_sensitivity(benchmark, report_sink, system):
    points = benchmark(
        batch_size_sweep, system, None, (128, 256, 512, 1024, 2048, 4096)
    )
    report_sink(
        "sensitivity_batch_size",
        render_sensitivity(points, "Batch-size sensitivity (DLRM(4), dim 32)"),
    )

    values = [point.cpu_throughput for point in points]
    assert values == sorted(values)
    # Even far beyond inference-realistic batches, 32-wide gathers stay well
    # under half of the DRAM peak in this model (the paper's footnote quotes
    # >50 GB/s at batch >2048; our CPU model is more conservative there, see
    # EXPERIMENTS.md).
    assert all(point.cpu_fraction_of_peak < 0.5 for point in points)
