"""Extension benchmark (beyond the paper): chaos drills on the serving fleet.

The paper sizes fleets for steady state; this benchmark measures what a
deterministic fault drill costs at that operating point.  The catalog's
``region-failover`` scenario (two simultaneous replica crashes with
restarts) runs against a static three-replica CPU fleet, and a shard-loss
drill with rehash failover runs against a four-shard Centaur group — the
incident timelines report the SLA dip, the shed/re-dispatched traffic,
the correctness loss and the time-to-recover.
"""

from repro.analysis import render_incident_timeline, render_serving_comparison
from repro.backends import get_backend
from repro.chaos import FaultSchedule, ShardLoss
from repro.config import DLRM1, DLRM2
from repro.serving import AutoscalingCluster, TimeoutBatching
from repro.serving.sharded import ShardedReplicaGroup
from repro.sharding import parse_cache_spec
from repro.workloads import SCENARIO_CATALOG

NUM_REQUESTS = 3_000
SEED = 7
BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=64)


def _fleet_drill(system):
    scenario = SCENARIO_CATALOG["region-failover"]
    backend = get_backend("cpu", system)

    def serve(faults):
        cluster = AutoscalingCluster(
            backend,
            DLRM1,
            policy=None,
            min_replicas=1,
            max_replicas=3,
            initial_replicas=3,
            warmup_s=backend.capabilities.provision_warmup_s,
            batching=BATCHING,
        )
        return cluster.serve_workload(
            scenario.workload(), num_requests=NUM_REQUESTS, seed=SEED, faults=faults
        )

    return serve(None), serve(scenario.schedule())


def _shard_drill(system):
    group = ShardedReplicaGroup(
        get_backend("centaur", system),
        DLRM2,
        num_shards=4,
        cache=parse_cache_spec("lru:rows=2048"),
        batching=BATCHING,
        system=system,
    )
    scenario = SCENARIO_CATALOG["region-failover"]
    return group.serve_workload(
        scenario.workload(),
        num_requests=NUM_REQUESTS,
        seed=SEED,
        faults=FaultSchedule(
            [ShardLoss(at_s=0.01, shard=1, restore_after_s=0.02, failover="rehash")],
            sla_s=5e-3,
        ),
    )


def test_chaos_resilience(benchmark, report_sink, system):
    (healthy, drilled), sharded = benchmark(
        lambda: (_fleet_drill(system), _shard_drill(system))
    )

    sections = [
        render_serving_comparison(
            {"healthy x3": healthy, "region-failover drill": drilled},
            sla_s=5e-3,
            title="Static CPU fleet, steady 20k QPS: healthy vs region-failover",
        ),
        render_incident_timeline(
            drilled, title="Fleet incident timeline (region-failover)"
        ),
        render_incident_timeline(
            sharded, title="Sharded incident timeline (shard-loss, rehash failover)"
        ),
    ]
    report_sink("chaos_resilience", "\n\n".join(sections))

    incidents = drilled.incidents
    assert incidents is not None and len(incidents.incidents) == 2
    assert all(incident.cleared for incident in incidents.incidents)
    assert incidents.worst_time_to_recover_s > 0.0
    assert sharded.incidents.total_degraded_lookups > 0
