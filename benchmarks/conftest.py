"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, times the
computation through ``pytest-benchmark``, prints the same rows/series the
paper reports, and additionally writes the rendered text to
``benchmarks/output/`` so the artifacts survive output capturing.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def report_sink():
    """Return a callable that prints a rendered report and saves it to disk."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _sink(name: str, text: str) -> None:
        print()
        print(text)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _sink


@pytest.fixture(scope="session")
def system():
    from repro.config import HARPV2_SYSTEM

    return HARPV2_SYSTEM
