"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, times the
computation through ``pytest-benchmark``, prints the same rows/series the
paper reports, and additionally writes the rendered text to
``benchmarks/output/`` so the artifacts survive output capturing.
"""

from __future__ import annotations

import pathlib
import sys
from typing import Optional

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def peak_rss_bytes() -> Optional[int]:
    """Best-available resident-set-size probe, in bytes.

    Prefers ``psutil`` when it is installed; falls back to the stdlib
    ``resource.getrusage`` peak (``ru_maxrss`` is KiB on Linux, bytes on
    macOS).  Returns ``None`` when neither source exists, so perf
    benchmarks can *skip* instead of fail on minimal installs.
    """
    try:
        import psutil
    except ImportError:
        pass
    else:
        return int(psutil.Process().memory_info().rss)
    try:
        import resource
    except ImportError:
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


@pytest.fixture(scope="session")
def rss_probe():
    """Skip perf benchmarks when no RSS probe is available at all."""
    if peak_rss_bytes() is None:
        pytest.skip("peak-RSS probe unavailable (no psutil and no resource module)")
    return peak_rss_bytes


@pytest.fixture(scope="session")
def report_sink():
    """Return a callable that prints a rendered report and saves it to disk."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _sink(name: str, text: str) -> None:
        print()
        print(text)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _sink


@pytest.fixture(scope="session")
def system():
    from repro.config import HARPV2_SYSTEM

    return HARPV2_SYSTEM
