"""Smoke benchmark: streaming arrival-generation throughput (requests/sec).

The streaming serving path is only as fast as its arrival generators, so
this benchmark measures how many requests per second each vectorized
:class:`~repro.workloads.ArrivalProcess` produces.  Rates are printed (they
are machine-dependent, so nothing is written to ``benchmarks/output/``) and
a conservative floor guards against accidentally de-vectorizing the chunked
draw path.
"""

import time

from repro.utils import TextTable
from repro.workloads import (
    ConstantRateArrivals,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
)

STREAM_LENGTH = 200_000
#: Conservative floor; the vectorized paths exceed this by a wide margin,
#: while a de-vectorized per-request draw loop falls well under it.
MIN_REQUESTS_PER_SECOND = 50_000

PROCESSES = (
    PoissonArrivals(rate_qps=1_000_000.0),
    ConstantRateArrivals(rate_qps=1_000_000.0),
    OnOffArrivals(
        on_rate_qps=2_000_000.0, off_rate_qps=200_000.0, mean_on_s=0.01, mean_off_s=0.01
    ),
    DiurnalArrivals(trough_qps=500_000.0, peak_qps=2_000_000.0, period_s=0.5),
)


def _drain(process, count=STREAM_LENGTH):
    consumed = 0
    for _ in process.arrivals(num_requests=count, seed=0):
        consumed += 1
    return consumed


def test_workload_generation_throughput(benchmark):
    """Each arrival process streams requests fast enough for 5M-scale runs."""
    rates = {}
    for process in PROCESSES:
        start = time.perf_counter()
        consumed = _drain(process)
        elapsed = time.perf_counter() - start
        rates[process.kind] = consumed / elapsed

    # The benchmark timer tracks the Poisson path (the serving default).
    benchmark(_drain, PROCESSES[0], 50_000)

    table = TextTable(
        ["arrival process", "requests/sec"],
        title=f"Streaming arrival generation over {STREAM_LENGTH:,} requests",
    )
    for kind, rate in rates.items():
        table.add_row([kind, f"{rate:,.0f}"])
    print()
    print(table.render())

    for kind, rate in rates.items():
        assert rate > MIN_REQUESTS_PER_SECOND, (
            f"{kind} generates only {rate:,.0f} requests/sec; "
            "the chunked vectorized draw path has regressed"
        )
