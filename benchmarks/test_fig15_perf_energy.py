"""Figure 15: performance (a) and energy-efficiency (b) of all design points."""

from repro.analysis import figure15_comparison, render_figure15
from repro.config import PAPER_BATCH_SIZES, PAPER_MODELS
from repro.utils.stats_utils import geometric_mean


def test_figure15_performance_and_energy_efficiency(benchmark, report_sink, system):
    rows = benchmark(figure15_comparison, system, PAPER_MODELS, PAPER_BATCH_SIZES)
    report_sink("figure15_perf_energy", render_figure15(rows))

    assert len(rows) == 36

    # Everything is normalized to CPU-GPU, the slowest design point on average.
    assert all(row.cpu_gpu_performance == 1.0 for row in rows)
    assert all(row.cpu_gpu_efficiency == 1.0 for row in rows)

    # Shape 1: CPU-only modestly outperforms CPU-GPU on average (paper: ~1.1x
    # perf, ~1.9x energy-efficiency), because the GPU's GEMM advantage is
    # wiped out by PCIe/driver offload overheads.
    cpu_perf = geometric_mean([row.cpu_only_performance for row in rows])
    cpu_eff = geometric_mean([row.cpu_only_efficiency for row in rows])
    assert 0.8 < cpu_perf < 1.5
    assert 1.4 < cpu_eff < 2.6

    # Shape 2: Centaur is the best design point essentially everywhere, and
    # by a wide margin at small batch sizes.
    wins = sum(
        1
        for row in rows
        if row.centaur_performance >= max(1.0, row.cpu_only_performance) * 0.95
    )
    assert wins >= len(rows) - 4
    best_over_cpu = max(row.centaur_speedup_over_cpu for row in rows)
    assert best_over_cpu > 5.0

    # Shape 3: Centaur's energy-efficiency improvement exceeds its speedup
    # (it draws less power than either baseline; paper band: 1.7-19.5x).
    assert all(row.centaur_efficiency > row.centaur_performance for row in rows)
    best_eff_over_cpu = max(row.centaur_efficiency_over_cpu for row in rows)
    assert best_eff_over_cpu > best_over_cpu
