"""Grid wall-clock trajectory benchmark and parallel-execution perf gate.

Measures wall-clock of three representative experiment grids at
``jobs=1/2/4`` through :class:`repro.experiment.executor.GridExecutor`:

* ``figure`` — the full figure-suite batch grid (108 analytic points).
  Recorded as trajectory only: analytic points cost microseconds, so the
  pool overhead *exceeds* the work and parallelism cannot pay here — the
  measurement documents why ``jobs=1`` stays the default.
* ``serve`` — an event-driven serving grid (three backends, two
  workloads); points group by (backend, model), so three worker tasks.
* ``shard`` — an event-driven sharded-serving grid (eight independent
  points, every point carrying a hot-row cache so per-point cost stays
  even); the parallel workhorse the speedup floors are pinned on.

Each serial measurement carries a machine calibration score (heap
push/pop ops/sec, taken in-process right before the run).  The gate
compares *calibration-normalized* serial throughput of the event-driven
grids against the committed ``BENCH_grid.json`` trajectory, and asserts
CPU-aware speedup floors measured within this run (no cross-machine
normalization needed for a ratio).  Fresh measurements always land in
``benchmarks/BENCH_grid.fresh.json`` (gitignored; uploaded by CI) so the
committed trajectory can be refreshed by copying it.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.config import DLRM2, PAPER_BATCH_SIZES, PAPER_MODELS, HARPV2_SYSTEM
from repro.experiment import Experiment
from repro.sharding import CacheConfig
from repro.utils.tables import TextTable
from repro.workloads import ConstantRateArrivals, PoissonArrivals, Workload
from repro.workloads.traces import ZipfianTrace

REPO_ROOT = pathlib.Path(__file__).parent.parent
#: The committed perf trajectory this suite gates against.
BASELINE_PATH = REPO_ROOT / "BENCH_grid.json"
#: Fresh measurements land here (gitignored; CI uploads it as an artifact).
FRESH_PATH = pathlib.Path(__file__).parent / "BENCH_grid.fresh.json"

#: Allowed calibration-normalized serial-throughput regression.  Wider
#: than the engine gate's 20%: grid wall-clock includes pool fork/pickle
#: overhead, which is noisier than a pure in-process event loop.
TOLERANCE = 0.30

#: Serial grids gated against the committed trajectory (the ``figure``
#: grid is ~20 ms of analytic arithmetic — too short to gate reliably).
GATED_GRIDS = ("serve", "shard")

JOBS_TRAJECTORY = (1, 2, 4)

#: Heap push/pop pairs per calibration pass.  Shorter than the engine
#: gate's single pass but taken best-of-3: on a busy shared machine one
#: long pass can land entirely inside a noisy window, and a bad
#: calibration score corrupts the normalization it exists to provide.
_CALIBRATION_OPS = 100_000
_CALIBRATION_PASSES = 3

STEADY = Workload(arrivals=ConstantRateArrivals(rate_qps=20_000.0), name="steady")
POISSON = Workload(arrivals=PoissonArrivals(rate_qps=15_000.0), name="poisson")
ZIPF = Workload(
    arrivals=PoissonArrivals(rate_qps=20_000.0),
    trace=ZipfianTrace(alpha=1.05),
    name="zipf",
)
LRU = CacheConfig(policy="lru", capacity_rows=2_048)
LFU = CacheConfig(policy="lfu", capacity_rows=2_048)


def calibrate(
    ops: int = _CALIBRATION_OPS, passes: int = _CALIBRATION_PASSES
) -> float:
    """Machine-speed score: best-of-``passes`` heap push/pop ops per second."""
    from heapq import heappop, heappush

    best = 0.0
    for _ in range(passes):
        heap: list = []
        start = time.perf_counter()
        for index in range(ops):
            heappush(heap, (index % 997, index, None))
        while heap:
            heappop(heap)
        best = max(best, ops / (time.perf_counter() - start))
    return best


def _figure_grid(jobs: int):
    # cache=None so every run measures compute, not a warm lookup.
    return (
        Experiment(HARPV2_SYSTEM, cache=None, jobs=jobs)
        .models(PAPER_MODELS)
        .batch_sizes(PAPER_BATCH_SIZES)
        .run()
    )


def _serve_grid(jobs: int):
    return (
        Experiment(HARPV2_SYSTEM, jobs=jobs)
        .backends("cpu", "cpu-gpu", "centaur")
        .models(DLRM2)
        .workloads(STEADY, POISSON)
        .serve(num_requests=20_000, seed=3)
    )


def _shard_grid(jobs: int):
    return (
        Experiment(HARPV2_SYSTEM, jobs=jobs)
        .backends("centaur")
        .models(DLRM2)
        .workloads(ZIPF)
        .shard(
            shard_counts=(2, 4),
            strategies=("table", "row"),
            # Both cached: cache simulation dominates per-point cost, so
            # the eight points cost about the same and the critical path
            # is not skewed by one slow straggler.
            caches=(LRU, LFU),
            num_requests=400,
            seed=1,
        )
    )


GRIDS = {
    "figure": (_figure_grid, 108),
    "serve": (_serve_grid, 6),
    "shard": (_shard_grid, 8),
}


def _measure(grid: str, jobs: int, reps: int) -> dict:
    """Best-of-``reps`` wall-clock of one grid at one jobs setting."""
    build, points = GRIDS[grid]
    calibration = calibrate()
    best = None
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = build(jobs)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return {
        "grid": grid,
        "jobs": jobs,
        "points": points,
        "seconds": best,
        "points_per_sec": points / best,
        "calibration_ops_per_s": calibration,
        "_result": result,
    }


def _render(rows: list) -> str:
    table = TextTable(
        ["grid", "jobs", "points", "wall-clock (s)", "points/sec", "speedup"],
        title="Grid wall-clock (GridExecutor fan-out)",
    )
    serial = {row["grid"]: row["seconds"] for row in rows if row["jobs"] == 1}
    for row in rows:
        table.add_row(
            [
                row["grid"],
                row["jobs"],
                row["points"],
                f"{row['seconds']:.3f}",
                f"{row['points_per_sec']:.1f}",
                f"{serial[row['grid']] / row['seconds']:.2f}x",
            ]
        )
    return table.render()


def _write_fresh(rows: list) -> None:
    payload = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    FRESH_PATH.write_text(
        json.dumps(
            {"schema": "grid-speed/v1", "cpus": os.cpu_count(), "grids": payload},
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )


def _gate_serial_throughput(rows: list) -> None:
    """Fail on a >TOLERANCE calibration-normalized serial regression."""
    assert BASELINE_PATH.exists(), (
        "BENCH_grid.json is missing from the repo root; the grid perf "
        "gate has no trajectory to compare against"
    )
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    committed = {(g["grid"], g["jobs"]): g for g in baseline["grids"]}
    failures = []
    for row in rows:
        if row["grid"] not in GATED_GRIDS or row["jobs"] != 1:
            continue
        reference = committed.get((row["grid"], 1))
        if reference is None:
            continue
        scale = reference["calibration_ops_per_s"] / row["calibration_ops_per_s"]
        normalized = row["points_per_sec"] * scale
        floor = (1.0 - TOLERANCE) * reference["points_per_sec"]
        # Raw throughput clearing the floor also passes: on a machine at
        # least as fast as the baseline's, normalization can only hurt
        # when the calibration sample decorrelates from the grid run
        # (load spike between the two), and that is noise, not a
        # regression.
        if max(normalized, row["points_per_sec"]) < floor:
            failures.append(
                f"{row['grid']} grid at jobs=1: normalized "
                f"{normalized:.2f} points/s < floor {floor:.2f} "
                f"(committed {reference['points_per_sec']:.2f}, raw "
                f"{row['points_per_sec']:.2f}, calibration scale {scale:.2f})"
            )
    assert not failures, "serial grid throughput regressed >30%:\n" + "\n".join(
        failures
    )


def _gate_speedup(rows: list) -> None:
    """CPU-aware speedup floors on the shard grid, within this run.

    A wall-clock ratio needs no cross-machine normalization; the floor
    only depends on how many cores the runner actually has.
    """
    seconds = {
        (row["grid"], row["jobs"]): row["seconds"] for row in rows
    }
    serial = seconds[("shard", 1)]
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        speedup = serial / seconds[("shard", 4)]
        assert speedup >= 2.0, (
            f"shard grid jobs=4 speedup {speedup:.2f}x < 2.0x on a "
            f"{cpus}-CPU runner"
        )
    elif cpus >= 2:
        # Two cores shared with the OS and the parent process leave thin
        # headroom; the real >=2x assertion lives on >=4-CPU runners.
        speedup = serial / min(seconds[("shard", 2)], seconds[("shard", 4)])
        assert speedup >= 1.05, (
            f"shard grid parallel speedup {speedup:.2f}x < 1.05x on a "
            f"{cpus}-CPU runner"
        )
    # Single-CPU runners: nothing to assert — the pool cannot win.


def test_grid_speed_trajectory():
    rows = []
    for grid in GRIDS:
        for jobs in JOBS_TRAJECTORY:
            # Every event-grid cell is best-of-2 so one background-load
            # spike cannot flip a speedup ratio either way.
            rows.append(_measure(grid, jobs, 3 if grid == "figure" else 2))
    print()
    print(_render(rows))
    _write_fresh(rows)

    # Byte-identity smoke rides along: the jobs=1 and jobs=4 shard grids
    # measured above must render identically.
    by_key = {(row["grid"], row["jobs"]): row["_result"] for row in rows}
    assert by_key[("shard", 1)].to_csv() == by_key[("shard", 4)].to_csv()
    assert by_key[("serve", 1)].to_csv() == by_key[("serve", 4)].to_csv()

    _gate_serial_throughput(rows)
    _gate_speedup(rows)
