"""Extension benchmark (beyond the paper): tail latency under online load.

The paper evaluates per-batch latency; production recommendation services
care about tail latency under bursty arrivals.  This benchmark serves the
same Poisson request stream through each design point with an identical
dynamic-batching policy and compares p99 latency, SLA attainment and energy
per request.
"""

from repro.analysis import render_serving_comparison
from repro.backends import get_backend
from repro.config import DLRM2
from repro.serving import (
    HeterogeneousCluster,
    JoinShortestQueueDispatcher,
    LeastLoadedDispatcher,
    PowerOfTwoChoicesDispatcher,
    RoundRobinDispatcher,
    ServingSimulator,
    TimeoutBatching,
)
from repro.utils import TextTable

LOAD_QPS = 30_000
DURATION_S = 0.25
SLA_S = 5e-3
BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=64)


def _serve_all(system):
    reports = {}
    for runner in (
        get_backend("cpu", system),
        get_backend("cpu-gpu", system),
        get_backend("centaur", system),
    ):
        simulator = ServingSimulator(runner, DLRM2, batching=BATCHING)
        reports[runner.design_point] = simulator.serve_poisson(
            rate_qps=LOAD_QPS, duration_s=DURATION_S, seed=42
        )
    return reports


def test_serving_tail_latency(benchmark, report_sink, system):
    reports = benchmark(_serve_all, system)

    table = TextTable(
        ["design point", "p50 (ms)", "p99 (ms)", "SLA attainment %", "energy/req (mJ)"],
        title=f"Online serving of DLRM(2) at {LOAD_QPS:,} QPS (extension experiment)",
    )
    for name, report in reports.items():
        table.add_row(
            [
                name,
                report.latency.p50_s * 1e3,
                report.latency.p99_s * 1e3,
                100.0 * report.latency.sla_attainment(SLA_S),
                report.energy_per_request_joules * 1e3,
            ]
        )
    report_sink("serving_tail_latency", table.render())

    cpu = reports["CPU-only"]
    centaur = reports["Centaur"]
    # Centaur's lower per-batch latency translates into a lower tail and less
    # energy per request at the same offered load.
    assert centaur.latency.p99_s < cpu.latency.p99_s
    assert centaur.latency.sla_attainment(SLA_S) >= cpu.latency.sla_attainment(SLA_S)
    assert centaur.energy_per_request_joules < cpu.energy_per_request_joules
    assert centaur.device_utilization < cpu.device_utilization


FLEET_LOAD_QPS = 120_000


def _serve_fleet(system):
    """2x CPU + 1x Centaur under four dispatch policies at the same load."""
    reports = {}
    for dispatcher in (
        RoundRobinDispatcher(),
        PowerOfTwoChoicesDispatcher(seed=7),
        JoinShortestQueueDispatcher(),
        LeastLoadedDispatcher(),
    ):
        fleet = HeterogeneousCluster.from_backends(
            ["cpu", "cpu", "centaur"],
            DLRM2,
            system,
            dispatcher=dispatcher,
            batching=BATCHING,
        )
        reports[dispatcher.name] = fleet.serve_poisson(
            rate_qps=FLEET_LOAD_QPS, duration_s=DURATION_S, seed=42
        )
    return reports


def test_serving_dispatch_policies(benchmark, report_sink, system):
    """Extension benchmark: dispatch policy effects on a heterogeneous fleet.

    The fleet's CPU sockets saturate if they receive an equal share of the
    load; queue-aware dispatch must route around them.
    """
    reports = benchmark(_serve_fleet, system)
    report_sink(
        "serving_dispatch_policies",
        render_serving_comparison(
            reports,
            sla_s=SLA_S,
            title=(
                f"Dispatch over 2x CPU + 1x Centaur serving DLRM(2) at "
                f"{FLEET_LOAD_QPS:,} QPS"
            ),
        ),
    )

    round_robin = reports["round-robin"]
    shortest_queue = reports["join-shortest-queue"]
    least_loaded = reports["least-loaded"]
    two_choices = reports["power-of-two-choices"]
    # Queue-aware dispatch beats blind rotation on a skewed fleet, and two
    # random choices recover most of the full-information benefit.
    assert shortest_queue.latency.p99_s < round_robin.latency.p99_s
    assert least_loaded.latency.p99_s < round_robin.latency.p99_s
    assert two_choices.latency.p99_s < round_robin.latency.p99_s
    # Every policy serves the identical request stream.
    counts = {report.completed_requests for report in reports.values()}
    assert len(counts) == 1
