"""Table V: qualitative comparison between Centaur and prior accelerators."""

from repro.analysis import render_table5, table5_related_work


def test_table5_related_work(benchmark, report_sink):
    rows = benchmark(table5_related_work)
    report_sink("table5_related_work", render_table5(rows))

    assert len(rows) == 7
    centaur = rows[-1]
    assert centaur.system == "Centaur (Ours)"
    # Centaur is the only entry that checks every column of the matrix.
    full_rows = [
        row
        for row in rows
        if all(
            [
                row.transparent_to_hardware,
                row.transparent_to_software,
                row.accelerates_dense_dnn,
                row.accelerates_gathers,
                row.handles_small_vector_loads,
                row.studies_recommendation,
            ]
        )
    ]
    assert full_rows == [centaur]
