"""Headline summary: the abstract's numbers over the full evaluation sweep."""

from repro.analysis import headline_summary, render_headline


def test_headline_summary(benchmark, report_sink, system):
    summary = benchmark(headline_summary, system)
    report_sink("headline_summary", "\n".join(render_headline(summary)))

    # Paper: 1.7-17.2x speedup and 1.7-19.5x energy-efficiency improvement
    # over CPU-only; ~27x average gather-throughput improvement; CPU-only
    # ~1.1x faster and ~1.9x more energy-efficient than CPU-GPU.
    assert summary["centaur_speedup_max"] > 5.0
    assert summary["centaur_speedup_max"] < 30.0
    assert summary["centaur_efficiency_max"] > summary["centaur_speedup_max"]
    assert summary["gather_bw_improvement_mean"] > 5.0
    assert summary["gather_bw_improvement_min"] < 1.0
    assert 0.8 < summary["cpu_vs_gpu_performance_geomean"] < 1.5
    assert 1.4 < summary["cpu_vs_gpu_efficiency_geomean"] < 2.6
