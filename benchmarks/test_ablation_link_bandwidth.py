"""Section VII ablation: CPU<->FPGA link bandwidth and the cache-bypass path.

The paper's discussion argues that upcoming package-level signaling
technologies (hundreds of GB/s) and a cache-bypassing gather path would lift
the EB-Streamer's throughput proportionally.  This benchmark quantifies that
claim with the link-bandwidth sweep and the Fig. 8 bypass configuration.
"""

import pytest

from repro.analysis import ablation_link_bandwidth
from repro.analysis.report import render_ablation
from repro.config import DLRM4


def test_ablation_link_bandwidth_and_bypass(benchmark, report_sink, system):
    points = benchmark(
        ablation_link_bandwidth,
        system,
        DLRM4,
        64,
        (1.0, 2.0, 4.0, 8.0),
        True,
    )
    report_sink("ablation_link_bandwidth", render_ablation(points))

    baseline = points[0]
    assert baseline.speedup_over_harpv2 == pytest.approx(1.0)
    # Gather throughput scales up with link bandwidth until another resource
    # (the reduction lanes at 25.6 GB/s, then the dense stage) takes over.
    scaled = [point for point in points if not point.cache_bypass]
    throughputs = [point.gather_throughput for point in scaled]
    assert throughputs == sorted(throughputs)
    assert scaled[-1].gather_throughput > 2 * baseline.gather_throughput
    assert scaled[-1].speedup_over_harpv2 > 1.5

    # The cache-bypass path (provisioned at DRAM bandwidth) delivers the same
    # class of improvement without scaling the coherent link.
    bypass = points[-1]
    assert bypass.cache_bypass
    assert bypass.gather_throughput > 1.8 * baseline.gather_throughput
    assert bypass.speedup_over_harpv2 > 1.5
