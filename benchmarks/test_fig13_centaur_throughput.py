"""Figure 13: Centaur's effective gather throughput and improvement vs CPU-only."""

import numpy as np

from repro.analysis import figure13_centaur_throughput, figure13_lookup_sweep, render_figure13
from repro.config import PAPER_BATCH_SIZES, PAPER_MODELS


def test_figure13a_centaur_gather_throughput(benchmark, report_sink, system):
    rows = benchmark(
        figure13_centaur_throughput, system, PAPER_MODELS, PAPER_BATCH_SIZES
    )
    report_sink("figure13a_centaur_gather_throughput", render_figure13(rows, "(a)"))

    assert len(rows) == 36

    # Shape 1: the EB-Streamer peaks near 11.9 GB/s, i.e. ~68% of the
    # effective CPU<->FPGA link bandwidth (Section VI-B).
    best = max(row.centaur_throughput for row in rows)
    assert 1.1e10 < best < 1.25e10
    assert best / system.link.effective_bandwidth > 0.6

    # Shape 2: the improvement over CPU-only is largest at small batches and
    # shrinks as the CPU's own throughput catches up with batch size.
    for model in PAPER_MODELS:
        series = {row.batch_size: row.improvement for row in rows if row.model_name == model.name}
        assert series[1] > series[128]

    # Shape 3: the crossover — at batch 128 on the biggest models, CPU-only
    # overtakes the link-bound EB-Streamer (paper: ~33% shortfall).
    crossovers = [row for row in rows if row.improvement < 1.0]
    assert crossovers, "expected CPU-only to overtake Centaur somewhere"
    assert all(row.batch_size >= 64 for row in crossovers)
    assert all(row.model_name in {"DLRM(3)", "DLRM(4)", "DLRM(5)"} for row in crossovers)
    dlrm4_128 = next(r for r in rows if r.model_name == "DLRM(4)" and r.batch_size == 128)
    assert 0.5 < dlrm4_128.improvement < 1.0

    # Shape 4: the mean improvement across the sweep is large (paper: ~27x on
    # average; this reproduction's CPU baseline is less pessimistic at batch
    # 1, so the mean lands lower but still an order of magnitude).
    mean_improvement = float(np.mean([row.improvement for row in rows]))
    assert mean_improvement > 5.0


def test_figure13b_throughput_vs_lookups(benchmark, report_sink, system):
    rows = benchmark(
        figure13_lookup_sweep,
        system,
        None,
        (1, 16, 128),
        (1, 2, 5, 10, 20, 50, 100, 200, 400, 800),
    )
    report_sink("figure13b_centaur_throughput_vs_lookups", render_figure13(rows, "(b)"))

    # Shape: Centaur's effective throughput ramps up much faster with the
    # number of gathers than the CPU's (compare Figure 7b): a few tens of
    # lookups already reach multi-GB/s rates.
    for batch in (1, 16, 128):
        series = sorted(
            (row for row in rows if row.batch_size == batch),
            key=lambda row: row.lookups_per_table,
        )
        values = [row.centaur_throughput for row in series]
        assert values == sorted(values)
    mid = [
        row
        for row in rows
        if row.batch_size == 16 and row.lookups_per_table == 50 * 16
    ]
    assert mid and mid[0].centaur_throughput > 5e9
