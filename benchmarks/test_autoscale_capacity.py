"""Extension benchmark (beyond the paper): capacity planning + autoscaling.

The paper's datacenter pitch is sockets saved at a fixed SLA; this
benchmark quantifies it end to end.  A capacity plan searches the minimal
fleet per design point meeting a p99 SLA under steady peak load, then one
diurnal cycle is served both by the CPU peak-provisioned static fleet and
by an elastic fleet under the target-utilization autoscaler — same SLA,
measurably fewer replica-hours.
"""

from repro.analysis import render_capacity_plan
from repro.backends import get_backend
from repro.config import DLRM2
from repro.serving import (
    AutoscalingCluster,
    CapacityPlanner,
    ClusterSimulator,
    TargetUtilizationPolicy,
    TimeoutBatching,
)
from repro.utils import TextTable
from repro.workloads import DiurnalArrivals, PoissonArrivals, Workload

SLA_S = 5e-3
PEAK_QPS = 40_000.0
TROUGH_QPS = 4_000.0
PERIOD_S = 0.4
SEED = 7
BATCHING = TimeoutBatching(window_s=1e-3, max_batch_size=64)


def _plan_and_autoscale(system):
    planner = CapacityPlanner(
        system, sla_s=SLA_S, target_attainment=0.99, batching=BATCHING, seed=SEED
    )
    peak = Workload(arrivals=PoissonArrivals(rate_qps=PEAK_QPS), name="peak")
    plan = planner.plan(
        peak, DLRM2, backends=("cpu", "cpu-gpu", "centaur"), duration_s=PERIOD_S / 4
    )

    diurnal = Workload(
        arrivals=DiurnalArrivals(
            trough_qps=TROUGH_QPS, peak_qps=PEAK_QPS, period_s=PERIOD_S
        ),
        name="diurnal",
    )
    backend = get_backend("cpu", system)
    peak_replicas = plan.get("cpu").replicas
    static = ClusterSimulator(
        backend, DLRM2, num_replicas=peak_replicas, batching=BATCHING
    ).serve_workload(diurnal, duration_s=PERIOD_S, seed=SEED)
    elastic = AutoscalingCluster(
        backend,
        DLRM2,
        policy=TargetUtilizationPolicy(target=0.7, deadband=0.1, cooldown_s=0.02),
        min_replicas=1,
        max_replicas=peak_replicas,
        control_interval_s=0.01,
        warmup_s=backend.capabilities.provision_warmup_s,
        batching=BATCHING,
    ).serve_workload(diurnal, duration_s=PERIOD_S, seed=SEED)
    return plan, static, elastic


def test_autoscale_capacity(benchmark, report_sink, system):
    plan, static, elastic = benchmark(_plan_and_autoscale, system)

    table = TextTable(
        ["fleet", "SLA attainment %", "p99 (ms)", "replica-seconds", "vs static %"],
        title=(
            f"One diurnal cycle ({TROUGH_QPS:,.0f}-{PEAK_QPS:,.0f} QPS) on CPU-only: "
            "peak-provisioned vs target-utilization autoscaler"
        ),
    )
    for label, report in (
        (f"static x{static.num_replicas}", static),
        ("autoscaled (target-utilization)", elastic),
    ):
        table.add_row(
            [
                label,
                100.0 * report.latency.sla_attainment(SLA_S),
                report.latency.p99_s * 1e3,
                report.replica_seconds,
                100.0 * report.replica_seconds / static.replica_seconds,
            ]
        )
    rendered = (
        render_capacity_plan(plan, title="Peak capacity plan") + "\n\n" + table.render()
    )
    report_sink("autoscale_capacity", rendered)

    # The paper's sockets-saved story: Centaur meets the SLA with fewer
    # replicas than the CPU-only baseline at the same peak load.
    assert plan.get("centaur").replicas <= plan.get("cpu").replicas
    assert plan.best().backend == "centaur"
    # Elasticity holds the static fleet's SLA while paying fewer replica-hours.
    assert elastic.latency.sla_attainment(SLA_S) >= 0.99 * static.latency.sla_attainment(
        SLA_S
    )
    assert elastic.replica_seconds < static.replica_seconds
    assert elastic.autoscale is not None
    assert elastic.autoscale.scale_up_events >= 1
