"""Table II: Centaur FPGA resource utilization on the Arria 10 GX1150."""

import pytest

from repro.analysis import render_table2, table2_fpga_utilization


def test_table2_fpga_utilization(benchmark, report_sink):
    rows = benchmark(table2_fpga_utilization)
    report_sink("table2_fpga_utilization", render_table2(rows))

    by_name = {row.resource: row for row in rows}
    # The modelled synthesis footprint lands within a few percent of the
    # paper's Quartus results for every resource class.
    for row in rows:
        assert row.used == pytest.approx(row.paper_used, rel=0.06)
    # Headline utilization figures (paper: 29.9 / 42.6 / 82.5 / 51.6 / 27.3 %).
    assert by_name["ALM"].utilization == pytest.approx(0.299, abs=0.02)
    assert by_name["Block memory bits"].utilization == pytest.approx(0.426, abs=0.02)
    assert by_name["RAM blocks"].utilization == pytest.approx(0.825, abs=0.05)
    assert by_name["DSP"].utilization == pytest.approx(0.516, abs=0.01)
    assert by_name["PLL"].utilization == pytest.approx(0.273, abs=0.01)
