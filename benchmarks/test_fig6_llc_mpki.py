"""Figure 6: LLC miss rate (a) and MPKI (b) of embedding vs MLP layers."""

from repro.analysis import figure6_cache_behaviour, render_figure6
from repro.config import PAPER_BATCH_SIZES, PAPER_MODELS


def test_figure6_llc_miss_rate_and_mpki(benchmark, report_sink, system):
    rows = benchmark(figure6_cache_behaviour, system, PAPER_MODELS, PAPER_BATCH_SIZES)
    report_sink("figure6_llc_mpki", render_figure6(rows))

    assert len(rows) == 36

    # Shape 1: embedding-layer LLC miss rate is highly batch-sensitive and
    # grows with batch size (Fig. 6a).  Growth is allowed to flatten at the
    # largest batches, where intra-batch row reuse starts to kick in.
    for model in PAPER_MODELS:
        series = sorted(
            (row for row in rows if row.model_name == model.name),
            key=lambda row: row.batch_size,
        )
        rates = [row.emb_llc_miss_rate for row in series]
        assert all(later >= earlier - 0.01 for earlier, later in zip(rates, rates[1:]))
        assert rates[-1] > rates[0]

    # Shape 2: embedding miss rates reach tens of percent for the largest
    # tables, while MLP layers stay below the paper's 20% bound.
    assert max(row.emb_llc_miss_rate for row in rows) > 0.35
    assert all(row.mlp_llc_miss_rate < 0.20 for row in rows)

    # Shape 3: MPKI peaks in the single digits (paper: up to ~6.5) and the
    # embedding layer's MPKI exceeds the MLP's at large batch sizes.
    assert 3.0 < max(row.emb_mpki for row in rows) < 8.0
    for row in rows:
        if row.batch_size >= 64 and row.model_name in {"DLRM(4)", "DLRM(5)"}:
            assert row.emb_mpki > row.mlp_mpki
