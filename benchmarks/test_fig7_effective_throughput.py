"""Figure 7: CPU-only effective memory throughput for embedding gathers."""

from repro.analysis import figure7_effective_throughput, render_figure7
from repro.analysis.characterization import figure7_lookup_sweep
from repro.config import PAPER_BATCH_SIZES, PAPER_MODELS


def test_figure7a_throughput_vs_batch(benchmark, report_sink, system):
    points = benchmark(
        figure7_effective_throughput, system, PAPER_MODELS, PAPER_BATCH_SIZES
    )
    report_sink("figure7a_cpu_effective_throughput", render_figure7(points, "(a)"))

    assert len(points) == 36
    peak = system.memory.peak_bandwidth

    # Shape 1: effective throughput is far below the 77 GB/s DRAM peak.
    assert all(point.effective_throughput < 0.35 * peak for point in points)

    # Shape 2: throughput grows monotonically with batch size (Fig. 7a).
    for model in PAPER_MODELS:
        series = sorted(
            (point for point in points if point.model_name == model.name),
            key=lambda point: point.batch_size,
        )
        values = [point.effective_throughput for point in series]
        assert values == sorted(values)

    # Shape 3: batch-1 inference languishes in the ~0.05-2 GB/s range while
    # the largest batches reach the mid-to-high teens of GB/s.
    batch1 = [p.effective_throughput for p in points if p.batch_size == 1]
    batch128 = [p.effective_throughput for p in points if p.batch_size == 128]
    assert max(batch1) < 2e9
    assert 1.3e10 < max(batch128) < 2.2e10


def test_figure7b_throughput_vs_lookups(benchmark, report_sink, system):
    points = benchmark(
        figure7_lookup_sweep,
        system,
        None,
        (1, 16, 128),
        (1, 2, 5, 10, 20, 50, 100, 200, 400, 800),
    )
    report_sink("figure7b_cpu_throughput_vs_lookups", render_figure7(points, "(b)"))

    # Shape: for a fixed batch size, throughput grows monotonically with the
    # number of lookups performed on the single table (Fig. 7b).
    for batch in (1, 16, 128):
        series = sorted(
            (point for point in points if point.batch_size == batch),
            key=lambda point: point.lookups_per_table,
        )
        values = [point.effective_throughput for point in series]
        assert values == sorted(values)
    # Even at 800 lookups x batch 128 the CPU stays well under the DRAM peak.
    assert max(point.effective_throughput for point in points) < 0.4 * system.memory.peak_bandwidth
