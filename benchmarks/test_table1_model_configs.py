"""Table I: recommendation model configurations."""

from repro.analysis import render_table1, table1_model_configurations


def test_table1_model_configurations(benchmark, report_sink):
    rows = benchmark(table1_model_configurations)
    report_sink("table1_model_configurations", render_table1(rows))

    assert [row.model_name for row in rows] == [f"DLRM({i})" for i in range(1, 7)]
    # Embedding footprints reproduce the paper exactly; MLP sizes are close
    # (layer shapes are not published, see EXPERIMENTS.md).
    for row in rows:
        assert row.table_bytes == row.paper_table_bytes
    assert rows[4].table_bytes == 3_200_000_000
    assert rows[5].mlp_bytes > 5 * rows[0].mlp_bytes
