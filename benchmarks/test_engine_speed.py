"""Engine speed-trajectory benchmark and perf gate.

Measures simulated requests/sec (and peak RSS) of the event engine on a
constant-latency device model — pure engine + serving-loop cost, no device
pricing — across the queue implementations (binary heap vs calendar) and
event pooling on/off, at 100k and 1M requests (5M opt-in via
``REPRO_BENCH_5M=1``).

Every measurement runs in its own subprocess
(:mod:`benchmarks._engine_speed_worker`), which also reports a machine
calibration score (heap ops/sec) taken right before the run.  The gate
compares *calibration-normalized* throughput against the committed
``BENCH_engine.json`` trajectory and fails on a >20% regression, so the
check tracks engine changes rather than runner hardware.  A fresh artifact
is always written to ``benchmarks/BENCH_engine.fresh.json`` (gitignored;
uploaded by CI) so the committed trajectory can be refreshed by copying it.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.utils.tables import TextTable

REPO_ROOT = pathlib.Path(__file__).parent.parent
WORKER = pathlib.Path(__file__).parent / "_engine_speed_worker.py"
#: The committed perf trajectory this suite gates against.
BASELINE_PATH = REPO_ROOT / "BENCH_engine.json"
#: Fresh measurements land here (gitignored; CI uploads it as an artifact).
FRESH_PATH = pathlib.Path(__file__).parent / "BENCH_engine.fresh.json"

#: Allowed calibration-normalized throughput regression before the gate fails.
TOLERANCE = 0.20

#: Default measurement plan: the full queue x pooling grid at 100k requests
#: plus the default configuration at the 1M trajectory point.
DEFAULT_PLAN = [
    ("heap", True, 100_000, 3),
    ("heap", False, 100_000, 3),
    ("calendar", True, 100_000, 3),
    ("calendar", False, 100_000, 3),
    ("heap", True, 1_000_000, 2),
]


def _measure(queue: str, pool: bool, requests: int, reps: int) -> dict:
    """Run one engine configuration in a fresh subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, str(WORKER), queue, str(int(pool)), str(requests), str(reps)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        check=False,
    )
    assert result.returncode == 0, (
        f"engine-speed worker failed for queue={queue} pool={pool} "
        f"requests={requests}:\n{result.stderr}"
    )
    return json.loads(result.stdout.strip().splitlines()[-1])


def _render(points: list, title: str) -> str:
    table = TextTable(
        ["queue", "pooled", "requests", "reqs/sec", "peak RSS (MiB)"],
        title=title,
    )
    for point in points:
        rss = point.get("peak_rss_bytes")
        table.add_row(
            [
                point["queue"],
                "yes" if point["pool"] else "no",
                point["requests"],
                point["reqs_per_sec"],
                rss / (1 << 20) if rss else "n/a",
            ]
        )
    return table.render()


def _write_fresh(points: list) -> None:
    existing = []
    if FRESH_PATH.exists():
        existing = json.loads(FRESH_PATH.read_text(encoding="utf-8")).get("points", [])
    keys = {(p["queue"], p["pool"], p["requests"]) for p in points}
    merged = [
        p for p in existing if (p["queue"], p["pool"], p["requests"]) not in keys
    ] + points
    FRESH_PATH.write_text(
        json.dumps({"schema": "engine-speed/v1", "points": merged}, indent=2) + "\n",
        encoding="utf-8",
    )


def _gate(points: list) -> None:
    """Fail on a >TOLERANCE calibration-normalized throughput regression."""
    assert BASELINE_PATH.exists(), (
        "BENCH_engine.json is missing from the repo root; the perf gate "
        "has no trajectory to compare against"
    )
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    committed = {
        (p["queue"], p["pool"], p["requests"]): p for p in baseline["points"]
    }
    failures = []
    for point in points:
        reference = committed.get((point["queue"], point["pool"], point["requests"]))
        if reference is None:
            continue
        # Normalize to the baseline machine's speed: both runs carry a heap
        # ops/sec calibration taken in-process right before measuring.
        scale = reference["calibration_ops_per_s"] / point["calibration_ops_per_s"]
        normalized = point["reqs_per_sec"] * scale
        floor = (1.0 - TOLERANCE) * reference["reqs_per_sec"]
        if normalized < floor:
            failures.append(
                f"queue={point['queue']} pool={point['pool']} "
                f"requests={point['requests']}: normalized {normalized:,.0f} "
                f"req/s < floor {floor:,.0f} (committed "
                f"{reference['reqs_per_sec']:,.0f}, raw {point['reqs_per_sec']:,.0f}, "
                f"calibration scale {scale:.2f})"
            )
    assert not failures, "engine throughput regressed >20%:\n" + "\n".join(failures)


def test_engine_speed_trajectory(rss_probe):
    """Queue/pooling grid at 100k + the gated 1M trajectory point."""
    points = [_measure(*plan) for plan in DEFAULT_PLAN]
    print()
    print(_render(points, "Engine speed (simulated requests/sec)"))
    _write_fresh(points)
    _gate(points)


@pytest.mark.slow
@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_5M") != "1",
    reason="5M-request point is opt-in (REPRO_BENCH_5M=1); ~30s per config",
)
def test_engine_speed_5m(rss_probe):
    """The deep-queue 5M point, heap vs calendar (opt-in)."""
    points = [
        _measure("heap", True, 5_000_000, 1),
        _measure("calendar", True, 5_000_000, 1),
    ]
    print()
    print(_render(points, "Engine speed at 5M requests"))
    _write_fresh(points)
    _gate(points)
