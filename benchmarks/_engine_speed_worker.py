"""Subprocess worker for the engine-speed benchmark (not a test module).

Run as a script with ``PYTHONPATH`` pointing at ``src``::

    python benchmarks/_engine_speed_worker.py <queue> <pool:0|1> <requests> <reps>

Prints one JSON object: best-of-``reps`` simulated requests/sec for the
given engine configuration, the worker's own calibration score (heap
push/pop operations per second, measured in the same process right before
the run so machine noise hits both numbers alike), and the process peak
RSS.  One configuration per process keeps peak-RSS attribution clean —
``ru_maxrss`` is a process-lifetime high-water mark.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass

from conftest import peak_rss_bytes

from repro.config import DLRM2
from repro.config.models import DLRMConfig
from repro.results import InferenceResult, LatencyBreakdown
from repro.serving.batching import FixedSizeBatching
from repro.serving.replica import ReplicaServer, ServiceModel, drive_stream
from repro.sim.engine import Simulator
from repro.workloads import ConstantRateArrivals, Workload

#: Heap push/pop pairs in one calibration pass.  ~0.1 s of pure-Python +
#: C-heapq work, the same mix the event engine runs on.
_CALIBRATION_OPS = 200_000


@dataclass
class _FlatRunner:
    """Constant-latency device model: isolates engine cost from pricing."""

    latency_s: float = 2e-5
    design_point: str = "Flat"

    def run(self, model: DLRMConfig, batch_size: int) -> InferenceResult:
        return InferenceResult(
            design_point=self.design_point,
            model_name=model.name,
            batch_size=batch_size,
            breakdown=LatencyBreakdown({"Total": self.latency_s}),
            power_watts=10.0,
        )


def calibrate(ops: int = _CALIBRATION_OPS) -> float:
    """Machine-speed score: heap push/pop operations per second."""
    from heapq import heappop, heappush

    heap: list = []
    start = time.perf_counter()
    for index in range(ops):
        heappush(heap, (index % 997, index, None))
    while heap:
        heappop(heap)
    return ops / (time.perf_counter() - start)


def run_once(queue: str, pool: bool, total: int) -> float:
    """One simulated stream; returns simulated requests per second."""
    workload = Workload(arrivals=ConstantRateArrivals(rate_qps=10_000_000.0))
    sim = Simulator(queue=queue, event_pool=pool)
    replica = ReplicaServer(
        sim,
        ServiceModel(_FlatRunner(), DLRM2),
        FixedSizeBatching(batch_size=1024),
        record_latency_samples=False,
    )
    stream = workload.requests(num_requests=total)
    start = time.perf_counter()
    outcome = drive_stream(sim, [replica], stream, lambda request: replica)
    elapsed = time.perf_counter() - start
    assert outcome.completed == total, "stream conservation violated"
    return total / elapsed


def main(argv: list) -> int:
    queue, pool_flag, total, reps = argv[1], argv[2], int(argv[3]), int(argv[4])
    pool = bool(int(pool_flag))
    # Calibrate once per rep and keep the best of each series
    # independently: on a noisy shared machine, best-of-N converges to the
    # quiet-window speed, which is the stable, comparable quantity.
    calibration = 0.0
    best = 0.0
    for _ in range(reps):
        calibration = max(calibration, calibrate())
        best = max(best, run_once(queue, pool, total))
    print(
        json.dumps(
            {
                "queue": queue,
                "pool": pool,
                "requests": total,
                "reqs_per_sec": round(best, 1),
                "calibration_ops_per_s": round(calibration, 1),
                "peak_rss_bytes": peak_rss_bytes(),
            }
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
